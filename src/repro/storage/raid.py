"""RAID geometry descriptions.

A :class:`RaidGeometry` captures the static layout of one RAID group: how
many disks, how many of them hold data versus redundancy, how many disk
losses the group tolerates, and the resulting usable capacity and Effective
Replication Factor.  The availability models only need the counts; the
richer helpers (stripe maps, rebuild read amounts) support the rebuild-time
and example code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.exceptions import RaidConfigurationError


class RaidLevel(enum.Enum):
    """Supported RAID organisations."""

    RAID0 = "raid0"
    RAID1 = "raid1"
    RAID5 = "raid5"
    RAID6 = "raid6"
    RAID10 = "raid10"
    ERASURE = "erasure"


@dataclass(frozen=True)
class RaidGeometry:
    """Static geometry of one RAID group.

    Attributes
    ----------
    level:
        RAID organisation.
    n_disks:
        Total physical disks in the group (excluding hot spares).
    data_disks:
        Number of disks' worth of usable capacity.
    fault_tolerance:
        Number of simultaneous disk losses the group survives.
    label:
        Display label such as ``"RAID5(3+1)"``.
    """

    level: RaidLevel
    n_disks: int
    data_disks: int
    fault_tolerance: int
    label: str

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def raid0(cls, n_disks: int) -> "RaidGeometry":
        """Return an unprotected stripe of ``n_disks``."""
        n = _check_count(n_disks, minimum=1, label="RAID0 disks")
        return cls(RaidLevel.RAID0, n, n, 0, f"RAID0({n})")

    @classmethod
    def raid1(cls, mirrors: int = 2) -> "RaidGeometry":
        """Return an ``mirrors``-way mirror; ``RAID1(1+1)`` by default."""
        m = _check_count(mirrors, minimum=2, label="RAID1 mirrors")
        return cls(RaidLevel.RAID1, m, 1, m - 1, f"RAID1(1+{m - 1})")

    @classmethod
    def raid5(cls, data_disks: int) -> "RaidGeometry":
        """Return a RAID5 group with ``data_disks`` data disks + 1 parity."""
        k = _check_count(data_disks, minimum=2, label="RAID5 data disks")
        return cls(RaidLevel.RAID5, k + 1, k, 1, f"RAID5({k}+1)")

    @classmethod
    def raid6(cls, data_disks: int) -> "RaidGeometry":
        """Return a RAID6 group with ``data_disks`` data disks + 2 parity."""
        k = _check_count(data_disks, minimum=2, label="RAID6 data disks")
        return cls(RaidLevel.RAID6, k + 2, k, 2, f"RAID6({k}+2)")

    @classmethod
    def raid10(cls, mirrored_pairs: int) -> "RaidGeometry":
        """Return a stripe of ``mirrored_pairs`` two-way mirrors.

        The group tolerates one failure per mirror; as a conservative single
        number the fault tolerance is reported as 1 (the worst case of two
        failures landing in the same pair).
        """
        p = _check_count(mirrored_pairs, minimum=2, label="RAID10 mirrored pairs")
        return cls(RaidLevel.RAID10, 2 * p, p, 1, f"RAID10({p}x2)")

    @classmethod
    def erasure(cls, k: int, n: int) -> "RaidGeometry":
        """Return a ``k``-of-``n`` erasure-coded group (any ``k`` shares suffice).

        ``n`` shares are stored; the object survives as long as any ``k``
        remain, so the fault tolerance is ``n - k``.  RAID1 and RAID5 are
        the ``1``-of-``m`` and ``k``-of-``k+1`` special cases.
        """
        k = _check_count(k, minimum=1, label="erasure data shares (k)")
        n = _check_count(n, minimum=2, label="erasure total shares (N)")
        if k > n:
            raise RaidConfigurationError(
                f"erasure coding needs k <= N, got k={k!r} of N={n!r}"
            )
        return cls(RaidLevel.ERASURE, n, k, n - k, f"EC({k}of{n})")

    @classmethod
    def from_label(cls, label: str) -> "RaidGeometry":
        """Parse labels like ``"RAID5(3+1)"``, ``"RAID6(6+2)"``, ``"EC(3of10)"``."""
        text = label.strip().upper().replace(" ", "")
        try:
            level_text, rest = text.split("(", 1)
            inner = rest.rstrip(")")
            if level_text == "EC" and "OF" in inner:
                k_text, n_text = inner.split("OF", 1)
                return cls.erasure(int(k_text), int(n_text))
            if "X" in inner:
                first, _ = inner.split("X", 1)
                parts = [int(first)]
            else:
                parts = [int(p) for p in inner.split("+")]
        except (ValueError, IndexError):
            raise RaidConfigurationError(f"cannot parse RAID label {label!r}") from None
        if level_text == "RAID0":
            return cls.raid0(parts[0])
        if level_text == "RAID1":
            return cls.raid1(sum(parts))
        if level_text == "RAID5":
            return cls.raid5(parts[0])
        if level_text == "RAID6":
            return cls.raid6(parts[0])
        if level_text == "RAID10":
            return cls.raid10(parts[0])
        raise RaidConfigurationError(f"unknown RAID level in label {label!r}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def parity_disks(self) -> int:
        """Return the number of disks' worth of redundancy."""
        return self.n_disks - self.data_disks

    @property
    def effective_replication_factor(self) -> float:
        """Return physical/usable capacity ratio (the paper's ERF)."""
        return self.n_disks / self.data_disks

    def usable_capacity_gb(self, disk_capacity_gb: float) -> float:
        """Return the usable capacity given one disk's capacity."""
        if disk_capacity_gb <= 0.0:
            raise RaidConfigurationError(
                f"disk capacity must be positive, got {disk_capacity_gb!r}"
            )
        return self.data_disks * float(disk_capacity_gb)

    def raw_capacity_gb(self, disk_capacity_gb: float) -> float:
        """Return the raw (physical) capacity of the group."""
        if disk_capacity_gb <= 0.0:
            raise RaidConfigurationError(
                f"disk capacity must be positive, got {disk_capacity_gb!r}"
            )
        return self.n_disks * float(disk_capacity_gb)

    def survives(self, failed_disks: int) -> bool:
        """Return whether data remains accessible with ``failed_disks`` missing."""
        if failed_disks < 0:
            raise RaidConfigurationError(f"failed disk count must be >= 0, got {failed_disks!r}")
        return failed_disks <= self.fault_tolerance

    def rebuild_read_gb(self, disk_capacity_gb: float) -> float:
        """Return the data volume read to rebuild one failed disk.

        Parity RAID must read every surviving disk; a mirror reads only the
        surviving copy.  Used by the bandwidth-based rebuild-time model.
        """
        if self.level in (RaidLevel.RAID1, RaidLevel.RAID10):
            return float(disk_capacity_gb)
        if self.level is RaidLevel.ERASURE:
            # Regenerating a share reads any k surviving shares.
            return float(disk_capacity_gb) * self.data_disks
        return float(disk_capacity_gb) * (self.n_disks - 1)

    def describe(self) -> Dict[str, object]:
        """Return a serialisable summary of the geometry."""
        return {
            "label": self.label,
            "level": self.level.value,
            "n_disks": self.n_disks,
            "data_disks": self.data_disks,
            "parity_disks": self.parity_disks,
            "fault_tolerance": self.fault_tolerance,
            "erf": self.effective_replication_factor,
        }


def _check_count(value: int, minimum: int, label: str) -> int:
    value = int(value)
    if value < minimum:
        raise RaidConfigurationError(f"{label} must be at least {minimum}, got {value!r}")
    return value


def paper_configurations() -> List[RaidGeometry]:
    """Return the three configurations compared in the paper's Fig. 6."""
    return [RaidGeometry.raid1(2), RaidGeometry.raid5(3), RaidGeometry.raid5(7)]
