"""Backup / tape-recovery model for a backed-up storage system.

The paper assumes a *backed-up* disk subsystem: when a double disk failure
(or an unrecovered human error) destroys the array contents, the data is
restored from an up-to-date backup (tape in the paper's example), so the
event costs downtime rather than permanent data loss.  The recovery duration
is governed by ``mu_DDF`` (0.03/h in the paper, i.e. a ~33 h mean restore).
"""

from __future__ import annotations

import numpy as np

from repro.distributions import Deterministic, Distribution, Exponential
from repro.exceptions import StorageModelError


class BackupSystem:
    """A backup target from which a destroyed array can be restored.

    Parameters
    ----------
    recovery_distribution:
        Distribution of full-restore durations in hours.
    label:
        Cosmetic name shown in traces ("tape-library", "object-store", ...).
    """

    def __init__(
        self,
        recovery_distribution: Distribution,
        label: str = "tape-library",
    ) -> None:
        self._distribution = recovery_distribution
        self._label = str(label)
        self._restores = 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rate(cls, recovery_rate_per_hour: float, label: str = "tape-library") -> "BackupSystem":
        """Build a backup with exponentially distributed restore times."""
        if recovery_rate_per_hour <= 0.0:
            raise StorageModelError(
                f"recovery rate must be positive, got {recovery_rate_per_hour!r}"
            )
        return cls(Exponential(recovery_rate_per_hour), label=label)

    @classmethod
    def from_fixed_duration(cls, duration_hours: float, label: str = "tape-library") -> "BackupSystem":
        """Build a backup with a deterministic restore duration."""
        if duration_hours <= 0.0:
            raise StorageModelError(f"restore duration must be positive, got {duration_hours!r}")
        return cls(Deterministic(duration_hours), label=label)

    @classmethod
    def from_capacity(
        cls,
        usable_capacity_gb: float,
        restore_bandwidth_mb_s: float,
        label: str = "tape-library",
    ) -> "BackupSystem":
        """Build a backup whose restore time is capacity / bandwidth."""
        if usable_capacity_gb <= 0.0 or restore_bandwidth_mb_s <= 0.0:
            raise StorageModelError("capacity and bandwidth must be positive")
        hours = (usable_capacity_gb * 1024.0 / restore_bandwidth_mb_s) / 3600.0
        return cls(Deterministic(hours), label=label)

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Return the backup target's display name."""
        return self._label

    @property
    def restores_performed(self) -> int:
        """Return how many restores have been sampled so far."""
        return self._restores

    @property
    def recovery_distribution(self) -> Distribution:
        """Return the restore-duration distribution."""
        return self._distribution

    def mean_recovery_hours(self) -> float:
        """Return the mean restore time in hours."""
        return self._distribution.mean()

    def equivalent_rate(self) -> float:
        """Return the ``mu_DDF`` style rate of the equivalent exponential."""
        return 1.0 / self._distribution.mean()

    def sample_recovery_hours(self, rng: np.random.Generator) -> float:
        """Draw one restore duration and count the restore."""
        self._restores += 1
        return float(self._distribution.sample(1, rng)[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BackupSystem(label={self._label!r}, mean={self.mean_recovery_hours():.2f}h)"
