"""Rebuild-time models.

The time to reconstruct a failed disk determines how long a RAID group sits
in its exposed state, which is the window in which a second failure or a
human error is catastrophic.  Three interchangeable models are provided:

* :class:`RateRebuildModel` — exponential rebuild with rate ``mu_DF``, the
  form assumed by the paper's Markov models (``mu_DF = 0.1/h`` i.e. a 10 h
  mean rebuild).
* :class:`FixedRebuildModel` — deterministic duration, matching the paper's
  Fig. 1 example ("rebuild time = 10 h").
* :class:`BandwidthRebuildModel` — capacity / bandwidth with an optional
  slowdown factor for arrays serving foreground I/O; useful for the example
  scripts exploring modern high-capacity disks.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.distributions import Deterministic, Distribution, Exponential
from repro.exceptions import StorageModelError
from repro.storage.raid import RaidGeometry


class RebuildModel(abc.ABC):
    """Strategy interface producing rebuild durations in hours."""

    @abc.abstractmethod
    def mean_hours(self) -> float:
        """Return the mean rebuild duration in hours."""

    @abc.abstractmethod
    def sample_hours(self, rng: np.random.Generator) -> float:
        """Draw one rebuild duration in hours."""

    def as_distribution(self) -> Distribution:
        """Return an equivalent distribution (exponential with same mean)."""
        return Exponential.from_mean(self.mean_hours())

    def equivalent_rate(self) -> float:
        """Return the rate of the exponential with the same mean (per hour)."""
        return 1.0 / self.mean_hours()


class RateRebuildModel(RebuildModel):
    """Exponential rebuild time parameterised by its rate (per hour)."""

    def __init__(self, rate_per_hour: float) -> None:
        if rate_per_hour <= 0.0:
            raise StorageModelError(f"rebuild rate must be positive, got {rate_per_hour!r}")
        self._distribution = Exponential(rate_per_hour)

    def mean_hours(self) -> float:
        return self._distribution.mean()

    def sample_hours(self, rng: np.random.Generator) -> float:
        return float(self._distribution.sample(1, rng)[0])

    def as_distribution(self) -> Distribution:
        return self._distribution

    def __repr__(self) -> str:
        return f"RateRebuildModel(rate={self._distribution.rate_parameter:.4g}/h)"


class FixedRebuildModel(RebuildModel):
    """Deterministic rebuild duration in hours."""

    def __init__(self, duration_hours: float) -> None:
        if duration_hours <= 0.0:
            raise StorageModelError(
                f"rebuild duration must be positive, got {duration_hours!r}"
            )
        self._duration = float(duration_hours)

    def mean_hours(self) -> float:
        return self._duration

    def sample_hours(self, rng: np.random.Generator) -> float:
        return self._duration

    def as_distribution(self) -> Distribution:
        return Deterministic(self._duration)

    def __repr__(self) -> str:
        return f"FixedRebuildModel(duration={self._duration:.4g}h)"


class BandwidthRebuildModel(RebuildModel):
    """Rebuild time derived from disk capacity and reconstruction bandwidth.

    Parameters
    ----------
    geometry:
        RAID geometry; parity groups must read all surviving disks, but the
        bottleneck is writing the replacement disk, so only the write side is
        modelled.
    disk_capacity_gb:
        Capacity of the replacement disk in GB.
    rebuild_bandwidth_mb_s:
        Sustained reconstruction write bandwidth in MB/s.
    foreground_load_factor:
        Multiplier > 1 accounting for throttling while serving foreground
        I/O; 1.0 means a dedicated rebuild.
    jitter_cv:
        Optional coefficient of variation; when positive, samples are drawn
        from a lognormal with the computed mean.
    """

    def __init__(
        self,
        geometry: RaidGeometry,
        disk_capacity_gb: float,
        rebuild_bandwidth_mb_s: float,
        foreground_load_factor: float = 1.0,
        jitter_cv: float = 0.0,
    ) -> None:
        if disk_capacity_gb <= 0.0:
            raise StorageModelError(f"capacity must be positive, got {disk_capacity_gb!r}")
        if rebuild_bandwidth_mb_s <= 0.0:
            raise StorageModelError(
                f"rebuild bandwidth must be positive, got {rebuild_bandwidth_mb_s!r}"
            )
        if foreground_load_factor < 1.0:
            raise StorageModelError(
                f"foreground load factor must be >= 1, got {foreground_load_factor!r}"
            )
        if jitter_cv < 0.0:
            raise StorageModelError(f"jitter cv must be >= 0, got {jitter_cv!r}")
        self._geometry = geometry
        self._capacity_gb = float(disk_capacity_gb)
        self._bandwidth_mb_s = float(rebuild_bandwidth_mb_s)
        self._load_factor = float(foreground_load_factor)
        self._jitter_cv = float(jitter_cv)

    def mean_hours(self) -> float:
        seconds = (self._capacity_gb * 1024.0) / self._bandwidth_mb_s
        return seconds * self._load_factor / 3600.0

    def sample_hours(self, rng: np.random.Generator) -> float:
        mean = self.mean_hours()
        if self._jitter_cv == 0.0:
            return mean
        from repro.distributions import LogNormal

        return float(LogNormal.from_mean_and_cv(mean, self._jitter_cv).sample(1, rng)[0])

    def __repr__(self) -> str:
        return (
            f"BandwidthRebuildModel(capacity={self._capacity_gb:.0f}GB, "
            f"bandwidth={self._bandwidth_mb_s:.0f}MB/s, mean={self.mean_hours():.2f}h)"
        )
