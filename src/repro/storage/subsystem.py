"""Multi-array disk subsystem.

A data-centre scale storage deployment consists of many RAID groups.  For
availability purposes the subsystem is a *series* system: the stored data set
is only fully available when every group holding part of it is available.
This module sizes such subsystems (how many groups of each geometry are
needed to reach a target usable capacity) and aggregates per-array
availability results into subsystem-level numbers — the aggregation used in
the paper's equal-usable-capacity comparison (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.availability.metrics import (
    availability_to_nines,
    downtime_hours_per_year,
    series_availability,
)
from repro.exceptions import StorageModelError
from repro.storage.array import DiskArray
from repro.storage.disk import DiskParameters
from repro.storage.raid import RaidGeometry


@dataclass(frozen=True)
class SubsystemAvailability:
    """Aggregated availability of a multi-array subsystem."""

    array_availability: float
    n_arrays: int
    subsystem_availability: float
    subsystem_nines: float
    downtime_hours_per_year: float
    expected_disk_failures_per_year: float


class DiskSubsystem:
    """A collection of identical RAID groups providing one logical capacity."""

    def __init__(
        self,
        geometry: RaidGeometry,
        n_arrays: int,
        disk_parameters: Optional[DiskParameters] = None,
        hot_spares_per_array: int = 0,
        subsystem_id: str = "subsystem",
    ) -> None:
        if n_arrays < 1:
            raise StorageModelError(f"subsystem needs at least one array, got {n_arrays!r}")
        self._id = str(subsystem_id)
        self._geometry = geometry
        self._n_arrays = int(n_arrays)
        self._parameters = disk_parameters or DiskParameters()
        self._hot_spares = int(hot_spares_per_array)
        self._arrays: Optional[List[DiskArray]] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_usable_capacity(
        cls,
        geometry: RaidGeometry,
        usable_disks: int,
        disk_parameters: Optional[DiskParameters] = None,
        hot_spares_per_array: int = 0,
        subsystem_id: str = "subsystem",
    ) -> "DiskSubsystem":
        """Size a subsystem that provides ``usable_disks`` of logical capacity.

        ``usable_disks`` must be an exact multiple of the geometry's data
        disks so that equal-capacity comparisons are exact.
        """
        usable_disks = int(usable_disks)
        if usable_disks < 1:
            raise StorageModelError(f"usable capacity must be positive, got {usable_disks!r}")
        if usable_disks % geometry.data_disks != 0:
            raise StorageModelError(
                f"usable capacity {usable_disks} is not a multiple of "
                f"{geometry.data_disks} data disks per {geometry.label} group"
            )
        return cls(
            geometry=geometry,
            n_arrays=usable_disks // geometry.data_disks,
            disk_parameters=disk_parameters,
            hot_spares_per_array=hot_spares_per_array,
            subsystem_id=subsystem_id,
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def subsystem_id(self) -> str:
        """Return the subsystem identifier."""
        return self._id

    @property
    def geometry(self) -> RaidGeometry:
        """Return the per-array geometry."""
        return self._geometry

    @property
    def n_arrays(self) -> int:
        """Return the number of RAID groups."""
        return self._n_arrays

    @property
    def total_disks(self) -> int:
        """Return the total number of physical disks (excluding spares)."""
        return self._n_arrays * self._geometry.n_disks

    @property
    def total_spares(self) -> int:
        """Return the total number of hot spares."""
        return self._n_arrays * self._hot_spares

    @property
    def usable_disks(self) -> int:
        """Return the logical capacity in disk units."""
        return self._n_arrays * self._geometry.data_disks

    @property
    def effective_replication_factor(self) -> float:
        """Return the subsystem ERF (physical / usable disks)."""
        return self.total_disks / self.usable_disks

    def arrays(self) -> List[DiskArray]:
        """Return (lazily materialising) the concrete array objects."""
        if self._arrays is None:
            self._arrays = [
                DiskArray(
                    f"{self._id}-a{i}",
                    self._geometry,
                    disk_parameters=self._parameters,
                    hot_spares=self._hot_spares,
                )
                for i in range(self._n_arrays)
            ]
        return list(self._arrays)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def expected_disk_failures_per_year(self, disk_failure_rate_per_hour: float) -> float:
        """Return the expected number of disk failures per year across the fleet."""
        if disk_failure_rate_per_hour < 0.0:
            raise StorageModelError(
                f"failure rate must be non-negative, got {disk_failure_rate_per_hour!r}"
            )
        return self.total_disks * disk_failure_rate_per_hour * 8760.0

    def aggregate_availability(
        self, array_availability: float, disk_failure_rate_per_hour: float = 0.0
    ) -> SubsystemAvailability:
        """Aggregate one array's availability across the whole subsystem.

        Arrays are assumed independent and identically distributed, so the
        subsystem availability is the per-array availability raised to the
        number of arrays (series system).
        """
        subsystem_avail = series_availability([array_availability] * self._n_arrays)
        return SubsystemAvailability(
            array_availability=float(array_availability),
            n_arrays=self._n_arrays,
            subsystem_availability=subsystem_avail,
            subsystem_nines=availability_to_nines(subsystem_avail),
            downtime_hours_per_year=downtime_hours_per_year(subsystem_avail),
            expected_disk_failures_per_year=self.expected_disk_failures_per_year(
                disk_failure_rate_per_hour
            ),
        )

    def aggregate_mixed_availability(
        self, array_availabilities: Sequence[float]
    ) -> float:
        """Aggregate explicitly listed per-array availabilities (series)."""
        if len(array_availabilities) != self._n_arrays:
            raise StorageModelError(
                f"expected {self._n_arrays} per-array availabilities, "
                f"got {len(array_availabilities)}"
            )
        return series_availability(array_availabilities)

    def describe(self) -> Dict[str, object]:
        """Return a serialisable summary of the subsystem layout."""
        return {
            "subsystem_id": self._id,
            "geometry": self._geometry.describe(),
            "n_arrays": self._n_arrays,
            "total_disks": self.total_disks,
            "usable_disks": self.usable_disks,
            "hot_spares_per_array": self._hot_spares,
            "erf": self.effective_replication_factor,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiskSubsystem(id={self._id!r}, geometry={self._geometry.label!r}, "
            f"arrays={self._n_arrays})"
        )
