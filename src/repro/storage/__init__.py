"""Storage substrate: disks, RAID geometries, arrays, rebuilds, backup, LSEs."""

from repro.storage.array import ArrayStatus, DiskArray
from repro.storage.backup import BackupSystem
from repro.storage.disk import (
    UNAVAILABLE_STATES,
    Disk,
    DiskParameters,
    DiskState,
)
from repro.storage.lse import LatentSectorErrorModel, LseParameters
from repro.storage.raid import RaidGeometry, RaidLevel, paper_configurations
from repro.storage.rebuild import (
    BandwidthRebuildModel,
    FixedRebuildModel,
    RateRebuildModel,
    RebuildModel,
)
from repro.storage.subsystem import DiskSubsystem, SubsystemAvailability

__all__ = [
    "ArrayStatus",
    "BackupSystem",
    "BandwidthRebuildModel",
    "Disk",
    "DiskArray",
    "DiskParameters",
    "DiskState",
    "DiskSubsystem",
    "FixedRebuildModel",
    "LatentSectorErrorModel",
    "LseParameters",
    "RaidGeometry",
    "RaidLevel",
    "RateRebuildModel",
    "RebuildModel",
    "SubsystemAvailability",
    "UNAVAILABLE_STATES",
    "paper_configurations",
]
