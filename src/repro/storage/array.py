"""Disk-array state machine.

:class:`DiskArray` tracks the health of every slot in one RAID group plus an
optional pool of hot spares.  It exposes exactly the predicates the Monte
Carlo availability simulator needs:

* is the user data currently accessible (``is_data_accessible``)?
* how many slots are missing (failed, wrongly removed or still rebuilding)?
* which disk should an operator replace next, and what happens when the
  operator pulls the wrong one?

The array itself is policy-free — replacement policies (conventional versus
automatic fail-over) live in :mod:`repro.human.policy` and drive the array
through these methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import StorageModelError
from repro.storage.disk import Disk, DiskParameters, DiskState
from repro.storage.raid import RaidGeometry


@dataclass(frozen=True)
class ArrayStatus:
    """Snapshot of an array's health used by policies and reports."""

    time: float
    operational_disks: int
    failed_disks: int
    wrongly_removed_disks: int
    rebuilding_disks: int
    available_spares: int
    data_accessible: bool


class DiskArray:
    """One RAID group made of :class:`~repro.storage.disk.Disk` slots."""

    def __init__(
        self,
        array_id: str,
        geometry: RaidGeometry,
        disk_parameters: Optional[DiskParameters] = None,
        hot_spares: int = 0,
    ) -> None:
        if not array_id:
            raise StorageModelError("array id must be non-empty")
        if hot_spares < 0:
            raise StorageModelError(f"hot spare count must be >= 0, got {hot_spares!r}")
        self._id = str(array_id)
        self._geometry = geometry
        self._parameters = disk_parameters or DiskParameters()
        self._disks: List[Disk] = [
            Disk(f"{array_id}-d{i}", self._parameters) for i in range(geometry.n_disks)
        ]
        self._spares: List[Disk] = [
            Disk(f"{array_id}-s{i}", self._parameters, state=DiskState.SPARE)
            for i in range(int(hot_spares))
        ]
        self._initial_spares = int(hot_spares)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def array_id(self) -> str:
        """Return the array identifier."""
        return self._id

    @property
    def geometry(self) -> RaidGeometry:
        """Return the RAID geometry."""
        return self._geometry

    @property
    def disks(self) -> List[Disk]:
        """Return the data/parity disk slots (not the spares)."""
        return list(self._disks)

    @property
    def spares(self) -> List[Disk]:
        """Return the hot-spare slots."""
        return list(self._spares)

    @property
    def disk_parameters(self) -> DiskParameters:
        """Return the per-disk static parameters."""
        return self._parameters

    def disk(self, disk_id: str) -> Disk:
        """Return the disk (data or spare) with the given id."""
        for disk in self._disks + self._spares:
            if disk.disk_id == disk_id:
                return disk
        raise StorageModelError(f"array {self._id}: unknown disk {disk_id!r}")

    # ------------------------------------------------------------------
    # Health predicates
    # ------------------------------------------------------------------
    def count_in_state(self, state: DiskState) -> int:
        """Return how many data slots are in the given state."""
        return sum(1 for disk in self._disks if disk.state is state)

    def missing_disks(self) -> int:
        """Return the number of data slots not currently serving data."""
        return sum(1 for disk in self._disks if not disk.is_available)

    def is_data_accessible(self) -> bool:
        """Return whether the user data can still be served.

        Data is accessible while the number of missing slots does not exceed
        the geometry's fault tolerance.
        """
        return self._geometry.survives(self.missing_disks())

    def available_spares(self) -> int:
        """Return the number of idle hot spares."""
        return sum(1 for disk in self._spares if disk.state is DiskState.SPARE)

    def operational_disks(self) -> List[Disk]:
        """Return the data slots currently serving data."""
        return [disk for disk in self._disks if disk.is_available]

    def failed_disks(self) -> List[Disk]:
        """Return the data slots with a hard failure."""
        return [disk for disk in self._disks if disk.state is DiskState.FAILED]

    def wrongly_removed_disks(self) -> List[Disk]:
        """Return healthy data slots that were pulled by mistake."""
        return [disk for disk in self._disks if disk.state is DiskState.WRONGLY_REMOVED]

    def rebuilding_disks(self) -> List[Disk]:
        """Return the slots currently being reconstructed."""
        return [disk for disk in self._disks if disk.state is DiskState.REBUILDING]

    def status(self, time: float) -> ArrayStatus:
        """Return a point-in-time health snapshot."""
        return ArrayStatus(
            time=float(time),
            operational_disks=self.count_in_state(DiskState.OPERATIONAL),
            failed_disks=self.count_in_state(DiskState.FAILED),
            wrongly_removed_disks=self.count_in_state(DiskState.WRONGLY_REMOVED),
            rebuilding_disks=self.count_in_state(DiskState.REBUILDING),
            available_spares=self.available_spares(),
            data_accessible=self.is_data_accessible(),
        )

    # ------------------------------------------------------------------
    # Failure and repair transitions
    # ------------------------------------------------------------------
    def fail_disk(self, time: float, disk: Optional[Disk] = None,
                  rng: Optional[np.random.Generator] = None) -> Disk:
        """Fail the given operational disk (or a uniformly chosen one)."""
        target = disk if disk is not None else self._pick_operational(rng)
        if target.state not in (DiskState.OPERATIONAL, DiskState.REBUILDING):
            raise StorageModelError(
                f"array {self._id}: cannot fail disk {target.disk_id} in state "
                f"{target.state.value!r}"
            )
        target.fail(time)
        return target

    def wrongly_remove_disk(
        self, time: float, rng: Optional[np.random.Generator] = None
    ) -> Disk:
        """Pull a healthy disk by mistake (the paper's human error)."""
        target = self._pick_operational(rng)
        target.wrongly_remove(time)
        return target

    def reinsert_disk(self, time: float, disk: Disk) -> None:
        """Undo a wrong removal; the disk returns with its data intact."""
        disk.reinsert(time)

    def start_rebuild(self, time: float, disk: Disk) -> None:
        """Insert a replacement into a missing slot and begin reconstruction."""
        disk.start_rebuild(time)

    def complete_rebuild(self, time: float, disk: Disk) -> None:
        """Finish reconstruction of a slot."""
        disk.complete_rebuild(time)

    def replace_disk(self, time: float, disk: Disk) -> None:
        """Replace a missing disk with a new one, skipping an explicit rebuild phase."""
        disk.replace(time)

    def restore_all(self, time: float) -> None:
        """Restore every slot to operational (used after a backup recovery)."""
        for disk in self._disks:
            if disk.state is DiskState.FAILED or disk.state is DiskState.WRONGLY_REMOVED:
                disk.replace(time)
            elif disk.state is DiskState.REBUILDING:
                disk.complete_rebuild(time)
        for spare in self._spares:
            if spare.state is DiskState.FAILED:
                spare.make_spare(time)

    # ------------------------------------------------------------------
    # Spare management
    # ------------------------------------------------------------------
    def allocate_spare(self, time: float) -> Optional[Disk]:
        """Take an idle hot spare out of the pool (``None`` when exhausted)."""
        for spare in self._spares:
            if spare.state is DiskState.SPARE:
                spare.start_rebuild(time)
                return spare
        return None

    def add_spare(self, time: float) -> Disk:
        """Add a brand-new hot spare to the pool (e.g. after replacement)."""
        spare = Disk(
            f"{self._id}-s{len(self._spares)}", self._parameters, state=DiskState.SPARE
        )
        self._spares.append(spare)
        return spare

    def release_spare(self, time: float, spare: Disk) -> None:
        """Return a spare that was allocated but not consumed."""
        if spare not in self._spares:
            raise StorageModelError(f"array {self._id}: {spare.disk_id} is not a spare slot")
        spare.make_spare(time)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _pick_operational(self, rng: Optional[np.random.Generator]) -> Disk:
        candidates = self.operational_disks()
        if not candidates:
            raise StorageModelError(f"array {self._id}: no operational disks left")
        if rng is None:
            return candidates[0]
        return candidates[int(rng.integers(len(candidates)))]

    def state_histogram(self) -> Dict[str, int]:
        """Return a ``state name -> count`` histogram across data slots."""
        histogram: Dict[str, int] = {}
        for disk in self._disks:
            histogram[disk.state.value] = histogram.get(disk.state.value, 0) + 1
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiskArray(id={self._id!r}, geometry={self._geometry.label!r}, "
            f"missing={self.missing_disks()})"
        )
