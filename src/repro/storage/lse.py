"""Latent sector error (LSE) model.

Latent sector errors — unreadable sectors discovered only when accessed —
are the second major data-loss contributor cited by the paper's related work
(Schroeder, Damouras & Gill, TOS 2010).  They matter during rebuilds: a
single LSE on a surviving disk of a degraded RAID5 group prevents
reconstruction of the affected stripe.

The paper's own models exclude LSEs (they focus on human error), so this
module is an *extension substrate*: it lets the Monte Carlo simulator and
the examples quantify how much worse the exposed window becomes when LSEs
are switched on, and it implements the scrubbing mitigation knob.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import StorageModelError


@dataclass(frozen=True)
class LseParameters:
    """Parameters of the latent-sector-error process for one disk.

    Attributes
    ----------
    errors_per_disk_year:
        Expected number of latent sector errors developed per disk-year.
        Field studies report numbers in the 0.1 - 5 range depending on disk
        class and age.
    sectors_per_disk:
        Total addressable sectors; used to convert error counts into the
        probability that a random stripe hits a bad sector.
    scrub_interval_hours:
        Period of the background scrubber that detects and repairs latent
        errors.  ``0`` disables scrubbing.
    """

    errors_per_disk_year: float = 1.0
    sectors_per_disk: int = 7_814_037_168  # 4 TB at 512-byte sectors
    scrub_interval_hours: float = 336.0  # two weeks

    def __post_init__(self) -> None:
        if self.errors_per_disk_year < 0.0:
            raise StorageModelError(
                f"LSE rate must be non-negative, got {self.errors_per_disk_year!r}"
            )
        if self.sectors_per_disk <= 0:
            raise StorageModelError(
                f"sectors per disk must be positive, got {self.sectors_per_disk!r}"
            )
        if self.scrub_interval_hours < 0.0:
            raise StorageModelError(
                f"scrub interval must be non-negative, got {self.scrub_interval_hours!r}"
            )


class LatentSectorErrorModel:
    """Poisson model of latent sector error accumulation and scrubbing."""

    def __init__(self, parameters: LseParameters = LseParameters()) -> None:
        self._params = parameters

    @property
    def parameters(self) -> LseParameters:
        """Return the model parameters."""
        return self._params

    def rate_per_hour(self) -> float:
        """Return the LSE arrival rate per disk-hour."""
        return self._params.errors_per_disk_year / 8760.0

    def expected_errors(self, exposure_hours: float) -> float:
        """Return the expected number of LSEs developed over an exposure window."""
        if exposure_hours < 0.0:
            raise StorageModelError(f"exposure must be non-negative, got {exposure_hours!r}")
        return self.rate_per_hour() * exposure_hours

    def effective_exposure_hours(self, window_hours: float) -> float:
        """Return the exposure window after accounting for periodic scrubbing.

        With a scrub every ``T`` hours, a latent error survives on average
        ``T / 2`` hours before being repaired, so the effective window for
        "an undetected LSE exists right now" is capped at ``T / 2``.
        """
        if window_hours < 0.0:
            raise StorageModelError(f"window must be non-negative, got {window_hours!r}")
        scrub = self._params.scrub_interval_hours
        if scrub <= 0.0:
            return window_hours
        return min(window_hours, scrub / 2.0)

    def probability_of_lse(self, exposure_hours: float) -> float:
        """Return ``P(at least one undetected LSE)`` after an exposure window."""
        effective = self.effective_exposure_hours(exposure_hours)
        return 1.0 - math.exp(-self.rate_per_hour() * effective)

    def probability_rebuild_blocked(
        self, surviving_disks: int, rebuild_hours: float, disk_age_hours: float = 8760.0
    ) -> float:
        """Return the probability that an LSE interrupts a RAID5 rebuild.

        A rebuild of a degraded group fails (for at least one stripe) if any
        of the ``surviving_disks`` carries an undetected latent error.  The
        error may have been accumulated since the last scrub plus during the
        rebuild window itself.
        """
        if surviving_disks < 1:
            raise StorageModelError(
                f"surviving disk count must be >= 1, got {surviving_disks!r}"
            )
        if rebuild_hours < 0.0 or disk_age_hours < 0.0:
            raise StorageModelError("rebuild and age durations must be non-negative")
        exposure = self.effective_exposure_hours(disk_age_hours) + rebuild_hours
        p_single = 1.0 - math.exp(-self.rate_per_hour() * exposure)
        return 1.0 - (1.0 - p_single) ** surviving_disks

    def sample_error_count(
        self, exposure_hours: float, rng: np.random.Generator
    ) -> int:
        """Draw the number of LSEs developed over an exposure window."""
        return int(rng.poisson(self.expected_errors(exposure_hours)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LatentSectorErrorModel(errors_per_disk_year="
            f"{self._params.errors_per_disk_year:.3g})"
        )
