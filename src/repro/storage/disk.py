"""Disk drive model.

A :class:`Disk` is a stateful object used by the event-driven Monte Carlo
simulator: it can fail, be wrongly pulled by an operator, be rebuilt onto and
be replaced.  Its time-to-failure behaviour is described by any
:class:`~repro.distributions.base.Distribution` (exponential for the Markov
cross-validation, Weibull for the field-calibrated runs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.distributions import Distribution, Exponential
from repro.exceptions import StorageModelError


class DiskState(enum.Enum):
    """Lifecycle states of a disk slot in an array."""

    #: Disk is healthy and serving I/O.
    OPERATIONAL = "operational"
    #: Disk has suffered a hard failure and no longer serves I/O.
    FAILED = "failed"
    #: Disk is healthy but was pulled out of the array by mistake
    #: (the paper's "wrong disk replacement" human error).
    WRONGLY_REMOVED = "wrongly_removed"
    #: A replacement disk is present and being rebuilt from redundancy.
    REBUILDING = "rebuilding"
    #: Slot holds a hot spare that is not yet part of the data layout.
    SPARE = "spare"


#: States in which the slot does not contribute data to the array.
UNAVAILABLE_STATES = frozenset(
    {DiskState.FAILED, DiskState.WRONGLY_REMOVED, DiskState.REBUILDING}
)


@dataclass
class DiskParameters:
    """Static description of a disk model.

    Attributes
    ----------
    capacity_gb:
        Usable capacity in gigabytes; only used by the rebuild-time model.
    failure_distribution:
        Time-to-failure distribution (hours).
    lse_rate_per_hour:
        Rate of latent sector errors per hour of operation (0 disables).
    """

    capacity_gb: float = 4000.0
    failure_distribution: Distribution = field(default_factory=lambda: Exponential(1e-6))
    lse_rate_per_hour: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_gb <= 0.0:
            raise StorageModelError(f"capacity must be positive, got {self.capacity_gb!r}")
        if self.lse_rate_per_hour < 0.0:
            raise StorageModelError(
                f"LSE rate must be non-negative, got {self.lse_rate_per_hour!r}"
            )


class Disk:
    """A single disk slot with its health state and failure clock."""

    def __init__(
        self,
        disk_id: str,
        parameters: Optional[DiskParameters] = None,
        state: DiskState = DiskState.OPERATIONAL,
    ) -> None:
        if not disk_id:
            raise StorageModelError("disk id must be non-empty")
        self._id = str(disk_id)
        self._parameters = parameters or DiskParameters()
        self._state = state
        self._state_since = 0.0
        self._failures = 0
        self._wrong_removals = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def disk_id(self) -> str:
        """Return the disk identifier."""
        return self._id

    @property
    def parameters(self) -> DiskParameters:
        """Return the static disk parameters."""
        return self._parameters

    @property
    def state(self) -> DiskState:
        """Return the current lifecycle state."""
        return self._state

    @property
    def state_since(self) -> float:
        """Return the simulation time (hours) of the last state change."""
        return self._state_since

    @property
    def failure_count(self) -> int:
        """Return the number of hard failures this slot has seen."""
        return self._failures

    @property
    def wrong_removal_count(self) -> int:
        """Return the number of times this disk was pulled by mistake."""
        return self._wrong_removals

    @property
    def is_available(self) -> bool:
        """Return whether the slot currently contributes data to the array."""
        return self._state == DiskState.OPERATIONAL

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_time_to_failure(self, rng: np.random.Generator) -> float:
        """Draw a fresh time-to-failure for this disk in hours."""
        return float(self._parameters.failure_distribution.sample(1, rng)[0])

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------
    def fail(self, time: float) -> None:
        """Record a hard failure of this disk."""
        self._require_state_in(
            {DiskState.OPERATIONAL, DiskState.REBUILDING, DiskState.SPARE}, "fail"
        )
        self._failures += 1
        self._set_state(DiskState.FAILED, time)

    def wrongly_remove(self, time: float) -> None:
        """Record that a healthy disk was pulled by mistake."""
        self._require_state_in({DiskState.OPERATIONAL}, "wrongly_remove")
        self._wrong_removals += 1
        self._set_state(DiskState.WRONGLY_REMOVED, time)

    def reinsert(self, time: float) -> None:
        """Undo a wrong removal: the disk is put back with its data intact."""
        self._require_state_in({DiskState.WRONGLY_REMOVED}, "reinsert")
        self._set_state(DiskState.OPERATIONAL, time)

    def start_rebuild(self, time: float) -> None:
        """A replacement disk is inserted and reconstruction begins."""
        self._require_state_in({DiskState.FAILED, DiskState.WRONGLY_REMOVED, DiskState.SPARE}, "start_rebuild")
        self._set_state(DiskState.REBUILDING, time)

    def complete_rebuild(self, time: float) -> None:
        """Reconstruction finished; the slot is fully redundant again."""
        self._require_state_in({DiskState.REBUILDING}, "complete_rebuild")
        self._set_state(DiskState.OPERATIONAL, time)

    def replace(self, time: float) -> None:
        """Swap in a brand-new disk without an explicit rebuild phase."""
        self._require_state_in({DiskState.FAILED, DiskState.WRONGLY_REMOVED}, "replace")
        self._set_state(DiskState.OPERATIONAL, time)

    def make_spare(self, time: float) -> None:
        """Designate the slot as holding an idle hot spare.

        Allowed from the rebuilding state too, so that a spare allocated for
        a rebuild that never started (or was aborted) can be returned to the
        pool.
        """
        self._require_state_in(
            {DiskState.OPERATIONAL, DiskState.FAILED, DiskState.REBUILDING}, "make_spare"
        )
        self._set_state(DiskState.SPARE, time)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _set_state(self, state: DiskState, time: float) -> None:
        if time < self._state_since:
            raise StorageModelError(
                f"disk {self._id}: state change at {time!r} precedes previous change "
                f"at {self._state_since!r}"
            )
        self._state = state
        self._state_since = float(time)

    def _require_state_in(self, allowed: set, action: str) -> None:
        if self._state not in allowed:
            raise StorageModelError(
                f"disk {self._id}: cannot {action} while in state {self._state.value!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Disk(id={self._id!r}, state={self._state.value!r})"
