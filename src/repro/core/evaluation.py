"""Backend-agnostic availability evaluation.

This is the single front door the paper's comparisons walk through: a
(parameters, policy) pair is evaluated either **analytically** (steady state
of the policy's CTMC face) or by **Monte Carlo** (the policy's simulation
face on the batch or sharded executor), and both backends return the same
:class:`AvailabilityEstimate` — point value, optional confidence interval
and solver/executor provenance.

Analytical evaluations go through a process-wide cache of
:class:`~repro.markov.template.ChainTemplate` objects: the policy's chain is
built **once** per (policy, geometry, structure) and later parameter points
only rewrite the affected generator entries and re-factorize (with automatic
dense/sparse solver selection by state count).  Repeated evaluations — and
especially the sweeps in :mod:`repro.core.sweep` — therefore never pay the
builder/validation cost again.

Usage::

    from repro.core.evaluation import evaluate

    est = evaluate(params, policy="automatic_failover", backend="analytical")
    mc = evaluate(params, policy="conventional", backend="monte_carlo",
                  n_iterations=50_000, seed=7)
    assert mc.contains(est.availability)   # the Fig. 4 acceptance test
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.montecarlo.config import (
    DEFAULT_HORIZON_HOURS,
    DEFAULT_ITERATIONS,
    MonteCarloConfig,
    PolicyRef,
)
from repro.core.montecarlo.compiled import resolve_kernel
from repro.core.montecarlo.results import MonteCarloResult
from repro.core.montecarlo.batch import run_stacked
from repro.core.montecarlo.runner import _use_batch_path, run_monte_carlo
from repro.core.parameters import AvailabilityParameters
from repro.core.policies.base import SimulationPolicy
from repro.core.policies.registry import resolve_policy
from repro.exceptions import ConfigurationError
from repro.markov.metrics import (
    AvailabilityResult,
    availability_from_up_mass,
    availability_result_from_pi,
)
from repro.markov.template import ChainTemplate

#: Accepted evaluation backends.  ``"auto"`` prefers the analytical face
#: when the policy has one and falls back to Monte Carlo otherwise.
BACKENDS: Tuple[str, ...] = ("analytical", "monte_carlo", "auto")


@dataclass(frozen=True)
class AvailabilityEstimate:
    """A backend-agnostic availability estimate.

    Attributes
    ----------
    availability / unavailability / nines:
        The point estimate (exact for the analytical backend, a mean over
        simulated lifetimes for Monte Carlo).
    policy:
        Registry name of the evaluated policy.
    backend:
        ``"analytical"`` or ``"monte_carlo"``.
    provenance:
        How the number was produced: the resolved steady-state solver
        (``"solver=dense"``) or the Monte Carlo executor
        (``"executor=sharded(4 workers)"``), for reports and debugging.
    ci_lower / ci_upper / confidence:
        Confidence interval of a Monte Carlo estimate; ``None`` for the
        analytical backend, which is exact given the model.
    n_iterations:
        Simulated lifetimes behind a Monte Carlo estimate.
    state_probabilities:
        Stationary distribution behind an analytical estimate.
    analytical_reference:
        Steady-state availability of the policy's analytical face at the
        same parameter point, attached to importance-sampled Monte Carlo
        estimates when the policy has a chain face — the free cross-check
        (and control variate) of the rare-event engine.
    retried_shards / resumed_shards:
        Fault-tolerance provenance of a Monte Carlo estimate: how many
        shard attempts were resubmitted after a failure, and how many
        shards were skipped because a checkpoint journal already held
        their records.  Both recompute bit-identical numbers.
    interrupted:
        ``True`` when the Monte Carlo run was cut short (Ctrl-C/SIGTERM)
        and this estimate covers only the shards collected before the
        interrupt; resumable when a journal was configured.
    """

    availability: float
    unavailability: float
    nines: float
    policy: str
    backend: str
    provenance: str
    ci_lower: Optional[float] = None
    ci_upper: Optional[float] = None
    confidence: Optional[float] = None
    n_iterations: Optional[int] = None
    state_probabilities: Optional[Dict[str, float]] = None
    analytical_reference: Optional[float] = None
    retried_shards: int = 0
    resumed_shards: int = 0
    interrupted: bool = False

    @property
    def has_interval(self) -> bool:
        """Return whether the estimate carries a confidence interval."""
        return self.ci_lower is not None and self.ci_upper is not None

    @property
    def half_width(self) -> Optional[float]:
        """Return the half-width of the confidence interval, if any."""
        if not self.has_interval:
            return None
        return 0.5 * (self.ci_upper - self.ci_lower)

    def contains(self, availability: float) -> bool:
        """Return whether a value lies inside this estimate's interval.

        Raises :class:`~repro.exceptions.ConfigurationError` when the
        estimate has no interval (analytical backend).
        """
        if not self.has_interval:
            raise ConfigurationError(
                f"{self.backend} estimate of {self.policy!r} carries no "
                "confidence interval"
            )
        return self.ci_lower <= availability <= self.ci_upper

    def as_dict(self) -> Dict[str, object]:
        """Return a serialisable summary."""
        payload: Dict[str, object] = {
            "availability": self.availability,
            "unavailability": self.unavailability,
            "nines": self.nines,
            "policy": self.policy,
            "backend": self.backend,
            "provenance": self.provenance,
        }
        if self.has_interval:
            payload["ci_lower"] = self.ci_lower
            payload["ci_upper"] = self.ci_upper
            payload["confidence"] = self.confidence
        if self.n_iterations is not None:
            payload["n_iterations"] = self.n_iterations
        if self.analytical_reference is not None:
            payload["analytical_reference"] = self.analytical_reference
        if self.retried_shards:
            payload["retried_shards"] = self.retried_shards
        if self.resumed_shards:
            payload["resumed_shards"] = self.resumed_shards
        if self.interrupted:
            payload["interrupted"] = self.interrupted
        return payload


# ----------------------------------------------------------------------
# Template cache
# ----------------------------------------------------------------------
#: Reference hep used to build full-structure templates: any value that
#: keeps every human-error state and transition in the chain.
_REFERENCE_HEP = 0.5

#: Default capacity of the template cache.  Each entry is one compiled
#: (policy, geometry, structure) chain; 64 comfortably covers the paper's
#: figure grids while keeping many-geometry workloads (capacity scans over
#: hundreds of RAID shapes) from growing the process without bound.
DEFAULT_TEMPLATE_CACHE_SIZE = 64

_TEMPLATE_CACHE: "OrderedDict[Tuple[str, str, bool, bool], ChainTemplate]" = OrderedDict()
_TEMPLATE_LOCK = threading.Lock()
_TEMPLATE_CACHE_MAXSIZE = DEFAULT_TEMPLATE_CACHE_SIZE
_TEMPLATE_CACHE_HITS = 0
_TEMPLATE_CACHE_MISSES = 0
_TEMPLATE_CACHE_EVICTIONS = 0


def _structure_key(
    policy: SimulationPolicy, params: AvailabilityParameters
) -> Tuple[str, str, bool, bool]:
    """Return the cache key of a (policy, geometry, structure) combination.

    The model builders drop states and transitions that a zero parameter
    makes unreachable (``hep == 0`` removes the human-error states,
    ``crash_rate == 0`` removes the wrong-pull crash edges), so those two
    flags select between structurally different templates of the same
    policy/geometry pair.
    """
    return (
        policy.name,
        params.geometry.label,
        params.hep > 0.0,
        params.crash_rate > 0.0,
    )


def _reference_params(params: AvailabilityParameters) -> AvailabilityParameters:
    """Return the parameter point a template's reference chain is built at.

    ``hep`` is pinned to a canonical mid-range value whenever it is positive
    so that denormal-small inputs cannot underflow states out of the
    reference build; every other rate keeps the caller's (positive) value.
    """
    if params.hep > 0.0:
        return params.with_hep(_REFERENCE_HEP)
    return params


def chain_template(
    policy: PolicyRef, params: AvailabilityParameters
) -> ChainTemplate:
    """Return the cached parameterized template for a policy at ``params``.

    The template is built from the policy's analytical face on first use and
    shared by every later evaluation with the same structure.  Raises
    :class:`~repro.exceptions.ConfigurationError` for policies without an
    analytical face.
    """
    global _TEMPLATE_CACHE_HITS, _TEMPLATE_CACHE_MISSES, _TEMPLATE_CACHE_EVICTIONS
    resolved = resolve_policy(policy)
    key = _structure_key(resolved, params)
    with _TEMPLATE_LOCK:
        template = _TEMPLATE_CACHE.get(key)
        if template is not None:
            _TEMPLATE_CACHE_HITS += 1
            _TEMPLATE_CACHE.move_to_end(key)
            return template
        _TEMPLATE_CACHE_MISSES += 1
    # The chain build is the expensive part — do it outside the lock, then
    # publish under the lock (a racing builder of the same key wins once).
    reference = _reference_params(params)
    built = ChainTemplate(resolved.build_chain(reference), reference)
    with _TEMPLATE_LOCK:
        template = _TEMPLATE_CACHE.setdefault(key, built)
        _TEMPLATE_CACHE.move_to_end(key)
        while len(_TEMPLATE_CACHE) > _TEMPLATE_CACHE_MAXSIZE:
            _TEMPLATE_CACHE.popitem(last=False)
            _TEMPLATE_CACHE_EVICTIONS += 1
        return template


def clear_template_cache() -> None:
    """Drop every cached template and reset the statistics counters."""
    global _TEMPLATE_CACHE_HITS, _TEMPLATE_CACHE_MISSES, _TEMPLATE_CACHE_EVICTIONS
    with _TEMPLATE_LOCK:
        _TEMPLATE_CACHE.clear()
        _TEMPLATE_CACHE_HITS = 0
        _TEMPLATE_CACHE_MISSES = 0
        _TEMPLATE_CACHE_EVICTIONS = 0


def set_template_cache_size(maxsize: int) -> None:
    """Bound the template cache to ``maxsize`` entries (LRU eviction).

    Shrinking below the current population evicts the least recently used
    templates immediately.
    """
    global _TEMPLATE_CACHE_MAXSIZE, _TEMPLATE_CACHE_EVICTIONS
    if int(maxsize) < 1:
        raise ConfigurationError(
            f"template cache needs room for at least one entry, got {maxsize!r}"
        )
    with _TEMPLATE_LOCK:
        _TEMPLATE_CACHE_MAXSIZE = int(maxsize)
        while len(_TEMPLATE_CACHE) > _TEMPLATE_CACHE_MAXSIZE:
            _TEMPLATE_CACHE.popitem(last=False)
            _TEMPLATE_CACHE_EVICTIONS += 1


def template_cache_stats() -> Dict[str, int]:
    """Return cache occupancy and hit/miss/eviction counters.

    The counters reset on :func:`clear_template_cache`; they exist so
    long-running many-geometry workloads can observe whether the LRU bound
    (:func:`set_template_cache_size`) is thrashing.
    """
    with _TEMPLATE_LOCK:
        return {
            "size": len(_TEMPLATE_CACHE),
            "maxsize": _TEMPLATE_CACHE_MAXSIZE,
            "hits": _TEMPLATE_CACHE_HITS,
            "misses": _TEMPLATE_CACHE_MISSES,
            "evictions": _TEMPLATE_CACHE_EVICTIONS,
        }


def analytical_policies() -> Tuple[str, ...]:
    """Return the registered policies that offer an analytical face."""
    from repro.core.policies.registry import available_policies, get_policy

    return tuple(
        name for name in available_policies() if get_policy(name).has_analytical_model
    )


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
def analytical_result(
    params: AvailabilityParameters,
    policy: PolicyRef = "conventional",
    method: str = "auto",
) -> AvailabilityResult:
    """Return the full analytical summary through the template cache.

    The policy's chain is resolved by name, its cached template
    re-evaluated at ``params`` and the stationary vector summarised exactly
    as :func:`repro.markov.metrics.steady_state_availability` would.
    Periodic-scheme policies route through the checker-cycle solver
    instead (no ergodic steady state exists for them).
    """
    resolved = resolve_policy(policy)
    if resolved.has_periodic_checks:
        return _periodic_availability_result(params, resolved, method)[0]
    template = chain_template(resolved, params)
    pi = template.evaluator(params).solve(method=method)
    pi_map = dict(zip(template.state_names, pi.tolist()))
    ups = tuple(template.state_names[i] for i in template.up_indices)
    return availability_result_from_pi(pi_map, template.state_names, ups)


def _periodic_availability_result(
    params: AvailabilityParameters,
    policy: SimulationPolicy,
    method: str,
) -> Tuple[AvailabilityResult, str]:
    """Solve a periodic-check policy's cycle-stationary availability.

    Periodic-scheme policies (the erasure family) have no ergodic steady
    state — repair happens at deterministic check instants — so instead of
    the template cache's stationary solve this path builds the policy's
    between-checks decay chain fresh (the chains are tiny, one state per
    share count) and hands it to the checker-cycle operator solver in
    :mod:`repro.markov.checker`.  The "state probabilities" reported are the
    expected fraction of a check period spent in each state.  ``method``
    maps ``"auto"`` to the exact augmented-``expm`` operator;
    ``"uniformization"`` selects the independent transient-engine reference.
    """
    from repro.markov.checker import (
        check_repair_matrix,
        cycle_stationary_availability,
    )

    scheme = policy.scheme.resolve(params)
    chain = policy.build_chain(params)
    repair = check_repair_matrix(
        chain, scheme.n_shares, scheme.k, scheme.repair_threshold, params.hep
    )
    checker_method = "uniformization" if method == "uniformization" else "expm"
    cycle = cycle_stationary_availability(
        chain, repair, scheme.check_period_hours, method=checker_method
    )
    fractions = cycle.occupancy_hours / float(scheme.check_period_hours)
    pi_map = dict(zip(cycle.state_names, fractions.tolist()))
    result = availability_result_from_pi(
        pi_map, cycle.state_names, chain.up_states()
    )
    provenance = f"solver=cycle({checker_method}) states={chain.n_states}"
    return result, provenance


def _evaluate_analytical(
    params: AvailabilityParameters,
    policy: SimulationPolicy,
    method: str,
) -> AvailabilityEstimate:
    if policy.has_periodic_checks:
        result, provenance = _periodic_availability_result(params, policy, method)
        return AvailabilityEstimate(
            availability=result.availability,
            unavailability=result.unavailability,
            nines=result.nines,
            policy=policy.name,
            backend="analytical",
            provenance=provenance,
            state_probabilities=dict(result.state_probabilities),
        )
    template = chain_template(policy, params)
    evaluator = template.evaluator(params)
    result = availability_result_from_pi(
        evaluator.state_probabilities(evaluator.solve(method=method)),
        template.state_names,
        tuple(template.state_names[i] for i in template.up_indices),
    )
    return AvailabilityEstimate(
        availability=result.availability,
        unavailability=result.unavailability,
        nines=result.nines,
        policy=policy.name,
        backend="analytical",
        provenance=(
            f"solver={evaluator.solver_name(method)} "
            f"states={template.n_states}"
        ),
        state_probabilities=dict(result.state_probabilities),
    )


def _executor_provenance(config: MonteCarloConfig) -> str:
    """Describe the execution stack actually used, kernel and pool included.

    The recorded kernel is the *resolved* backend (``auto`` shows up as
    whichever of ``numpy``/``compiled`` actually ran; an explicit ``fused``
    records ``fused``); the pool is recorded
    only where one exists — on the sharded path with more than one worker.
    """
    if config.uses_sharded_path:
        workers = int(config.workers)
        pool = f", {config.pool} pool" if workers > 1 else ""
        kernel = resolve_kernel(config.kernel)
        return (
            f"executor=sharded({workers} worker{'s' if workers != 1 else ''}"
            f"{pool}) kernel={kernel}"
        )
    if _use_batch_path(config):
        return f"executor=batch kernel={resolve_kernel(config.kernel)}"
    return "executor=scalar"


def _estimate_from_mc(
    result: MonteCarloResult, policy_name: str, provenance: str
) -> AvailabilityEstimate:
    return AvailabilityEstimate(
        availability=result.availability,
        unavailability=result.unavailability,
        nines=result.nines,
        policy=policy_name,
        backend="monte_carlo",
        provenance=provenance,
        ci_lower=result.interval.lower,
        ci_upper=result.interval.upper,
        confidence=result.interval.confidence,
        n_iterations=result.n_iterations,
        analytical_reference=result.analytical_reference,
        retried_shards=result.retried_shards,
        resumed_shards=result.resumed_shards,
        interrupted=result.interrupted,
    )


def _attach_analytical_reference(
    result: MonteCarloResult,
    policy: SimulationPolicy,
    params: AvailabilityParameters,
) -> None:
    """Pair an importance-sampled estimate with its analytical face.

    Dual-face policies get the template cache's steady-state availability
    at the same parameter point recorded on the result — a free sanity
    anchor for rare-event runs, where an off-regime biasing factor shows up
    as an estimate far outside the analytical neighbourhood.  Policies
    without a chain face leave the field ``None``.
    """
    if not policy.has_analytical_model:
        return
    if policy.has_periodic_checks:
        result.analytical_reference = _periodic_availability_result(
            params, policy, "auto"
        )[0].availability
        return
    template = chain_template(policy, params)
    pi = template.evaluator(params).solve(method="auto")
    availability, _, _ = availability_from_up_mass(pi[i] for i in template.up_indices)
    result.analytical_reference = availability


def evaluate(
    params: AvailabilityParameters,
    policy: PolicyRef = "conventional",
    backend: str = "auto",
    *,
    method: str = "auto",
    n_iterations: int = DEFAULT_ITERATIONS,
    horizon_hours: float = DEFAULT_HORIZON_HOURS,
    seed: Optional[int] = 0,
    confidence: float = 0.99,
    executor: str = "auto",
    workers: int = 1,
    shard_size: Optional[int] = None,
    target_half_width: Optional[float] = None,
    max_iterations: Optional[int] = None,
    transport: str = "auto",
    biasing: Optional[float] = None,
    allocator: str = "uniform",
    kernel: str = "auto",
    pool_kind: str = "process",
    pool=None,
    shard_timeout: Optional[float] = None,
    max_shard_retries: int = 0,
    retry_backoff: float = 0.1,
    checkpoint: Optional[str] = None,
    resume: Optional[str] = None,
) -> AvailabilityEstimate:
    """Evaluate a (parameters, policy) pair on the requested backend.

    Parameters
    ----------
    params:
        Rates, probabilities and RAID geometry of the scenario.
    policy:
        Registry name, legacy enum member or policy instance.
    backend:
        ``"analytical"`` (steady state of the policy's CTMC face),
        ``"monte_carlo"`` (simulation face), or ``"auto"``: analytical when
        the policy has a chain face, Monte Carlo otherwise.
    method:
        Steady-state solver for the analytical backend (``"auto"`` selects
        dense/sparse by state count).
    n_iterations, horizon_hours, seed, confidence, executor, workers,
    shard_size, target_half_width, max_iterations, biasing, allocator,
    kernel:
        Monte Carlo configuration, matching
        :class:`~repro.core.montecarlo.config.MonteCarloConfig`.  A set
        ``biasing`` runs the importance-sampled kernels and, for dual-face
        policies, attaches the analytical availability as
        ``analytical_reference``.
    pool_kind:
        Which executor the sharded path fans shards out over
        (``MonteCarloConfig.pool``): ``"process"``, ``"thread"`` or
        ``"serial"``.  Named ``pool_kind`` here because ``pool`` is the
        long-standing shared-executor argument below.
    pool:
        Optional externally owned worker pool shared across sharded runs
        (see :func:`repro.core.montecarlo.parallel.worker_pool`).
    shard_timeout, max_shard_retries, retry_backoff:
        Fault tolerance of the sharded executor: timed-out, crashed or
        worker-lost shards are resubmitted (bit-identically) up to
        ``max_shard_retries`` times.  See
        :class:`~repro.core.montecarlo.config.MonteCarloConfig`.
    checkpoint, resume:
        Durable shard-journal path: completed shards are recorded as they
        finish and skipped on restart (``resume`` requires the journal to
        exist).  Sharded Monte Carlo runs only.
    """
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    resolved = resolve_policy(policy)
    if backend == "auto":
        backend = "analytical" if resolved.has_analytical_model else "monte_carlo"
    if backend == "analytical":
        return _evaluate_analytical(params, resolved, method)
    config = MonteCarloConfig(
        params=params,
        policy=resolved,
        horizon_hours=horizon_hours,
        n_iterations=n_iterations,
        confidence=confidence,
        seed=seed,
        executor=executor,
        workers=workers,
        shard_size=shard_size,
        target_half_width=target_half_width,
        max_iterations=max_iterations,
        transport=transport,
        biasing=biasing,
        allocator=allocator,
        kernel=kernel,
        pool=pool_kind,
        shard_timeout=shard_timeout,
        max_shard_retries=max_shard_retries,
        retry_backoff=retry_backoff,
        checkpoint=checkpoint,
        resume=resume,
    )
    result = run_monte_carlo(config, pool=pool)
    if biasing is not None:
        _attach_analytical_reference(result, resolved, params)
    return _estimate_from_mc(result, resolved.name, _executor_provenance(config))


def evaluate_stacked(
    points: Sequence[AvailabilityParameters],
    policy: PolicyRef = "conventional",
    *,
    n_iterations: int = DEFAULT_ITERATIONS,
    horizon_hours: float = DEFAULT_HORIZON_HOURS,
    seed: Optional[int] = 0,
    confidence: float = 0.99,
    workers: int = 1,
    shard_size: Optional[int] = None,
    target_half_width: Optional[float] = None,
    max_iterations: Optional[int] = None,
    crn: bool = False,
    transport: str = "auto",
    biasing: Optional[float] = None,
    allocator: str = "uniform",
    kernel: str = "auto",
    pool_kind: str = "process",
    pool=None,
    shard_timeout: Optional[float] = None,
    max_shard_retries: int = 0,
    retry_backoff: float = 0.1,
    checkpoint: Optional[str] = None,
    resume: Optional[str] = None,
) -> List[AvailabilityEstimate]:
    """Monte Carlo evaluate many parameter points as one stacked grid.

    The whole ``points x n_iterations`` grid runs through the policy's
    stacked batch kernel (one kernel invocation per shard of the flattened
    axis) instead of one full study per point — the Monte Carlo counterpart
    of the analytical backend's batched ``solve_many``.  Policies without a
    stacked-capable kernel fall back to one
    :func:`evaluate` call per point (sharing ``pool``), so the function
    works for every registered policy.

    ``crn=True`` makes every point consume identical base streams (common
    random numbers) for variance-reduced contrasts between neighbouring
    points; see :func:`repro.core.montecarlo.batch.run_stacked`.

    ``target_half_width`` turns the grid adaptive: shard rounds keep being
    dispatched — split across points by ``allocator`` — until every point's
    interval meets the target (or its ceiling).  ``biasing`` runs the grid
    on the importance-sampled kernels; dual-face policies additionally get
    the analytical availability attached to every estimate.
    """
    resolved = resolve_policy(policy)
    if not resolved.can_stack:
        if crn:
            raise ConfigurationError(
                f"policy {resolved.name!r} has no stacked-capable kernel; "
                "common random numbers cannot be honoured on the per-point "
                "fallback"
            )
        if checkpoint is not None or resume is not None:
            raise ConfigurationError(
                f"policy {resolved.name!r} has no stacked-capable kernel; "
                "a shard journal spans one stacked grid and cannot cover "
                "the per-point fallback"
            )
        return [
            evaluate(
                params,
                policy=resolved,
                backend="monte_carlo",
                n_iterations=n_iterations,
                horizon_hours=horizon_hours,
                seed=seed,
                confidence=confidence,
                workers=workers,
                shard_size=shard_size,
                target_half_width=target_half_width,
                max_iterations=max_iterations,
                transport=transport,
                biasing=biasing,
                allocator=allocator,
                kernel=kernel,
                pool_kind=pool_kind,
                pool=pool,
                shard_timeout=shard_timeout,
                max_shard_retries=max_shard_retries,
                retry_backoff=retry_backoff,
            )
            for params in points
        ]
    configs = [
        MonteCarloConfig(
            params=params,
            policy=resolved,
            horizon_hours=horizon_hours,
            n_iterations=n_iterations,
            confidence=confidence,
            seed=seed,
            workers=workers,
            shard_size=shard_size,
            target_half_width=target_half_width,
            max_iterations=max_iterations,
            transport=transport,
            biasing=biasing,
            allocator=allocator,
            kernel=kernel,
            pool=pool_kind,
            shard_timeout=shard_timeout,
            max_shard_retries=max_shard_retries,
            retry_backoff=retry_backoff,
            checkpoint=checkpoint,
            resume=resume,
        )
        for params in points
    ]
    workers = int(workers)
    pool_note = f", {pool_kind} pool" if workers > 1 else ""
    provenance = (
        f"executor=stacked({workers} worker{'s' if workers != 1 else ''}"
        f"{pool_note}{', crn' if crn else ''}) kernel={resolve_kernel(kernel)}"
    )
    results = run_stacked(configs, crn=crn, pool=pool)
    if biasing is not None:
        for result, params in zip(results, points):
            _attach_analytical_reference(result, resolved, params)
    return [
        _estimate_from_mc(result, resolved.name, provenance)
        for result in results
    ]
