"""Equal-usable-capacity comparison of RAID configurations.

The paper's Fig. 6 compares RAID1(1+1), RAID5(3+1) and RAID5(7+1) *at the
same usable capacity*: because their Effective Replication Factors differ
(2, 1.33, 1.14), they need different numbers of physical disks and different
numbers of RAID groups to store the same data.  The subsystem is a series
system of its groups, so the comparison couples each geometry's per-group
availability (from the Markov model) with the number of groups it needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.availability.erf import smallest_common_usable_capacity
from repro.availability.metrics import availability_to_nines, downtime_hours_per_year
from repro.core.evaluation import analytical_result
from repro.core.montecarlo.config import PolicyRef
from repro.core.parameters import AvailabilityParameters
from repro.exceptions import ConfigurationError
from repro.storage.raid import RaidGeometry, paper_configurations
from repro.storage.subsystem import DiskSubsystem


@dataclass(frozen=True)
class ConfigurationComparison:
    """Availability of one RAID configuration at a fixed usable capacity."""

    geometry_label: str
    n_arrays: int
    total_disks: int
    erf: float
    array_availability: float
    array_nines: float
    subsystem_availability: float
    subsystem_nines: float
    downtime_hours_per_year: float

    def as_dict(self) -> Dict[str, object]:
        """Return a serialisable row for reports."""
        return {
            "configuration": self.geometry_label,
            "arrays": self.n_arrays,
            "total_disks": self.total_disks,
            "erf": self.erf,
            "array_availability": self.array_availability,
            "array_nines": self.array_nines,
            "subsystem_availability": self.subsystem_availability,
            "subsystem_nines": self.subsystem_nines,
            "downtime_hours_per_year": self.downtime_hours_per_year,
        }


def compare_configuration(
    geometry: RaidGeometry,
    base_params: AvailabilityParameters,
    usable_disks: int,
    model: PolicyRef = "conventional",
    method: str = "auto",
) -> ConfigurationComparison:
    """Evaluate one geometry at the requested usable capacity.

    ``model`` names the policy whose analytical face is solved per array;
    the cached chain template makes the repeated per-geometry solves cheap.
    """
    params = base_params.with_geometry(geometry)
    subsystem = DiskSubsystem.for_usable_capacity(geometry, usable_disks)
    array_result = analytical_result(params, model, method=method)
    aggregated = subsystem.aggregate_availability(
        array_result.availability, params.disk_failure_rate
    )
    return ConfigurationComparison(
        geometry_label=geometry.label,
        n_arrays=subsystem.n_arrays,
        total_disks=subsystem.total_disks,
        erf=subsystem.effective_replication_factor,
        array_availability=array_result.availability,
        array_nines=array_result.nines,
        subsystem_availability=aggregated.subsystem_availability,
        subsystem_nines=aggregated.subsystem_nines,
        downtime_hours_per_year=downtime_hours_per_year(aggregated.subsystem_availability),
    )


def compare_equal_capacity(
    base_params: AvailabilityParameters,
    geometries: Optional[Sequence[RaidGeometry]] = None,
    usable_disks: Optional[int] = None,
    model: PolicyRef = "conventional",
    method: str = "auto",
) -> List[ConfigurationComparison]:
    """Compare several geometries at the same usable capacity.

    Parameters
    ----------
    base_params:
        Shared rates and hep; the geometry field is overridden per entry.
    geometries:
        Configurations to compare; defaults to the paper's three.
    usable_disks:
        Usable capacity in disk units; defaults to the smallest capacity
        divisible by every geometry's data-disk count (21 for the paper's
        trio), which keeps the comparison exact.
    model:
        Policy whose analytical face is used per array.
    """
    configs = list(geometries) if geometries is not None else paper_configurations()
    if not configs:
        raise ConfigurationError("at least one geometry is required")
    if usable_disks is None:
        usable_disks = smallest_common_usable_capacity(
            *[geometry.data_disks for geometry in configs]
        )
    return [
        compare_configuration(geometry, base_params, usable_disks, model=model, method=method)
        for geometry in configs
    ]


def ranking(comparisons: Sequence[ConfigurationComparison]) -> List[str]:
    """Return configuration labels ordered from most to least available."""
    ordered = sorted(comparisons, key=lambda c: c.subsystem_availability, reverse=True)
    return [entry.geometry_label for entry in ordered]


def ranking_inverted_by_human_error(
    base_params: AvailabilityParameters,
    geometries: Optional[Sequence[RaidGeometry]] = None,
    usable_disks: Optional[int] = None,
    hep_with_error: float = 0.01,
) -> Dict[str, List[str]]:
    """Return the availability ranking with and without human error.

    This is the paper's second headline observation: the ranking that holds
    at ``hep = 0`` (mirroring wins) can invert once human errors are
    accounted for, because the mirror's higher ERF means more disks and more
    operator interventions.
    """
    without = compare_equal_capacity(
        base_params.without_human_error(),
        geometries=geometries,
        usable_disks=usable_disks,
        model="baseline",
    )
    with_error = compare_equal_capacity(
        base_params.with_hep(hep_with_error),
        geometries=geometries,
        usable_disks=usable_disks,
        model="conventional",
    )
    return {
        "without_human_error": ranking(without),
        "with_human_error": ranking(with_error),
    }


def nines_by_configuration(
    comparisons: Sequence[ConfigurationComparison],
) -> Dict[str, float]:
    """Return ``{configuration label: subsystem nines}`` for plotting/tables."""
    return {entry.geometry_label: entry.subsystem_nines for entry in comparisons}
