"""Downtime-underestimation analysis.

The paper's headline number: ignoring incorrect repair service underestimates
system downtime by **up to 263X** (abstract and Section I).  The
underestimation factor at a given operating point is::

    factor = unavailability(model with hep) / unavailability(model with hep = 0)

The factor grows as the disk failure rate shrinks, because the traditional
model's unavailability scales with ``lambda**2`` (two failures needed) while
the human-error contribution scales with ``lambda`` (one failure plus one
botched replacement).  "Up to" therefore refers to the smallest failure rate
in the evaluated range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.availability.metrics import unavailability_ratio
from repro.core.evaluation import analytical_result
from repro.core.montecarlo.config import PolicyRef
from repro.core.parameters import AvailabilityParameters
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class UnderestimationPoint:
    """Underestimation factor at one (failure rate, hep) operating point."""

    disk_failure_rate: float
    hep: float
    unavailability_with_hep: float
    unavailability_without_hep: float
    factor: float

    def as_dict(self) -> Dict[str, float]:
        """Return the point as a plain mapping."""
        return {
            "disk_failure_rate": self.disk_failure_rate,
            "hep": self.hep,
            "unavailability_with_hep": self.unavailability_with_hep,
            "unavailability_without_hep": self.unavailability_without_hep,
            "factor": self.factor,
        }


def underestimation_factor(
    params: AvailabilityParameters,
    model: PolicyRef = "conventional",
    method: str = "auto",
) -> UnderestimationPoint:
    """Return the underestimation factor at one operating point."""
    if params.hep <= 0.0:
        raise ConfigurationError(
            "underestimation_factor requires hep > 0; the hep = 0 case is the baseline"
        )
    with_hep = analytical_result(params, model, method=method)
    without_hep = analytical_result(
        params.without_human_error(), "baseline", method=method
    )
    return UnderestimationPoint(
        disk_failure_rate=params.disk_failure_rate,
        hep=params.hep,
        unavailability_with_hep=with_hep.unavailability,
        unavailability_without_hep=without_hep.unavailability,
        factor=unavailability_ratio(with_hep.unavailability, without_hep.unavailability),
    )


def underestimation_sweep(
    base_params: AvailabilityParameters,
    failure_rates: Sequence[float],
    hep: float = 0.01,
    model: PolicyRef = "conventional",
) -> List[UnderestimationPoint]:
    """Return underestimation factors across a failure-rate sweep."""
    if not failure_rates:
        raise ConfigurationError("failure_rates must be non-empty")
    points = []
    for rate in failure_rates:
        params = base_params.with_failure_rate(rate).with_hep(hep)
        points.append(underestimation_factor(params, model=model))
    return points


def maximum_underestimation(
    base_params: AvailabilityParameters,
    failure_rates: Sequence[float],
    hep_values: Sequence[float] = (0.001, 0.01),
    model: PolicyRef = "conventional",
) -> UnderestimationPoint:
    """Return the worst-case (largest) underestimation across a grid.

    This is how the paper's "up to 263X" number is obtained: the maximum of
    the factor over the evaluated failure rates and hep values.
    """
    best: Optional[UnderestimationPoint] = None
    for hep in hep_values:
        if hep <= 0.0:
            continue
        for point in underestimation_sweep(base_params, failure_rates, hep=hep, model=model):
            if best is None or point.factor > best.factor:
                best = point
    if best is None:
        raise ConfigurationError("no positive hep values supplied")
    return best


def orders_of_magnitude(factor: float) -> float:
    """Express an underestimation factor in orders of magnitude (log10)."""
    import math

    if factor <= 0.0:
        raise ConfigurationError(f"factor must be positive, got {factor!r}")
    return math.log10(factor)
