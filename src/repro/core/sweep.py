"""Parameter sweeps over the availability models.

Every figure in the paper is a sweep: availability versus failure rate
(Fig. 4), versus hep (Figs. 5-7), across RAID configurations (Fig. 6) and
across policies (Fig. 7).  These helpers run such sweeps over the analytical
models and return plain dictionaries of series, which the experiment modules
and benchmarks turn into tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.models.generic import ModelKind, solve_model
from repro.core.parameters import AvailabilityParameters
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated point of a parameter sweep."""

    x: float
    availability: float
    unavailability: float
    nines: float

    def as_dict(self) -> Dict[str, float]:
        """Return the point as a plain mapping."""
        return {
            "x": self.x,
            "availability": self.availability,
            "unavailability": self.unavailability,
            "nines": self.nines,
        }


def _solve_point(params: AvailabilityParameters, model: ModelKind, x: float) -> SweepPoint:
    result = solve_model(params, model)
    return SweepPoint(
        x=float(x),
        availability=result.availability,
        unavailability=result.unavailability,
        nines=result.nines,
    )


def sweep_failure_rate(
    base_params: AvailabilityParameters,
    failure_rates: Sequence[float],
    model: ModelKind = ModelKind.CONVENTIONAL,
) -> List[SweepPoint]:
    """Evaluate the model across a range of disk failure rates."""
    if not failure_rates:
        raise ConfigurationError("failure_rates must be non-empty")
    return [
        _solve_point(base_params.with_failure_rate(rate), model, rate)
        for rate in failure_rates
    ]


def sweep_hep(
    base_params: AvailabilityParameters,
    hep_values: Sequence[float],
    model: ModelKind = ModelKind.CONVENTIONAL,
) -> List[SweepPoint]:
    """Evaluate the model across a range of human error probabilities."""
    if not hep_values:
        raise ConfigurationError("hep_values must be non-empty")
    points = []
    for hep in hep_values:
        params = base_params.with_hep(hep)
        kind = ModelKind.BASELINE if hep == 0.0 and model is ModelKind.CONVENTIONAL else model
        points.append(_solve_point(params, kind, hep))
    return points


def sweep_hep_for_failure_rates(
    base_params: AvailabilityParameters,
    hep_values: Sequence[float],
    failure_rates: Sequence[float],
    model: ModelKind = ModelKind.CONVENTIONAL,
) -> Dict[float, List[SweepPoint]]:
    """Return one hep sweep per failure rate (the shape of Fig. 5)."""
    if not failure_rates:
        raise ConfigurationError("failure_rates must be non-empty")
    return {
        float(rate): sweep_hep(base_params.with_failure_rate(rate), hep_values, model)
        for rate in failure_rates
    }


def sweep_policies(
    base_params: AvailabilityParameters,
    hep_values: Sequence[float],
    models: Optional[Sequence[ModelKind]] = None,
) -> Dict[str, List[SweepPoint]]:
    """Return one hep sweep per analytical model (the shape of Fig. 7)."""
    chosen = list(models) if models is not None else [
        ModelKind.CONVENTIONAL,
        ModelKind.AUTOMATIC_FAILOVER,
    ]
    if not chosen:
        raise ConfigurationError("at least one model kind is required")
    series: Dict[str, List[SweepPoint]] = {}
    for kind in chosen:
        points = []
        for hep in hep_values:
            params = base_params.with_hep(hep)
            effective = ModelKind.BASELINE if (hep == 0.0 and kind is ModelKind.CONVENTIONAL) else kind
            points.append(_solve_point(params, effective, hep))
        series[kind.value] = points
    return series


def nines_series(points: Sequence[SweepPoint]) -> List[float]:
    """Return the nines column of a sweep."""
    return [point.nines for point in points]


def availability_series(points: Sequence[SweepPoint]) -> List[float]:
    """Return the availability column of a sweep."""
    return [point.availability for point in points]


def x_series(points: Sequence[SweepPoint]) -> List[float]:
    """Return the x column of a sweep."""
    return [point.x for point in points]
