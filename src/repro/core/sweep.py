"""Generic parameter-sweep engine over the evaluation backends.

Every figure in the paper is a sweep: availability versus failure rate
(Fig. 4), versus hep (Figs. 5-7), across RAID configurations (Fig. 6) and
across policies (Fig. 7).  The engine here runs such sweeps against any
registered policy on either evaluation backend:

* **analytical** sweeps are template-driven: the policy's chain is built
  once per (policy, geometry, structure) through
  :mod:`repro.core.evaluation`'s cache, and each sweep point only rewrites
  the generator entries whose symbolic rates mention the swept parameter,
  then re-factorizes (dense or sparse by state count).  No builder, chain
  or solver objects are reconstructed per point — see
  ``benchmarks/bench_sweep.py`` for the resulting speedup over the retired
  per-point rebuild loop (kept as :func:`sweep_per_point_rebuild` for
  reference and regression testing).
* **monte_carlo** sweeps run one study per point through the policy's
  simulation face, sharing a single worker pool across all points when
  ``workers > 1`` (the sharded executor of PR 2).

The legacy helpers (:func:`sweep_hep`, :func:`sweep_failure_rate`, ...) keep
their signatures and continue to accept the deprecated ``ModelKind`` members
anywhere a policy is expected.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.core.evaluation import chain_template, evaluate
from repro.core.montecarlo.config import (
    DEFAULT_HORIZON_HOURS,
    DEFAULT_ITERATIONS,
    PolicyRef,
)
from repro.core.montecarlo.parallel import worker_pool
from repro.core.parameters import AvailabilityParameters
from repro.core.policies.registry import resolve_policy
from repro.exceptions import ConfigurationError
from repro.markov.metrics import availability_from_up_mass, steady_state_availability

#: Sweepable parameter axes: public alias -> AvailabilityParameters field.
SWEEP_AXES: Dict[str, str] = {
    "hep": "hep",
    "failure_rate": "disk_failure_rate",
    "disk_failure_rate": "disk_failure_rate",
    "repair_rate": "disk_repair_rate",
    "disk_repair_rate": "disk_repair_rate",
    "ddf_recovery_rate": "ddf_recovery_rate",
    "human_error_rate": "human_error_rate",
    "spare_replacement_rate": "spare_replacement_rate",
    "crash_rate": "crash_rate",
}

#: Sweep backends: the evaluation backends of :mod:`repro.core.evaluation`.
SWEEP_BACKENDS = ("analytical", "monte_carlo", "auto")


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated point of a parameter sweep.

    Monte Carlo backed points additionally carry their confidence interval;
    analytical points leave ``ci_lower``/``ci_upper`` as ``None``.
    """

    x: float
    availability: float
    unavailability: float
    nines: float
    ci_lower: Optional[float] = None
    ci_upper: Optional[float] = None

    @property
    def has_interval(self) -> bool:
        """Return whether this point carries a confidence interval."""
        return self.ci_lower is not None and self.ci_upper is not None

    def as_dict(self) -> Dict[str, float]:
        """Return the point as a plain mapping (CI keys only when present)."""
        payload = {
            "x": self.x,
            "availability": self.availability,
            "unavailability": self.unavailability,
            "nines": self.nines,
        }
        if self.has_interval:
            payload["ci_lower"] = self.ci_lower
            payload["ci_upper"] = self.ci_upper
        return payload


def _axis_field(axis: str) -> str:
    try:
        return SWEEP_AXES[axis]
    except KeyError:
        raise ConfigurationError(
            f"unknown sweep axis {axis!r}; known axes: {sorted(SWEEP_AXES)}"
        ) from None


def _with_axis(
    params: AvailabilityParameters, field: str, value: float
) -> AvailabilityParameters:
    return replace(params, **{field: float(value)})


def _point_from_pi(pi, up_indices, x: float) -> SweepPoint:
    # The clip/convert arithmetic lives in availability_from_up_mass so sweep
    # points and evaluate()/analytical_result() can never drift apart.
    availability, unavailability, nines = availability_from_up_mass(
        pi[i] for i in up_indices
    )
    return SweepPoint(
        x=float(x),
        availability=availability,
        unavailability=unavailability,
        nines=nines,
    )


def sweep(
    base_params: AvailabilityParameters,
    axis: str,
    values: Sequence[float],
    policy: PolicyRef = "conventional",
    backend: str = "auto",
    *,
    method: str = "auto",
    mc_iterations: int = DEFAULT_ITERATIONS,
    mc_horizon_hours: float = DEFAULT_HORIZON_HOURS,
    seed: Optional[int] = 0,
    confidence: float = 0.99,
    executor: str = "auto",
    workers: int = 1,
    target_half_width: Optional[float] = None,
    pool=None,
) -> List[SweepPoint]:
    """Sweep one parameter axis for one policy on one backend.

    Parameters
    ----------
    base_params:
        Parameter point every swept value is derived from.
    axis:
        One of :data:`SWEEP_AXES` (``"hep"``, ``"failure_rate"``, ...).
    values:
        Axis values, evaluated in order.
    policy:
        Registry name, legacy enum member or policy instance.
    backend:
        ``"analytical"``, ``"monte_carlo"`` or ``"auto"`` (analytical when
        the policy has a chain face).
    method:
        Steady-state solver for analytical sweeps (``"auto"`` = dense/sparse
        by state count).
    mc_iterations, mc_horizon_hours, seed, confidence, executor, workers,
    target_half_width:
        Monte Carlo configuration for simulation-backed sweeps; every point
        uses the same master seed so neighbouring points share their random
        stream layout.
    pool:
        Optional externally owned worker pool; ``None`` with ``workers > 1``
        starts one pool for the whole sweep (not one per point).
    """
    if not values:
        raise ConfigurationError(f"sweep over {axis!r} requires at least one value")
    if backend not in SWEEP_BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {SWEEP_BACKENDS}, got {backend!r}"
        )
    field = _axis_field(axis)
    resolved = resolve_policy(policy)
    if backend == "auto":
        backend = "analytical" if resolved.has_analytical_model else "monte_carlo"

    if backend == "analytical":
        # Points are grouped by chain structure — the hep = 0 rung of a sweep
        # uses the reduced chain (exactly as the retired ModelKind dispatch
        # did) — and each group is handed to the template's vectorized
        # solve_many: only the generator entries the swept symbol touches are
        # re-evaluated, and one batched factorization covers the whole group.
        groups: Dict[int, List[int]] = {}
        templates: Dict[int, object] = {}
        point_params: List[AvailabilityParameters] = []
        for index, value in enumerate(values):
            params = _with_axis(base_params, field, value)
            template = chain_template(resolved, params)
            templates[id(template)] = template
            groups.setdefault(id(template), []).append(index)
            point_params.append(params)
        points: List[Optional[SweepPoint]] = [None] * len(values)
        for key, indices in groups.items():
            template = templates[key]
            pis = template.solve_many(
                [point_params[i] for i in indices], method=method
            )
            for row, i in enumerate(indices):
                points[i] = _point_from_pi(pis[row], template.up_indices, values[i])
        return points

    # Monte Carlo: one study per point, one shared pool for the whole sweep.
    context = nullcontext(pool) if pool is not None else worker_pool(workers)
    points = []
    with context as sweep_pool:
        for value in values:
            params = _with_axis(base_params, field, value)
            estimate = evaluate(
                params,
                policy=resolved,
                backend="monte_carlo",
                n_iterations=mc_iterations,
                horizon_hours=mc_horizon_hours,
                seed=seed,
                confidence=confidence,
                executor=executor,
                workers=workers,
                target_half_width=target_half_width,
                pool=sweep_pool,
            )
            points.append(
                SweepPoint(
                    x=float(value),
                    availability=estimate.availability,
                    unavailability=estimate.unavailability,
                    nines=estimate.nines,
                    ci_lower=estimate.ci_lower,
                    ci_upper=estimate.ci_upper,
                )
            )
    return points


def sweep_per_point_rebuild(
    base_params: AvailabilityParameters,
    axis: str,
    values: Sequence[float],
    policy: PolicyRef = "conventional",
    method: str = "dense",
) -> List[SweepPoint]:
    """Reference analytical sweep that rebuilds and re-solves per point.

    This is the pre-template algorithm (one builder + chain + validation +
    solver per point), retained as the ground truth the engine is benchmarked
    and regression-tested against — `sweep(...)` must reproduce it to 1e-12.
    """
    if not values:
        raise ConfigurationError(f"sweep over {axis!r} requires at least one value")
    field = _axis_field(axis)
    resolved = resolve_policy(policy)
    points = []
    for value in values:
        params = _with_axis(base_params, field, value)
        result = steady_state_availability(resolved.build_chain(params), method=method)
        points.append(
            SweepPoint(
                x=float(value),
                availability=result.availability,
                unavailability=result.unavailability,
                nines=result.nines,
            )
        )
    return points


# ----------------------------------------------------------------------
# Figure-shaped helpers (legacy signatures, registry-era internals)
# ----------------------------------------------------------------------
def sweep_failure_rate(
    base_params: AvailabilityParameters,
    failure_rates: Sequence[float],
    model: PolicyRef = "conventional",
    backend: str = "analytical",
    **options,
) -> List[SweepPoint]:
    """Evaluate a policy across a range of disk failure rates (Fig. 4 axis)."""
    if not failure_rates:
        raise ConfigurationError("failure_rates must be non-empty")
    return sweep(
        base_params, "disk_failure_rate", failure_rates,
        policy=model, backend=backend, **options,
    )


def sweep_hep(
    base_params: AvailabilityParameters,
    hep_values: Sequence[float],
    model: PolicyRef = "conventional",
    backend: str = "analytical",
    **options,
) -> List[SweepPoint]:
    """Evaluate a policy across a range of human error probabilities."""
    if not hep_values:
        raise ConfigurationError("hep_values must be non-empty")
    return sweep(
        base_params, "hep", hep_values, policy=model, backend=backend, **options
    )


def sweep_hep_for_failure_rates(
    base_params: AvailabilityParameters,
    hep_values: Sequence[float],
    failure_rates: Sequence[float],
    model: PolicyRef = "conventional",
    backend: str = "analytical",
    **options,
) -> Dict[float, List[SweepPoint]]:
    """Return one hep sweep per failure rate (the shape of Fig. 5)."""
    if not failure_rates:
        raise ConfigurationError("failure_rates must be non-empty")
    return {
        float(rate): sweep_hep(
            base_params.with_failure_rate(rate), hep_values, model,
            backend=backend, **options,
        )
        for rate in failure_rates
    }


def sweep_policies(
    base_params: AvailabilityParameters,
    hep_values: Sequence[float],
    models: Optional[Sequence[PolicyRef]] = None,
    backend: str = "analytical",
    **options,
) -> Dict[str, List[SweepPoint]]:
    """Return one hep sweep per policy (the shape of Fig. 7).

    ``models`` defaults to the paper's two replacement policies; series are
    keyed by registry name.
    """
    chosen = list(models) if models is not None else [
        "conventional",
        "automatic_failover",
    ]
    if not chosen:
        raise ConfigurationError("at least one policy is required")
    series: Dict[str, List[SweepPoint]] = {}
    for ref in chosen:
        policy = resolve_policy(ref)
        series[policy.name] = sweep_hep(
            base_params, hep_values, policy, backend=backend, **options
        )
    return series


def nines_series(points: Sequence[SweepPoint]) -> List[float]:
    """Return the nines column of a sweep."""
    return [point.nines for point in points]


def availability_series(points: Sequence[SweepPoint]) -> List[float]:
    """Return the availability column of a sweep."""
    return [point.availability for point in points]


def x_series(points: Sequence[SweepPoint]) -> List[float]:
    """Return the x column of a sweep."""
    return [point.x for point in points]
