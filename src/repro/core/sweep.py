"""Generic parameter-sweep engine over the evaluation backends.

Every figure in the paper is a sweep: availability versus failure rate
(Fig. 4), versus hep (Figs. 5-7), across RAID configurations (Fig. 6) and
across policies (Fig. 7).  The engine here runs such sweeps against any
registered policy on either evaluation backend:

* **analytical** sweeps are template-driven: the policy's chain is built
  once per (policy, geometry, structure) through
  :mod:`repro.core.evaluation`'s cache, and each sweep point only rewrites
  the generator entries whose symbolic rates mention the swept parameter,
  then re-factorizes (dense or sparse by state count).  No builder, chain
  or solver objects are reconstructed per point — see
  ``benchmarks/bench_sweep.py`` for the resulting speedup over the retired
  per-point rebuild loop (kept as :func:`sweep_per_point_rebuild` for
  reference and regression testing).
* **monte_carlo** sweeps run on the **stacked-grid engine** by default:
  per-study scalars become per-lifetime broadcast arrays and one kernel
  invocation per shard simulates the whole ``points x lifetimes`` grid
  (:func:`repro.core.montecarlo.batch.run_stacked`), with per-point results
  recovered by one segmented aggregation.  The pre-stacked loop — one full
  independent study per point, sharing a single worker pool — is retained
  as :func:`sweep_per_point_mc` for regression testing and for the
  configurations the stacked engine does not cover (scalar executor, event
  traces, policies without a stacked-capable kernel); ``sweep`` falls back
  to it automatically (with a one-time warning when an adaptive sweep has
  to leave the stacked allocator).  Adaptive (``target_half_width``)
  sweeps run stacked too: the CI-width allocator dispatches each next
  shard round to the points with the widest intervals (see
  :mod:`repro.core.montecarlo.parallel`), optionally on the
  importance-sampled kernels (``biasing``) for rare-event scenarios.

:func:`sweep_grid` runs a full **2-axis surface** (e.g. the Fig. 5
hep-versus-lambda sheet) in one call on either backend: analytically the
cross-product joins one batched factorization group per chain structure, on
Monte Carlo it becomes a single stacked grid.

Periodic-scheme policies (the erasure k-of-N family) have no ergodic steady
state; analytical sweeps route their points through the checker-cycle solver
in :mod:`repro.markov.checker` instead of the template engine.

The legacy helpers (:func:`sweep_hep`, :func:`sweep_failure_rate`, ...) keep
their signatures; any registered policy name or :class:`SimulationPolicy`
works anywhere a policy is expected.
"""

from __future__ import annotations

import warnings
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.core.evaluation import (
    analytical_result,
    chain_template,
    evaluate,
    evaluate_stacked,
)
from repro.core.montecarlo.config import (
    DEFAULT_HORIZON_HOURS,
    DEFAULT_ITERATIONS,
    PolicyRef,
)
from repro.core.montecarlo.parallel import worker_pool
from repro.core.parameters import AvailabilityParameters
from repro.core.policies.base import SimulationPolicy
from repro.core.policies.registry import resolve_policy
from repro.exceptions import ConfigurationError
from repro.markov.metrics import availability_from_up_mass, steady_state_availability

#: Sweepable parameter axes: public alias -> AvailabilityParameters field.
SWEEP_AXES: Dict[str, str] = {
    "hep": "hep",
    "failure_rate": "disk_failure_rate",
    "disk_failure_rate": "disk_failure_rate",
    "repair_rate": "disk_repair_rate",
    "disk_repair_rate": "disk_repair_rate",
    "ddf_recovery_rate": "ddf_recovery_rate",
    "human_error_rate": "human_error_rate",
    "spare_replacement_rate": "spare_replacement_rate",
    "crash_rate": "crash_rate",
}

#: Sweep backends: the evaluation backends of :mod:`repro.core.evaluation`.
SWEEP_BACKENDS = ("analytical", "monte_carlo", "auto")

#: Monte Carlo sweep engines: ``"auto"`` uses the stacked grid whenever the
#: policy and configuration allow it and falls back to the per-point loop.
MC_ENGINES = ("auto", "stacked", "per_point")

#: Set when the adaptive per-point fallback warning has fired, so a sweep
#: over many points (or many sweeps in one process) warns exactly once.
_ADAPTIVE_FALLBACK_WARNED = False


def _warn_adaptive_fallback(reason: str) -> None:
    """Warn (once per process) that an adaptive sweep left the stacked path.

    Adaptive sweeps normally run on the stacked engine's CI-width
    allocator; configurations the allocator cannot serve (scalar executor,
    policies without a stacked-capable kernel) silently used to raise —
    now they fall back to the independent per-point adaptive loop, which
    is correct but pays one full study per point.
    """
    global _ADAPTIVE_FALLBACK_WARNED
    if _ADAPTIVE_FALLBACK_WARNED:
        return
    _ADAPTIVE_FALLBACK_WARNED = True
    warnings.warn(
        "adaptive sweep cannot use the stacked allocator "
        f"({reason}); falling back to the per-point adaptive loop",
        RuntimeWarning,
        stacklevel=4,
    )


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated point of a parameter sweep.

    Monte Carlo backed points additionally carry their confidence interval;
    analytical points leave ``ci_lower``/``ci_upper`` as ``None``.
    ``retried_shards``/``resumed_shards`` count fault-tolerance events of
    the sharded executor (see :mod:`repro.core.montecarlo.parallel`);
    ``interrupted`` marks a partial point from a gracefully interrupted
    sweep — its moments cover only the shards that completed.
    """

    x: float
    availability: float
    unavailability: float
    nines: float
    ci_lower: Optional[float] = None
    ci_upper: Optional[float] = None
    retried_shards: int = 0
    resumed_shards: int = 0
    interrupted: bool = False

    @property
    def has_interval(self) -> bool:
        """Return whether this point carries a confidence interval."""
        return self.ci_lower is not None and self.ci_upper is not None

    def as_dict(self) -> Dict[str, float]:
        """Return the point as a plain mapping (CI keys only when present)."""
        payload = {
            "x": self.x,
            "availability": self.availability,
            "unavailability": self.unavailability,
            "nines": self.nines,
        }
        if self.has_interval:
            payload["ci_lower"] = self.ci_lower
            payload["ci_upper"] = self.ci_upper
        if self.retried_shards:
            payload["retried_shards"] = self.retried_shards
        if self.resumed_shards:
            payload["resumed_shards"] = self.resumed_shards
        if self.interrupted:
            payload["interrupted"] = True
        return payload


def _axis_field(axis: str) -> str:
    try:
        return SWEEP_AXES[axis]
    except KeyError:
        raise ConfigurationError(
            f"unknown sweep axis {axis!r}; known axes: {sorted(SWEEP_AXES)}"
        ) from None


def _with_axis(
    params: AvailabilityParameters, field: str, value: float
) -> AvailabilityParameters:
    return replace(params, **{field: float(value)})


def _point_from_pi(pi, up_indices, x: float) -> SweepPoint:
    # The clip/convert arithmetic lives in availability_from_up_mass so sweep
    # points and evaluate()/analytical_result() can never drift apart.
    availability, unavailability, nines = availability_from_up_mass(
        pi[i] for i in up_indices
    )
    return SweepPoint(
        x=float(x),
        availability=availability,
        unavailability=unavailability,
        nines=nines,
    )


def _analytical_points(
    point_params: Sequence[AvailabilityParameters],
    xs: Sequence[float],
    policy: SimulationPolicy,
    method: str,
) -> List[SweepPoint]:
    """Evaluate arbitrary parameter points through the template engine.

    Points are grouped by chain structure — the hep = 0 rung of a sweep
    uses the reduced chain — and each group is handed to the template's
    vectorized solve_many: only the generator entries the swept symbols
    touch are re-evaluated, and one batched factorization covers the whole
    group.  Periodic-scheme policies (the erasure family) have no ergodic
    steady state; their points route through the checker-cycle solver
    instead, one tiny share-count chain per point.
    """
    if policy.has_periodic_checks:
        points = []
        for params, x in zip(point_params, xs):
            result = analytical_result(params, policy, method=method)
            points.append(
                SweepPoint(
                    x=float(x),
                    availability=result.availability,
                    unavailability=result.unavailability,
                    nines=result.nines,
                )
            )
        return points
    groups: Dict[int, List[int]] = {}
    templates: Dict[int, object] = {}
    for index, params in enumerate(point_params):
        template = chain_template(policy, params)
        templates[id(template)] = template
        groups.setdefault(id(template), []).append(index)
    points: List[Optional[SweepPoint]] = [None] * len(point_params)
    for key, indices in groups.items():
        template = templates[key]
        pis = template.solve_many(
            [point_params[i] for i in indices], method=method
        )
        for row, i in enumerate(indices):
            points[i] = _point_from_pi(pis[row], template.up_indices, xs[i])
    return points


def _check_mc_options_for_backend(
    backend: str, mc_engine: str, crn: bool, biasing: Optional[float] = None
) -> None:
    """Reject Monte Carlo-only options once a sweep resolved analytically.

    ``backend="auto"`` picks the analytical face whenever the policy has
    one; an explicit ``crn``, ``mc_engine`` or ``biasing`` request must not
    be dropped silently on that path (a caller asking for coupled streams
    or importance sampling would get plain point estimates without
    noticing).
    """
    if backend == "monte_carlo":
        return
    if crn:
        raise ConfigurationError(
            "common random numbers apply to the monte_carlo backend, but "
            "this sweep resolved to the analytical backend; pass "
            "backend='monte_carlo'"
        )
    if mc_engine != "auto":
        raise ConfigurationError(
            f"mc_engine={mc_engine!r} applies to the monte_carlo backend, "
            "but this sweep resolved to the analytical backend; pass "
            "backend='monte_carlo'"
        )
    if biasing is not None:
        raise ConfigurationError(
            "failure biasing applies to the monte_carlo backend, but this "
            "sweep resolved to the analytical backend; pass "
            "backend='monte_carlo'"
        )


def _point_from_estimate(estimate, x: float) -> SweepPoint:
    return SweepPoint(
        x=float(x),
        availability=estimate.availability,
        unavailability=estimate.unavailability,
        nines=estimate.nines,
        ci_lower=estimate.ci_lower,
        ci_upper=estimate.ci_upper,
        retried_shards=estimate.retried_shards,
        resumed_shards=estimate.resumed_shards,
        interrupted=estimate.interrupted,
    )


def _monte_carlo_points(
    point_params: Sequence[AvailabilityParameters],
    xs: Sequence[float],
    policy: SimulationPolicy,
    *,
    mc_iterations: int,
    mc_horizon_hours: float,
    seed: Optional[int],
    confidence: float,
    executor: str,
    workers: int,
    shard_size: Optional[int],
    target_half_width: Optional[float],
    mc_max_iterations: Optional[int],
    mc_engine: str,
    crn: bool,
    transport: str,
    biasing: Optional[float],
    allocator: str,
    kernel: str,
    pool_kind: str,
    pool,
    shard_timeout: Optional[float] = None,
    max_shard_retries: int = 0,
    retry_backoff: float = 0.1,
    checkpoint: Optional[str] = None,
    resume: Optional[str] = None,
) -> List[SweepPoint]:
    """Evaluate arbitrary parameter points on the Monte Carlo backend."""
    if mc_engine not in MC_ENGINES:
        raise ConfigurationError(
            f"mc_engine must be one of {MC_ENGINES}, got {mc_engine!r}"
        )
    stackable = policy.can_stack and executor != "scalar"
    if mc_engine == "stacked" and not stackable:
        raise ConfigurationError(
            "the stacked engine requires a stacked-capable policy kernel and "
            "a vectorised executor; use mc_engine='per_point' for this "
            "configuration"
        )
    use_stacked = mc_engine == "stacked" or (mc_engine == "auto" and stackable)
    if crn and not use_stacked:
        # Never drop an explicit CRN request silently: a caller computing
        # contrasts would get uncoupled streams and unreduced variance.
        raise ConfigurationError(
            "common random numbers are a stacked-engine mode, but this "
            "configuration resolved to the per-point path (scalar executor, "
            "mc_engine='per_point', or a policy without a stacked-capable "
            "kernel)"
        )
    if target_half_width is not None and mc_engine == "auto" and not use_stacked:
        # Adaptive sweeps prefer the stacked allocator; fall back (loudly,
        # once) rather than refusing configurations it cannot serve.  An
        # explicit mc_engine="per_point" is honoured silently.
        reason = (
            "scalar executor requested"
            if executor == "scalar"
            else f"policy {policy.name!r} has no stacked-capable kernel"
        )
        _warn_adaptive_fallback(reason)
    if not use_stacked and (checkpoint is not None or resume is not None):
        # A shard journal describes one stacked grid; the per-point loop
        # runs many independent studies whose digests would collide in a
        # single journal file.  Refuse rather than silently not checkpoint.
        raise ConfigurationError(
            "checkpoint/resume journals cover stacked sweeps only, but this "
            "configuration resolved to the per-point path (scalar executor, "
            "mc_engine='per_point', or a policy without a stacked-capable "
            "kernel)"
        )
    if use_stacked:
        estimates = evaluate_stacked(
            point_params,
            policy,
            n_iterations=mc_iterations,
            horizon_hours=mc_horizon_hours,
            seed=seed,
            confidence=confidence,
            workers=workers,
            shard_size=shard_size,
            target_half_width=target_half_width,
            max_iterations=mc_max_iterations,
            crn=crn,
            transport=transport,
            biasing=biasing,
            allocator=allocator,
            kernel=kernel,
            pool_kind=pool_kind,
            pool=pool,
            shard_timeout=shard_timeout,
            max_shard_retries=max_shard_retries,
            retry_backoff=retry_backoff,
            checkpoint=checkpoint,
            resume=resume,
        )
        return [
            _point_from_estimate(estimate, x) for estimate, x in zip(estimates, xs)
        ]
    # Per-point loop: one study per point, one shared pool for the sweep.
    context = nullcontext(pool) if pool is not None else worker_pool(workers, pool_kind)
    points: List[SweepPoint] = []
    with context as sweep_pool:
        for params, x in zip(point_params, xs):
            estimate = evaluate(
                params,
                policy=policy,
                backend="monte_carlo",
                n_iterations=mc_iterations,
                horizon_hours=mc_horizon_hours,
                seed=seed,
                confidence=confidence,
                executor=executor,
                workers=workers,
                shard_size=shard_size,
                target_half_width=target_half_width,
                max_iterations=mc_max_iterations,
                transport=transport,
                biasing=biasing,
                allocator=allocator,
                kernel=kernel,
                pool_kind=pool_kind,
                pool=sweep_pool,
                shard_timeout=shard_timeout,
                max_shard_retries=max_shard_retries,
                retry_backoff=retry_backoff,
            )
            points.append(_point_from_estimate(estimate, x))
            if estimate.interrupted:
                # The sharded executor absorbed a KeyboardInterrupt/SIGTERM
                # into a partial estimate; honour it — don't start the
                # remaining points after the user asked to stop.
                break
    return points


def sweep(
    base_params: AvailabilityParameters,
    axis: str,
    values: Sequence[float],
    policy: PolicyRef = "conventional",
    backend: str = "auto",
    *,
    method: str = "auto",
    mc_iterations: int = DEFAULT_ITERATIONS,
    mc_horizon_hours: float = DEFAULT_HORIZON_HOURS,
    seed: Optional[int] = 0,
    confidence: float = 0.99,
    executor: str = "auto",
    workers: int = 1,
    shard_size: Optional[int] = None,
    target_half_width: Optional[float] = None,
    mc_max_iterations: Optional[int] = None,
    mc_engine: str = "auto",
    crn: bool = False,
    transport: str = "auto",
    biasing: Optional[float] = None,
    allocator: str = "uniform",
    kernel: str = "auto",
    pool_kind: str = "process",
    pool=None,
    shard_timeout: Optional[float] = None,
    max_shard_retries: int = 0,
    retry_backoff: float = 0.1,
    checkpoint: Optional[str] = None,
    resume: Optional[str] = None,
) -> List[SweepPoint]:
    """Sweep one parameter axis for one policy on one backend.

    Parameters
    ----------
    base_params:
        Parameter point every swept value is derived from.
    axis:
        One of :data:`SWEEP_AXES` (``"hep"``, ``"failure_rate"``, ...).
    values:
        Axis values, evaluated in order.
    policy:
        Registry name, legacy enum member or policy instance.
    backend:
        ``"analytical"``, ``"monte_carlo"`` or ``"auto"`` (analytical when
        the policy has a chain face).
    method:
        Steady-state solver for analytical sweeps (``"auto"`` = dense/sparse
        by state count).
    mc_iterations, mc_horizon_hours, seed, confidence, executor, workers,
    shard_size, target_half_width:
        Monte Carlo configuration for simulation-backed sweeps; every point
        uses the same master seed so neighbouring points share their random
        stream layout.
    mc_engine:
        ``"stacked"`` (one kernel invocation per shard covers the whole
        grid), ``"per_point"`` (the retained pre-stacked loop, one full
        study per value) or ``"auto"``: stacked whenever the policy kernel
        and executor allow it.  Adaptive (``target_half_width``) sweeps run
        on the stacked engine's CI-width allocator; configurations the
        allocator cannot serve fall back to the per-point adaptive loop
        with a one-time warning.
    crn:
        Stacked engine only — couple every point to identical base random
        streams (common random numbers) for variance-reduced contrasts
        between neighbouring points.
    transport:
        How a stacked sweep's parameter planes reach the shard workers:
        ``"auto"`` (zero-copy shared-memory planes whenever usable),
        ``"shm"`` or ``"pickle"`` (per-shard rebuild, the retained
        fallback/oracle).  Results are byte-identical across transports.
    biasing:
        Failure-biasing factor of the importance-sampled kernels (``None``
        keeps the unbiased kernels); see
        :class:`~repro.core.montecarlo.config.MonteCarloConfig`.
    allocator:
        Adaptive-round budget allocator of stacked adaptive sweeps:
        ``"uniform"`` or ``"ci_width"``.
    kernel:
        Kernel backend of the batch path (``"auto"``, ``"numpy"``,
        ``"compiled"`` or ``"fused"``); see
        :class:`~repro.core.montecarlo.config.MonteCarloConfig`.
    pool_kind:
        Shard-executor pool of the sharded path (``"process"``, ``"thread"``
        or ``"serial"``); named ``pool_kind`` because ``pool`` below is the
        long-standing shared-executor argument.
    pool:
        Optional externally owned worker pool; ``None`` with ``workers > 1``
        starts one pool for the whole sweep (not one per point).
    shard_timeout, max_shard_retries, retry_backoff:
        Fault tolerance of the sharded executor — per-shard deadline and
        bounded retry with exponential backoff; retried shards recompute
        bit-identical summaries.  See
        :class:`~repro.core.montecarlo.config.MonteCarloConfig`.
    checkpoint, resume:
        Durable shard journal of stacked sweeps: ``checkpoint`` appends
        every completed shard summary to the given path, ``resume`` splices
        a previous journal back in (and keeps appending), skipping already
        completed shards; a resumed sweep is bit-identical to an
        uninterrupted one.
    """
    if not values:
        raise ConfigurationError(f"sweep over {axis!r} requires at least one value")
    if backend not in SWEEP_BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {SWEEP_BACKENDS}, got {backend!r}"
        )
    field = _axis_field(axis)
    resolved = resolve_policy(policy)
    if backend == "auto":
        backend = "analytical" if resolved.has_analytical_model else "monte_carlo"
    _check_mc_options_for_backend(backend, mc_engine, crn, biasing)
    point_params = [_with_axis(base_params, field, value) for value in values]
    xs = [float(value) for value in values]

    if backend == "analytical":
        return _analytical_points(point_params, xs, resolved, method)
    return _monte_carlo_points(
        point_params,
        xs,
        resolved,
        mc_iterations=mc_iterations,
        mc_horizon_hours=mc_horizon_hours,
        seed=seed,
        confidence=confidence,
        executor=executor,
        workers=workers,
        shard_size=shard_size,
        target_half_width=target_half_width,
        mc_max_iterations=mc_max_iterations,
        mc_engine=mc_engine,
        crn=crn,
        transport=transport,
        biasing=biasing,
        allocator=allocator,
        kernel=kernel,
        pool_kind=pool_kind,
        pool=pool,
        shard_timeout=shard_timeout,
        max_shard_retries=max_shard_retries,
        retry_backoff=retry_backoff,
        checkpoint=checkpoint,
        resume=resume,
    )


def sweep_per_point_mc(
    base_params: AvailabilityParameters,
    axis: str,
    values: Sequence[float],
    policy: PolicyRef = "conventional",
    *,
    mc_iterations: int = DEFAULT_ITERATIONS,
    mc_horizon_hours: float = DEFAULT_HORIZON_HOURS,
    seed: Optional[int] = 0,
    confidence: float = 0.99,
    executor: str = "auto",
    workers: int = 1,
    shard_size: Optional[int] = None,
    target_half_width: Optional[float] = None,
    pool=None,
) -> List[SweepPoint]:
    """Reference Monte Carlo sweep running one full study per point.

    This is the pre-stacked algorithm — every value pays its own kernel
    launches, shard scheduling and aggregation — retained as the ground
    truth the stacked engine is statistically validated and benchmarked
    against, and as the execution path for configurations the stacked
    engine does not cover (scalar executor, policies without a
    stacked-capable kernel).
    """
    return sweep(
        base_params,
        axis,
        values,
        policy=policy,
        backend="monte_carlo",
        mc_iterations=mc_iterations,
        mc_horizon_hours=mc_horizon_hours,
        seed=seed,
        confidence=confidence,
        executor=executor,
        workers=workers,
        shard_size=shard_size,
        target_half_width=target_half_width,
        mc_engine="per_point",
        pool=pool,
    )


# ----------------------------------------------------------------------
# 2-axis grid sweeps (fig5-style surfaces)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepGrid:
    """A 2-axis sweep surface: ``points[i][j]`` evaluates ``(values1[i],
    values2[j])``.

    Each :class:`SweepPoint` carries the *second* axis value as its ``x``
    (every row of the grid is a valid 1-axis sweep over ``axis2``).
    """

    axis1: str
    axis2: str
    values1: tuple
    values2: tuple
    points: List[List[SweepPoint]]

    @property
    def shape(self) -> tuple:
        """Return ``(len(values1), len(values2))``."""
        return (len(self.values1), len(self.values2))

    def row(self, index: int) -> List[SweepPoint]:
        """Return the ``axis2`` sweep at ``values1[index]``."""
        return self.points[index]

    def availability_matrix(self) -> List[List[float]]:
        """Return availabilities as a ``values1 x values2`` nested list."""
        return [[point.availability for point in row] for row in self.points]

    def nines_matrix(self) -> List[List[float]]:
        """Return nines as a ``values1 x values2`` nested list."""
        return [[point.nines for point in row] for row in self.points]

    def as_dict(self) -> Dict[str, object]:
        """Return a serialisable description of the surface."""
        return {
            "axis1": self.axis1,
            "axis2": self.axis2,
            "values1": list(self.values1),
            "values2": list(self.values2),
            "points": [[point.as_dict() for point in row] for row in self.points],
        }


def sweep_grid(
    base_params: AvailabilityParameters,
    axis1: str,
    values1: Sequence[float],
    axis2: str,
    values2: Sequence[float],
    policy: PolicyRef = "conventional",
    backend: str = "auto",
    *,
    method: str = "auto",
    mc_iterations: int = DEFAULT_ITERATIONS,
    mc_horizon_hours: float = DEFAULT_HORIZON_HOURS,
    seed: Optional[int] = 0,
    confidence: float = 0.99,
    executor: str = "auto",
    workers: int = 1,
    shard_size: Optional[int] = None,
    target_half_width: Optional[float] = None,
    mc_max_iterations: Optional[int] = None,
    mc_engine: str = "auto",
    crn: bool = False,
    transport: str = "auto",
    biasing: Optional[float] = None,
    allocator: str = "uniform",
    kernel: str = "auto",
    pool_kind: str = "process",
    pool=None,
    shard_timeout: Optional[float] = None,
    max_shard_retries: int = 0,
    retry_backoff: float = 0.1,
    checkpoint: Optional[str] = None,
    resume: Optional[str] = None,
) -> SweepGrid:
    """Sweep two parameter axes at once (a fig5-style surface) in one call.

    The cross product ``values1 x values2`` is evaluated as **one** batch:
    analytically all points join the template engine's grouped batched
    factorizations, on Monte Carlo they form a single stacked grid (one
    kernel invocation per shard for the entire surface).  Options match
    :func:`sweep`.
    """
    field1, field2 = _axis_field(axis1), _axis_field(axis2)
    if field1 == field2:
        # Compare the underlying fields, not the axis names: aliases such as
        # failure_rate/disk_failure_rate would otherwise silently produce a
        # degenerate surface (axis2 overwriting axis1 row by row).
        raise ConfigurationError(
            f"grid axes must sweep different parameters, got {axis1!r} and "
            f"{axis2!r} (both sweep {field1!r})"
        )
    if not values1 or not values2:
        raise ConfigurationError("both grid axes require at least one value")
    if backend not in SWEEP_BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {SWEEP_BACKENDS}, got {backend!r}"
        )
    resolved = resolve_policy(policy)
    if backend == "auto":
        backend = "analytical" if resolved.has_analytical_model else "monte_carlo"
    _check_mc_options_for_backend(backend, mc_engine, crn, biasing)
    point_params: List[AvailabilityParameters] = []
    xs: List[float] = []
    for v1 in values1:
        for v2 in values2:
            point_params.append(
                _with_axis(_with_axis(base_params, field1, v1), field2, v2)
            )
            xs.append(float(v2))

    if backend == "analytical":
        flat = _analytical_points(point_params, xs, resolved, method)
    else:
        flat = _monte_carlo_points(
            point_params,
            xs,
            resolved,
            mc_iterations=mc_iterations,
            mc_horizon_hours=mc_horizon_hours,
            seed=seed,
            confidence=confidence,
            executor=executor,
            workers=workers,
            shard_size=shard_size,
            target_half_width=target_half_width,
            mc_max_iterations=mc_max_iterations,
            mc_engine=mc_engine,
            crn=crn,
            transport=transport,
            biasing=biasing,
            allocator=allocator,
            kernel=kernel,
            pool_kind=pool_kind,
            pool=pool,
            shard_timeout=shard_timeout,
            max_shard_retries=max_shard_retries,
            retry_backoff=retry_backoff,
            checkpoint=checkpoint,
            resume=resume,
        )
    n2 = len(values2)
    rows = [flat[i * n2 : (i + 1) * n2] for i in range(len(values1))]
    return SweepGrid(
        axis1=axis1,
        axis2=axis2,
        values1=tuple(float(v) for v in values1),
        values2=tuple(float(v) for v in values2),
        points=rows,
    )


def sweep_per_point_rebuild(
    base_params: AvailabilityParameters,
    axis: str,
    values: Sequence[float],
    policy: PolicyRef = "conventional",
    method: str = "dense",
) -> List[SweepPoint]:
    """Reference analytical sweep that rebuilds and re-solves per point.

    This is the pre-template algorithm (one builder + chain + validation +
    solver per point), retained as the ground truth the engine is benchmarked
    and regression-tested against — `sweep(...)` must reproduce it to 1e-12.
    """
    if not values:
        raise ConfigurationError(f"sweep over {axis!r} requires at least one value")
    field = _axis_field(axis)
    resolved = resolve_policy(policy)
    if resolved.has_periodic_checks:
        # A periodic-scheme decay chain is absorbing — there is no ergodic
        # steady state to solve for.  The checker-cycle path already rebuilds
        # per point, so it doubles as its own reference algorithm.
        return _analytical_points(
            [_with_axis(base_params, field, v) for v in values],
            [float(v) for v in values],
            resolved,
            method,
        )
    points = []
    for value in values:
        params = _with_axis(base_params, field, value)
        result = steady_state_availability(resolved.build_chain(params), method=method)
        points.append(
            SweepPoint(
                x=float(value),
                availability=result.availability,
                unavailability=result.unavailability,
                nines=result.nines,
            )
        )
    return points


# ----------------------------------------------------------------------
# Figure-shaped helpers (legacy signatures, registry-era internals)
# ----------------------------------------------------------------------
def sweep_failure_rate(
    base_params: AvailabilityParameters,
    failure_rates: Sequence[float],
    model: PolicyRef = "conventional",
    backend: str = "analytical",
    **options,
) -> List[SweepPoint]:
    """Evaluate a policy across a range of disk failure rates (Fig. 4 axis)."""
    if not failure_rates:
        raise ConfigurationError("failure_rates must be non-empty")
    return sweep(
        base_params, "disk_failure_rate", failure_rates,
        policy=model, backend=backend, **options,
    )


def sweep_hep(
    base_params: AvailabilityParameters,
    hep_values: Sequence[float],
    model: PolicyRef = "conventional",
    backend: str = "analytical",
    **options,
) -> List[SweepPoint]:
    """Evaluate a policy across a range of human error probabilities."""
    if not hep_values:
        raise ConfigurationError("hep_values must be non-empty")
    return sweep(
        base_params, "hep", hep_values, policy=model, backend=backend, **options
    )


def sweep_hep_for_failure_rates(
    base_params: AvailabilityParameters,
    hep_values: Sequence[float],
    failure_rates: Sequence[float],
    model: PolicyRef = "conventional",
    backend: str = "analytical",
    **options,
) -> Dict[float, List[SweepPoint]]:
    """Return one hep sweep per failure rate (the shape of Fig. 5).

    The whole surface is evaluated as one :func:`sweep_grid` call — one
    batched factorization group per chain structure analytically, one
    stacked grid on Monte Carlo — and re-keyed by failure rate for the
    legacy mapping shape.
    """
    if not failure_rates:
        raise ConfigurationError("failure_rates must be non-empty")
    if not hep_values:
        raise ConfigurationError("hep_values must be non-empty")
    grid = sweep_grid(
        base_params,
        "disk_failure_rate",
        failure_rates,
        "hep",
        hep_values,
        policy=model,
        backend=backend,
        **options,
    )
    return {
        float(rate): grid.row(index) for index, rate in enumerate(failure_rates)
    }


def sweep_policies(
    base_params: AvailabilityParameters,
    hep_values: Sequence[float],
    models: Optional[Sequence[PolicyRef]] = None,
    backend: str = "analytical",
    **options,
) -> Dict[str, List[SweepPoint]]:
    """Return one hep sweep per policy (the shape of Fig. 7).

    ``models`` defaults to the paper's two replacement policies; series are
    keyed by registry name.
    """
    chosen = list(models) if models is not None else [
        "conventional",
        "automatic_failover",
    ]
    if not chosen:
        raise ConfigurationError("at least one policy is required")
    series: Dict[str, List[SweepPoint]] = {}
    for ref in chosen:
        policy = resolve_policy(ref)
        series[policy.name] = sweep_hep(
            base_params, hep_values, policy, backend=backend, **options
        )
    return series


def nines_series(points: Sequence[SweepPoint]) -> List[float]:
    """Return the nines column of a sweep."""
    return [point.nines for point in points]


def availability_series(points: Sequence[SweepPoint]) -> List[float]:
    """Return the availability column of a sweep."""
    return [point.availability for point in points]


def x_series(points: Sequence[SweepPoint]) -> List[float]:
    """Return the x column of a sweep."""
    return [point.x for point in points]
