"""Core contribution: the paper's availability models and analyses."""

from repro.core.comparison import (
    ConfigurationComparison,
    compare_configuration,
    compare_equal_capacity,
    nines_by_configuration,
    ranking,
    ranking_inverted_by_human_error,
)
from repro.core.models import (
    ModelDescriptor,
    ModelKind,
    baseline_availability,
    build_baseline_chain,
    build_chain,
    build_conventional_chain,
    build_failover_chain,
    conventional_availability,
    failover_availability,
    solve_model,
)
from repro.core.montecarlo import (
    MonteCarloConfig,
    MonteCarloResult,
    estimate_availability,
    run_monte_carlo,
    run_monte_carlo_with_trace,
)
from repro.core.parameters import AvailabilityParameters, paper_parameters
from repro.core.policies import (
    SimulationPolicy,
    available_policies,
    get_policy,
    hot_spare_policy,
    register_policy,
    resolve_policy,
)
from repro.core.sweep import (
    SweepPoint,
    sweep_failure_rate,
    sweep_hep,
    sweep_hep_for_failure_rates,
    sweep_policies,
)
from repro.core.underestimation import (
    UnderestimationPoint,
    maximum_underestimation,
    underestimation_factor,
    underestimation_sweep,
)

__all__ = [
    "AvailabilityParameters",
    "ConfigurationComparison",
    "ModelDescriptor",
    "ModelKind",
    "MonteCarloConfig",
    "MonteCarloResult",
    "SimulationPolicy",
    "SweepPoint",
    "UnderestimationPoint",
    "available_policies",
    "baseline_availability",
    "build_baseline_chain",
    "build_chain",
    "build_conventional_chain",
    "build_failover_chain",
    "compare_configuration",
    "compare_equal_capacity",
    "conventional_availability",
    "estimate_availability",
    "failover_availability",
    "get_policy",
    "hot_spare_policy",
    "maximum_underestimation",
    "nines_by_configuration",
    "paper_parameters",
    "ranking",
    "ranking_inverted_by_human_error",
    "register_policy",
    "resolve_policy",
    "run_monte_carlo",
    "run_monte_carlo_with_trace",
    "solve_model",
    "sweep_failure_rate",
    "sweep_hep",
    "sweep_hep_for_failure_rates",
    "sweep_policies",
    "underestimation_factor",
    "underestimation_sweep",
]
