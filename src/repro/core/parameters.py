"""Shared parameter set for the availability models.

All of the paper's models — Monte Carlo and Markov, conventional and
automatic fail-over — are driven by the same small set of rates.  Keeping
them in one validated dataclass guarantees the analytical and simulation
paths are fed identical numbers, which is the whole point of the Fig. 4
cross-validation.

Default values are the paper's (Section V-B):

========================  =======  ==========================================
parameter                 default  meaning
========================  =======  ==========================================
``disk_failure_rate``     1e-6 /h  per-disk failure rate ``lambda``
``disk_repair_rate``      0.1 /h   ``mu_DF`` — replace + rebuild one disk
``ddf_recovery_rate``     0.03 /h  ``mu_DDF`` — restore the array from backup
``human_error_rate``      1.0 /h   ``mu_he`` — detect & undo a wrong pull
``spare_replacement_rate``1.0 /h   ``mu_ch``/``mu_s`` — swap dead hardware
``crash_rate``            0.01 /h  ``lambda_crash`` — wrongly pulled disk dies
``hep``                   0.001    human error probability per intervention
========================  =======  ==========================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.distributions import Distribution, Exponential, Weibull
from repro.exceptions import ConfigurationError
from repro.storage.raid import RaidGeometry


@dataclass(frozen=True)
class AvailabilityParameters:
    """Rates and probabilities shared by every availability model."""

    geometry: RaidGeometry = field(default_factory=lambda: RaidGeometry.raid5(3))
    disk_failure_rate: float = 1.0e-6
    disk_repair_rate: float = 0.1
    ddf_recovery_rate: float = 0.03
    human_error_rate: float = 1.0
    spare_replacement_rate: float = 1.0
    crash_rate: float = 0.01
    hep: float = 0.001
    #: Weibull shape for the Monte Carlo failure process; 1.0 = exponential.
    failure_shape: float = 1.0

    def __post_init__(self) -> None:
        _require_positive("disk_failure_rate", self.disk_failure_rate)
        _require_positive("disk_repair_rate", self.disk_repair_rate)
        _require_positive("ddf_recovery_rate", self.ddf_recovery_rate)
        _require_positive("human_error_rate", self.human_error_rate)
        _require_positive("spare_replacement_rate", self.spare_replacement_rate)
        _require_non_negative("crash_rate", self.crash_rate)
        _require_positive("failure_shape", self.failure_shape)
        if not 0.0 <= self.hep <= 1.0:
            raise ConfigurationError(f"hep must lie in [0, 1], got {self.hep!r}")

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def n_disks(self) -> int:
        """Return the number of disks in the RAID group."""
        return self.geometry.n_disks

    @property
    def success_probability(self) -> float:
        """Return ``1 - hep``."""
        return 1.0 - self.hep

    def failure_distribution(self) -> Distribution:
        """Return the per-disk time-to-failure distribution.

        Exponential when ``failure_shape == 1``, otherwise a Weibull whose
        mean equals ``1 / disk_failure_rate`` (the paper's convention for
        the field-calibrated Fig. 5 runs).
        """
        if self.failure_shape == 1.0:
            return Exponential(self.disk_failure_rate)
        return Weibull.from_rate_and_shape(self.disk_failure_rate, self.failure_shape)

    def repair_distribution(self) -> Distribution:
        """Return the disk replacement/rebuild duration distribution."""
        return Exponential(self.disk_repair_rate)

    def ddf_recovery_distribution(self) -> Distribution:
        """Return the backup (tape) restore duration distribution."""
        return Exponential(self.ddf_recovery_rate)

    def human_error_recovery_distribution(self) -> Distribution:
        """Return the wrong-replacement recovery duration distribution."""
        return Exponential(self.human_error_rate)

    def spare_replacement_distribution(self) -> Distribution:
        """Return the dead-hardware replacement duration distribution."""
        return Exponential(self.spare_replacement_rate)

    def mean_time_to_disk_failure(self) -> float:
        """Return the per-disk MTTF in hours."""
        return 1.0 / self.disk_failure_rate

    # ------------------------------------------------------------------
    # Derivation helpers
    # ------------------------------------------------------------------
    def with_hep(self, hep: float) -> "AvailabilityParameters":
        """Return a copy with a different human error probability."""
        return replace(self, hep=float(hep))

    def with_failure_rate(self, rate: float, shape: Optional[float] = None) -> "AvailabilityParameters":
        """Return a copy with a different disk failure rate (and shape)."""
        if shape is None:
            return replace(self, disk_failure_rate=float(rate))
        return replace(self, disk_failure_rate=float(rate), failure_shape=float(shape))

    def with_geometry(self, geometry: RaidGeometry) -> "AvailabilityParameters":
        """Return a copy with a different RAID geometry."""
        return replace(self, geometry=geometry)

    def without_human_error(self) -> "AvailabilityParameters":
        """Return a copy with ``hep = 0`` (the traditional availability model)."""
        return replace(self, hep=0.0)

    def as_dict(self) -> Dict[str, object]:
        """Return a serialisable description of the parameter set."""
        return {
            "geometry": self.geometry.label,
            "disk_failure_rate": self.disk_failure_rate,
            "disk_repair_rate": self.disk_repair_rate,
            "ddf_recovery_rate": self.ddf_recovery_rate,
            "human_error_rate": self.human_error_rate,
            "spare_replacement_rate": self.spare_replacement_rate,
            "crash_rate": self.crash_rate,
            "hep": self.hep,
            "failure_shape": self.failure_shape,
        }


def paper_parameters(
    geometry: Optional[RaidGeometry] = None,
    disk_failure_rate: float = 1.0e-6,
    hep: float = 0.001,
    failure_shape: float = 1.0,
) -> AvailabilityParameters:
    """Return the paper's Section V-B parameter set with selectable knobs."""
    return AvailabilityParameters(
        geometry=geometry or RaidGeometry.raid5(3),
        disk_failure_rate=disk_failure_rate,
        disk_repair_rate=0.1,
        ddf_recovery_rate=0.03,
        human_error_rate=1.0,
        spare_replacement_rate=1.0,
        crash_rate=0.01,
        hep=hep,
        failure_shape=failure_shape,
    )


def _require_positive(name: str, value: float) -> None:
    if not math.isfinite(value) or value <= 0.0:
        raise ConfigurationError(f"{name} must be a positive finite number, got {value!r}")


def _require_non_negative(name: str, value: float) -> None:
    if not math.isfinite(value) or value < 0.0:
        raise ConfigurationError(f"{name} must be a non-negative finite number, got {value!r}")
