"""The traditional human-error-free model, as a registered policy.

The paper's baseline ("classic") availability model ignores operator
mistakes entirely.  Registering it as a policy gives it the same two faces
as every other replacement strategy:

* the **analytical face** is the classic birth-death chain of
  :mod:`repro.core.models.baseline` (which never reads ``hep``), and
* the **simulation face** reuses the conventional-replacement kernels with
  ``hep`` forced to zero, so a Monte Carlo run of the baseline is the
  conventional simulation minus the wrong-pull branch.

That pairing makes the baseline a first-class citizen of the cross-backend
validation: the analytical steady-state availability must fall inside the
Monte Carlo confidence interval exactly as it must for the human-error
models.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.models.baseline import build_baseline_chain
from repro.core.montecarlo.results import EpisodeTrace, IterationResult
from repro.core.montecarlo.simulator import simulate_conventional
from repro.core.parameters import AvailabilityParameters
from repro.core.policies.base import BatchLifetimes, RedundancyScheme, SimulationPolicy
from repro.core.policies.registry import register_policy
from repro.core.policies.vectorized import batch_conventional


def simulate_baseline(
    params: AvailabilityParameters,
    horizon_hours: float,
    rng: np.random.Generator,
    trace: Optional[EpisodeTrace] = None,
) -> IterationResult:
    """Simulate one lifetime with human error disabled (scalar path)."""
    return simulate_conventional(
        params.without_human_error(), horizon_hours, rng, trace=trace
    )


def batch_baseline(
    params: AvailabilityParameters,
    horizon_hours: float,
    n_lifetimes: int,
    rng: np.random.Generator,
    compact: bool = True,
    biasing: Optional[float] = None,
) -> BatchLifetimes:
    """Simulate many lifetimes with human error disabled (batch kernel)."""
    return batch_conventional(
        params.without_human_error(),
        horizon_hours,
        n_lifetimes,
        rng,
        compact=compact,
        biasing=biasing,
    )


#: The classic availability model: disk failures only, perfect operators.
BASELINE_POLICY = register_policy(
    SimulationPolicy(
        name="baseline",
        description=(
            "classic availability model: human error ignored (hep treated "
            "as 0); the yardstick the paper's underestimation factor is "
            "measured against"
        ),
        scalar=simulate_baseline,
        batch=batch_baseline,
        chain=build_baseline_chain,
        n_spares=0,
        supports_stacked=True,
        # Continuous repair, hep pinned to zero by the simulators.
        scheme=RedundancyScheme(),
    )
)
