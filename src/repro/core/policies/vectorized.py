"""Vectorised batch Monte Carlo kernels.

Each kernel runs thousands of independent array lifetimes as
struct-of-arrays numpy batches: per round, every still-active lifetime
resolves exactly one failure episode, and all stochastic ingredients of that
round — disk-failure clocks, repair/rebuild durations, human-error Bernoulli
draws, crash races — are sampled as whole arrays.  The per-lifetime scalar
simulators in :mod:`repro.core.montecarlo.simulator` remain the readable
reference (and the traced/debug path); these kernels reproduce their episode
semantics distribution-for-distribution, so at a fixed parameter set the two
paths produce statistically indistinguishable availability estimates.

Three kernels are provided:

``batch_conventional``
    The paper's Fig. 2 conventional replacement policy.
``batch_spare_pool``
    A hot-spare state machine parameterised by the pool size ``n_spares``.
    With ``n_spares=1`` it is the paper's Fig. 3 automatic fail-over policy;
    larger pools implement the hot-spare-pool scenario (each technician
    visit restocks the full pool, and a failure arriving while spares remain
    consumes another spare instead of exposing the array).
``batch_erasure``
    The erasure-coded k-of-N checker/repair family: shares decay between
    deterministic check instants, and the checker repairs below a threshold
    with a human-error botch risk.  Exponential decay is tracked through a
    single aggregate next-failure clock per lifetime (no clock matrix).

The episode kernels accept either a scalar
:class:`~repro.core.parameters.AvailabilityParameters` point (every lifetime
shares one parameter set — bit-identical to the pre-stacked kernels) or a
:class:`~repro.core.policies.stacked.StackedParams` grid, where hep, the
rates, the geometry and the spare-pool size are per-lifetime arrays and a
single invocation simulates an entire ``points x lifetimes`` sweep grid.
The dispatch is duck-typed: row-aware distributions expose ``sample_rows``
and stacked parameter objects expose ``n_disks_rows``/``n_spares_rows``;
plain scalars take the exact pre-stacked code paths (identical draws).

**Allocation discipline.**  By default (``compact=True``) both kernels keep
a *physically compacted* working set: the clock matrix, episode clocks and
bookkeeping arrays hold only the still-active lifetimes, shrinking whenever
lifetimes reach the horizon, so late rounds touch only live rows instead of
gathering ``clocks[active]`` out of the full-width matrix every round.
Per-round scratch (the masked matrix of the second-failure search, the
compaction target) comes from a reusable :class:`_Arena` sized once to the
shard.  Compaction only changes *where* state lives, never which rows are
stepped or in which order they are sampled, so the random draw sequence —
and therefore every result — is bit-identical to the retained uncompacted
path (``compact=False``), which is kept as the bit-identity oracle and the
baseline of the ``stacked_kernel_compaction`` benchmark.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core.parameters import AvailabilityParameters
from repro.core.policies.base import BatchLifetimes, RedundancyScheme, ResolvedScheme
from repro.exceptions import ConfigurationError, HumanErrorModelError, SimulationError

__all__ = ["batch_conventional", "batch_erasure", "batch_spare_pool"]


# ----------------------------------------------------------------------
# Array helpers
# ----------------------------------------------------------------------
def _sample(dist, size: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``size`` samples from a repro distribution as a float array."""
    if size <= 0:
        return np.empty(0, dtype=float)
    return np.asarray(dist.sample(int(size), rng), dtype=float)


def _sample_rows(
    dist, rows: np.ndarray, rng: np.random.Generator, at: Optional[np.ndarray] = None
) -> np.ndarray:
    """Draw one sample per entry of ``rows``.

    Row-aware distributions (``sample_rows``) draw each sample at the rate
    of the lifetime it belongs to; plain distributions fall through to the
    scalar-parameter path, which keeps single-point batches bit-identical
    to the pre-stacked kernels.  ``rows`` are always **global** lifetime
    ids — on the compacted path the callers translate their local working-
    set indices before sampling, so compaction never changes a draw.

    ``at`` carries each draw's birth time (the absolute hour the sampled
    clock starts ticking).  Only the failure-biasing importance sampler
    consumes it — it needs the birth to censor likelihood-ratio
    contributions at the horizon; plain distributions ignore it.
    """
    if isinstance(dist, _BiasedSampler):
        return dist.sample_rows(rows, rng, at=at)
    sampler = getattr(dist, "sample_rows", None)
    if sampler is not None:
        return sampler(rows, rng)
    return _sample(dist, rows.size, rng)


def _rows(value: Union[float, np.ndarray], rows: np.ndarray):
    """Index a per-row parameter array (scalars pass through untouched)."""
    if isinstance(value, np.ndarray):
        return value[rows]
    return value


def _has_positive(value: Union[float, np.ndarray]) -> bool:
    """Return whether a scalar-or-array parameter has any positive entry."""
    return bool(np.any(np.asarray(value) > 0.0))


def _clip_downtime(start: np.ndarray, end: np.ndarray, horizon: float) -> np.ndarray:
    """Return the portion of each ``[start, end]`` inside the horizon."""
    return np.maximum(0.0, np.minimum(end, horizon) - np.minimum(start, horizon))


#: Per-thread override table for the row-search primitives below.  ``None``
#: (the default) keeps the numpy implementations; the compiled backend
#: (``core/montecarlo/compiled.py``) activates an object exposing
#: ``min_and_slot``/``min_excluding``/``second_smallest`` for the duration of
#: a kernel invocation.  The store is per thread for the same reason as
#: ``_SCRATCH_LOCAL``: a thread-pool shard executor runs kernels concurrently
#: on one process's module state.
_KERNEL_OPS_LOCAL = threading.local()


def active_kernel_ops():
    """Return this thread's active kernel-ops table (``None`` = numpy)."""
    return getattr(_KERNEL_OPS_LOCAL, "ops", None)


@contextlib.contextmanager
def kernel_ops(ops):
    """Route this thread's row-search primitives through ``ops``.

    The primitives are pure selections over the clock matrix — no
    arithmetic — so any faithful implementation (the compiled scans) is
    bit-identical to numpy by construction: both return the same elements,
    not recomputed values.  Nesting restores the previous table on exit.
    """
    previous = getattr(_KERNEL_OPS_LOCAL, "ops", None)
    _KERNEL_OPS_LOCAL.ops = ops
    try:
        yield
    finally:
        _KERNEL_OPS_LOCAL.ops = previous


def _min_and_slot(
    clocks: np.ndarray, rows: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Return per-row ``(slot, time)`` of the earliest pending failure.

    ``rows`` optionally supplies a cached ``arange(m)`` (an arena view on
    the compacted paths).  Ties resolve to the lowest slot index on both
    backends (numpy ``argmin`` and the compiled strict-``<`` scan).
    """
    ops = active_kernel_ops()
    if ops is not None:
        return ops.min_and_slot(clocks)
    slot = np.argmin(clocks, axis=1)
    if rows is None:
        rows = np.arange(clocks.shape[0])
    return slot, clocks[rows, slot]


def _min_excluding(
    clocks: np.ndarray, exclude: np.ndarray, out: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Return per-row ``(slot, time)`` of the earliest failure outside ``exclude``.

    ``out`` optionally supplies the scratch matrix for the masked copy (an
    arena buffer on the compacted path); ``None`` allocates as before.  The
    compiled backend needs no masked copy at all — it skips column
    ``exclude[row]`` inside the scan — and ignores ``out``.
    """
    ops = active_kernel_ops()
    if ops is not None:
        return ops.min_excluding(clocks, exclude)
    if out is None:
        masked = clocks.copy()
    else:
        masked = out
        np.copyto(masked, clocks)
    rows = np.arange(clocks.shape[0])
    masked[rows, exclude] = np.inf
    slot = np.argmin(masked, axis=1)
    return slot, masked[rows, slot]


def _second_smallest(clocks: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Return each row's second-smallest clock via an in-place partition.

    Equals ``_min_excluding(clocks, argmin(clocks, axis=1))[1]`` — removing
    one instance of a row's minimum leaves its second order statistic, ties
    included — without the fancy-indexed mask writes.  Requires at least two
    columns, which every kernel guarantees (``n_disks >= 2``).  The compiled
    backend keeps two running minima per row instead of partitioning, which
    selects the same element (duplicates included, NaN impossible — clocks
    are sampled times or ``inf``).
    """
    ops = active_kernel_ops()
    if ops is not None:
        return ops.second_smallest(clocks)
    np.copyto(out, clocks)
    out.partition(1, axis=1)
    return out[:, 1]


def _initial_clocks(params, failure_dist, m: int, n: int, rng: np.random.Generator) -> np.ndarray:
    """Sample the ``(m, n)`` matrix of first failure times.

    Stacked grids sample every slot at its row's failure parameters and mask
    the slots beyond a row's geometry with ``+inf`` so they can never fire.
    """
    n_rows = getattr(params, "n_disks_rows", None)
    if isinstance(failure_dist, _BiasedSampler):
        # The biased sampler needs the geometry mask so slots that can never
        # fire contribute nothing to the likelihood-ratio weights.
        clocks = failure_dist.sample_matrix(n, rng, n_disks_rows=n_rows)
    else:
        matrix_sampler = getattr(failure_dist, "sample_matrix", None)
        if matrix_sampler is not None:
            clocks = matrix_sampler(n, rng)
        elif getattr(failure_dist, "sample_rows", None) is not None:
            rows = np.repeat(np.arange(m), n)
            clocks = failure_dist.sample_rows(rows, rng).reshape(m, n)
        else:
            clocks = _sample(failure_dist, m * n, rng).reshape(m, n)
    if n_rows is not None and np.any(n_rows < n):
        clocks[np.arange(n)[None, :] >= n_rows[:, None]] = np.inf
    return clocks


def _renew_slots(
    clocks: np.ndarray,
    rows: np.ndarray,
    slots: np.ndarray,
    at_times: np.ndarray,
    failure_dist,
    rng: np.random.Generator,
    sample_rows: Optional[np.ndarray] = None,
) -> None:
    """Install fresh disks in ``(rows, slots)`` at the given times.

    ``sample_rows`` supplies the global lifetime ids when ``rows`` are local
    working-set indices (the compacted path); ``None`` means they coincide.
    """
    if rows.size:
        ids = rows if sample_rows is None else sample_rows
        clocks[rows, slots] = at_times + _sample_rows(failure_dist, ids, rng, at=at_times)


def _renew_failed_before(
    clocks: np.ndarray,
    rows: np.ndarray,
    times: np.ndarray,
    failure_dist,
    rng: np.random.Generator,
    sample_rows: Optional[np.ndarray] = None,
) -> None:
    """Renew, per row, every slot whose failure time is at or before ``times``.

    ``sample_rows`` has the same local-vs-global meaning as in
    :func:`_renew_slots`.
    """
    if rows.size == 0:
        return
    ids = rows if sample_rows is None else sample_rows
    sub = clocks[rows]
    mask = sub <= times[:, None]
    count = int(mask.sum())
    if count:
        # Boolean indexing walks the mask row-major, so repeating each row's
        # renewal time by its renewal count lines the starts up with it.
        per_row = mask.sum(axis=1)
        starts = np.repeat(times, per_row)
        sub[mask] = starts + _sample_rows(
            failure_dist, np.repeat(ids, per_row), rng, at=starts
        )
        clocks[rows] = sub


def _pick_other_slots(
    rng: np.random.Generator, n_disks: Union[int, np.ndarray], slots: np.ndarray
) -> np.ndarray:
    """Pick, per row, a uniformly random operational slot other than ``slots``.

    ``n_disks`` may be a per-row array on stacked grids (each row draws from
    its own geometry).
    """
    if not isinstance(n_disks, np.ndarray):
        if n_disks <= 1:
            return slots.copy()
        choice = rng.integers(n_disks - 1, size=slots.size)
    else:
        choice = rng.integers(n_disks - 1)
    return np.where(choice < slots, choice, choice + 1)


def _random_slots(
    rng: np.random.Generator, n_disks: Union[int, np.ndarray], size: int
) -> np.ndarray:
    """Pick a uniformly random slot per row (per-row geometry on grids)."""
    if not isinstance(n_disks, np.ndarray):
        return rng.integers(n_disks, size=size)
    return rng.integers(n_disks)


def _crash_times(
    crash_rate: Union[float, np.ndarray], size: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample crash clocks of wrongly pulled disks (``inf`` at rate zero)."""
    if not isinstance(crash_rate, np.ndarray):
        if crash_rate > 0.0:
            return rng.exponential(1.0 / crash_rate, size)
        return np.full(size, np.inf)
    crash = np.full(size, np.inf)
    positive = crash_rate > 0.0
    if np.any(positive):
        std = rng.exponential(1.0, size)
        crash[positive] = std[positive] / crash_rate[positive]
    return crash


def _recovery_race(
    rows: np.ndarray,
    recovery_dist,
    hep: Union[float, np.ndarray],
    crash_rate: Union[float, np.ndarray],
    rng: np.random.Generator,
    max_attempts: int = 1000,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised twin of ``HumanErrorRecoveryModel.sample_until_recovered``.

    ``rows`` are the **global** lifetime rows (indices into any per-row
    parameter arrays) of the outstanding errors.  Returns
    ``(total_duration_hours, disk_crashed)`` arrays of length ``rows.size``.
    Each round draws one recovery attempt per still-outstanding error, races
    it against a crash of the wrongly pulled disk, and repeats the attempt
    with probability ``hep``.
    """
    size = rows.size
    total = np.zeros(size, dtype=float)
    crashed = np.zeros(size, dtype=bool)
    pending = np.arange(size)
    for _ in range(int(max_attempts)):
        if pending.size == 0:
            return total, crashed
        sub_rows = rows[pending]
        attempt = _sample_rows(recovery_dist, sub_rows, rng)
        crash = _crash_times(_rows(crash_rate, sub_rows), pending.size, rng)
        crash_first = crash < attempt
        total[pending] += np.where(crash_first, crash, attempt)
        crashed[pending[crash_first]] = True
        repeated = (~crash_first) & (rng.random(pending.size) < _rows(hep, sub_rows))
        pending = pending[repeated]
    raise HumanErrorModelError(
        f"error recovery did not terminate within {max_attempts} attempts (hep={hep!r})"
    )


# ----------------------------------------------------------------------
# Failure-biasing importance sampling
# ----------------------------------------------------------------------
def _failure_shape_scale(dist):
    """Return the Weibull ``(shape, scale)`` parameters of a failure law.

    Exponential families report shape 1 (scale ``1/rate``); row-aware
    stacked distributions report per-row arrays.  Anything outside the
    exponential/Weibull scale families cannot be biased by rate inflation
    and is rejected.
    """
    rates = getattr(dist, "rates", None)
    if rates is not None:
        shapes = getattr(dist, "shapes", None)
        if shapes is not None:
            return shapes, dist.scales
        return 1.0, 1.0 / rates
    rate = getattr(dist, "rate_parameter", None)
    if rate is not None:
        return 1.0, 1.0 / float(rate)
    shape = getattr(dist, "shape", None)
    scale = getattr(dist, "scale", None)
    if shape is not None and scale is not None:
        return float(shape), float(scale)
    raise ConfigurationError(
        "failure biasing requires an exponential or Weibull failure "
        f"distribution, got {dist!r}"
    )


class _BiasedSampler:
    """Failure-biasing importance sampler wrapped around a failure law.

    Draws come from the *biased* distribution — every failure rate inflated
    by ``factor`` — while the underlying stream is consumed exactly like the
    unbiased distribution would (one standard draw per sample): for the
    exponential/Weibull scale families, inflating the rate by ``b`` divides
    the scale by ``b``, so a biased draw is the unbiased draw divided by
    ``b``.  Each draw's log-likelihood-ratio contribution ``log dP/dQ`` is
    accumulated into the per-lifetime ``log_weights`` array.

    **Censoring discipline.**  A naive density ratio on every draw makes the
    weight variance explode exponentially in the number of renewals per
    lifetime.  The kernels only ever *act* on a clock value through events
    inside the mission horizon, so the likelihood ratio is taken on the
    horizon-censored observation instead: a draw born at ``tau`` that fires
    at ``tau + t' < H`` contributes the density ratio
    ``-k*log(b) + (b^k - 1) * (t'/s)^k``; a draw that would fire at or
    beyond ``H`` contributes the survival ratio at its censor point,
    ``(b^k - 1) * ((H - tau)/s)^k`` — a *deterministic* quantity given the
    birth time; a draw born at or after ``H`` (or sampled for a geometry
    slot that does not exist) contributes nothing.  Every contribution has
    unit expectation under the biased measure, and the clipped-at-horizon
    downtime is measurable with respect to the censored observations, so
    the weighted availability estimator is exactly unbiased.
    """

    def __init__(self, base, factor, horizon_hours: float, log_weights: np.ndarray) -> None:
        self.base = base
        self.horizon = float(horizon_hours)
        self.log_weights = log_weights
        factor_arr = np.asarray(factor, dtype=float)
        if not np.all(np.isfinite(factor_arr)) or np.any(factor_arr <= 0.0):
            raise ConfigurationError(
                f"biasing factor must be positive and finite, got {factor!r}"
            )
        if factor_arr.ndim == 0:
            self.factor: Union[float, np.ndarray] = float(factor_arr)
        elif factor_arr.shape == (log_weights.size,):
            self.factor = factor_arr
        else:
            raise ConfigurationError(
                f"biasing factor shape {factor_arr.shape} does not match "
                f"{log_weights.size} lifetimes"
            )
        self.shape, self.scale = _failure_shape_scale(base)

    def sample_rows(
        self, rows: np.ndarray, rng: np.random.Generator, at: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Draw biased renewal clocks for ``rows`` born at hours ``at``."""
        if at is None:
            raise SimulationError("biased failure draws require their birth times")
        draws = _sample_rows(self.base, rows, rng)
        b = _rows(self.factor, rows)
        draws = draws / b
        self._accumulate(
            rows,
            draws,
            np.asarray(at, dtype=float),
            b,
            _rows(self.shape, rows),
            _rows(self.scale, rows),
        )
        return draws

    def sample_matrix(
        self,
        n_cols: int,
        rng: np.random.Generator,
        n_disks_rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Draw the biased ``(m, n_cols)`` initial clock matrix (born at 0)."""
        m = self.log_weights.size
        n_cols = int(n_cols)
        matrix_sampler = getattr(self.base, "sample_matrix", None)
        if matrix_sampler is not None:
            draws = np.asarray(matrix_sampler(n_cols, rng), dtype=float)
        elif getattr(self.base, "sample_rows", None) is not None:
            rows = np.repeat(np.arange(m), n_cols)
            draws = self.base.sample_rows(rows, rng).reshape(m, n_cols)
        else:
            draws = _sample(self.base, m * n_cols, rng).reshape(m, n_cols)
        b = np.broadcast_to(np.asarray(self.factor, dtype=float), (m,))[:, None]
        k = np.broadcast_to(np.asarray(self.shape, dtype=float), (m,))[:, None]
        s = np.broadcast_to(np.asarray(self.scale, dtype=float), (m,))[:, None]
        draws = draws / b
        bk = np.power(b, k)
        fired = draws < self.horizon
        contrib = np.where(
            fired,
            (bk - 1.0) * np.power(draws / s, k) - k * np.log(b),
            (bk - 1.0) * np.power(self.horizon / s, k),
        )
        if n_disks_rows is not None and np.any(n_disks_rows < n_cols):
            contrib[np.arange(n_cols)[None, :] >= n_disks_rows[:, None]] = 0.0
        self.log_weights += contrib.sum(axis=1)
        return draws

    def _accumulate(
        self,
        rows: np.ndarray,
        draws: np.ndarray,
        births: np.ndarray,
        b,
        k,
        s,
    ) -> None:
        """Add each draw's censored log-likelihood-ratio to its lifetime."""
        size = draws.size
        if size == 0:
            return
        b = np.broadcast_to(np.asarray(b, dtype=float), (size,))
        k = np.broadcast_to(np.asarray(k, dtype=float), (size,))
        s = np.broadcast_to(np.asarray(s, dtype=float), (size,))
        births = np.broadcast_to(births, (size,))
        remaining = self.horizon - births
        contrib = np.zeros(size, dtype=float)
        live = remaining > 0.0
        fired = live & (draws < remaining)
        censored = live & ~fired
        if np.any(fired):
            bf, kf, sf = b[fired], k[fired], s[fired]
            contrib[fired] = (np.power(bf, kf) - 1.0) * np.power(
                draws[fired] / sf, kf
            ) - kf * np.log(bf)
        if np.any(censored):
            bc, kc, sc = b[censored], k[censored], s[censored]
            contrib[censored] = (np.power(bc, kc) - 1.0) * np.power(
                remaining[censored] / sc, kc
            )
        np.add.at(self.log_weights, rows, contrib)


def _biased_failure_dist(
    params, horizon_hours: float, m: int, biasing
) -> Tuple[object, Optional[np.ndarray]]:
    """Build the (possibly biased) failure distribution for one batch.

    Returns ``(failure_dist, log_weights)``; ``log_weights`` is ``None``
    when no biasing was requested, leaving the unbiased call path untouched.
    """
    failure_dist = params.failure_distribution()
    if biasing is None:
        return failure_dist, None
    log_weights = np.zeros(m, dtype=float)
    return _BiasedSampler(failure_dist, biasing, horizon_hours, log_weights), log_weights


# ----------------------------------------------------------------------
# Scratch-buffer arena
# ----------------------------------------------------------------------
#: Thread-lifetime backing store of the kernel scratch buffers, grown to
#: the largest shard seen.  Re-allocating multi-megabyte scratch per kernel
#: invocation would bounce through ``mmap``/``munmap`` (and re-fault every
#: page) on common allocators; a worker instead pays that cost once and
#: reuses the pages for every subsequent shard.  The store is per *thread*
#: so concurrent kernel invocations (e.g. a caller driving the executors
#: from a thread pool) each get their own buffers instead of silently
#: clobbering another thread's live working set.
_SCRATCH_LOCAL = threading.local()


def _scratch_state() -> dict:
    state = getattr(_SCRATCH_LOCAL, "buffers", None)
    if state is None:
        state = {"ping": None, "pong": None, "masked": None, "arange": None}
        _SCRATCH_LOCAL.buffers = state
    return state


def _scratch_matrix(state: dict, key: str, m: int, n: int) -> np.ndarray:
    buffer = state[key]
    if buffer is None or buffer.size < m * n:
        buffer = np.empty(m * n, dtype=float)
        state[key] = buffer
    return buffer[: m * n].reshape(m, n)


class _Arena:
    """Reusable scratch buffers, sized to the shard, backed process-wide.

    Holds three full-size clock-matrix buffers — one as the scratch of
    masked second-failure searches (:meth:`masked`), two as the alternating
    targets of working-set compactions (:meth:`compact`) — plus a shared
    ``arange``.  Because the live set only ever shrinks, every later
    round's view fits inside the buffers sized for round one; no per-round
    allocation of matrix-sized temporaries remains, and repeat invocations
    (a worker stepping through its shards) reuse the same backing pages
    outright.
    """

    __slots__ = ("_ping", "_pong", "_masked", "_arange", "_use_ping")

    def __init__(self, m: int, n: int) -> None:
        state = _scratch_state()
        self._ping = _scratch_matrix(state, "ping", m, n)
        self._pong = _scratch_matrix(state, "pong", m, n)
        self._masked = _scratch_matrix(state, "masked", m, n)
        arange = state["arange"]
        if arange is None or arange.size < m:
            arange = np.arange(m)
            state["arange"] = arange
        self._arange = arange
        self._use_ping = True

    def arange(self, k: int) -> np.ndarray:
        """Return the cached ``arange(k)`` view."""
        return self._arange[:k]

    def masked(self, k: int) -> np.ndarray:
        """Return a ``(k, n)`` scratch matrix for masked clock searches."""
        return self._masked[:k]

    def compact(self, clocks: np.ndarray, keep: np.ndarray) -> np.ndarray:
        """Copy the ``keep`` rows of ``clocks`` into the next free buffer.

        Targets alternate between the two arena matrices, so the source —
        the kernel's own initial clock matrix on the first call, the other
        arena matrix afterwards — is always disjoint from the target:
        compaction costs one dense row copy and zero allocations.
        """
        target = self._ping if self._use_ping else self._pong
        self._use_ping = not self._use_ping
        out = target[: keep.size]
        np.take(clocks, keep, axis=0, out=out)
        return out


# ----------------------------------------------------------------------
# Conventional replacement policy
# ----------------------------------------------------------------------
def batch_conventional(
    params,
    horizon_hours: float,
    n_lifetimes: int,
    rng: np.random.Generator,
    compact: bool = True,
    biasing: Optional[Union[float, np.ndarray]] = None,
) -> BatchLifetimes:
    """Run ``n_lifetimes`` conventional-policy lifetimes as one numpy batch.

    ``params`` is a scalar parameter point or a
    :class:`~repro.core.policies.stacked.StackedParams` grid (one row per
    lifetime; ``n_lifetimes`` must then equal the grid length).

    ``compact=True`` (the default) runs the allocation-lean path: live rows
    are kept physically compacted and scratch comes from a per-invocation
    :class:`_Arena`.  ``compact=False`` retains the original full-width
    gather discipline; both paths consume the random stream identically and
    return bit-identical batches (the equivalence is pinned by
    ``tests/core/test_transport.py``).

    ``biasing`` (a factor > 0, scalar or per-lifetime array) switches the
    kernel to failure-biased importance sampling: failure rates are
    inflated by the factor and the returned batch carries per-lifetime
    ``log_weights`` (see :class:`_BiasedSampler`).  ``None`` — the default —
    takes the exact historical code path.
    """
    if horizon_hours <= 0.0:
        raise SimulationError(f"horizon must be positive, got {horizon_hours!r}")
    m = _check_lifetimes(params, n_lifetimes)
    if compact:
        return _conventional_compacted(params, float(horizon_hours), m, rng, biasing)
    return _conventional_gathered(params, float(horizon_hours), m, rng, biasing)


def _conventional_gathered(
    params, horizon_hours: float, m: int, rng: np.random.Generator, biasing=None
) -> BatchLifetimes:
    """The uncompacted conventional kernel (bit-identity oracle).

    Tracks active lifetimes as indices into full-width state and gathers
    ``clocks[active]`` every round — the pre-arena behaviour, retained as
    the baseline the compacted path is benchmarked and verified against.
    """
    n = params.n_disks
    n_disks = _per_row_or(params, "n_disks_rows", n)
    failure_dist, log_weights = _biased_failure_dist(params, horizon_hours, m, biasing)
    repair_dist = params.repair_distribution()
    ddf_dist = params.ddf_recovery_distribution()
    recovery_dist = params.human_error_recovery_distribution()
    hep = params.hep
    has_hep = _has_positive(hep)
    crash_rate = params.crash_rate

    batch = BatchLifetimes.zeros(m, horizon_hours)
    batch.log_weights = log_weights
    clocks = _initial_clocks(params, failure_dist, m, n, rng)
    now = np.zeros(m, dtype=float)
    active = np.arange(m)

    while active.size:
        c = clocks[active]
        slot, fail = _min_and_slot(c)
        fail = np.maximum(fail, now[active])
        alive = fail < horizon_hours
        active = active[alive]
        if active.size == 0:
            break
        c, slot, fail = c[alive], slot[alive], fail[alive]
        batch.disk_failures[active] += 1

        repair_done = fail + _sample_rows(repair_dist, active, rng)
        _, second = _min_excluding(c, slot)
        second = np.maximum(second, fail)

        # Double disk failure during the repair: data loss, backup restore.
        dl = second < repair_done
        dl_idx = active[dl]
        if dl_idx.size:
            batch.disk_failures[dl_idx] += 1
            batch.dl_events[dl_idx] += 1
            outage_end = second[dl] + _sample_rows(ddf_dist, dl_idx, rng)
            batch.downtime_hours[dl_idx] += _clip_downtime(second[dl], outage_end, horizon_hours)
            _renew_failed_before(clocks, dl_idx, outage_end, failure_dist, rng)
            now[dl_idx] = outage_end

        rest = ~dl
        if has_hep:
            he = rest & (rng.random(active.size) < _rows(hep, active))
        else:
            he = np.zeros(active.size, dtype=bool)

        # Wrong disk replacement: data unavailable until the error is undone
        # (or, when the pulled disk crashes, until the backup restore ends).
        he_idx = active[he]
        if he_idx.size:
            batch.human_errors[he_idx] += 1
            batch.du_events[he_idx] += 1
            wrong = _pick_other_slots(rng, _rows(n_disks, he_idx), slot[he])
            duration, crashed = _recovery_race(he_idx, recovery_dist, hep, crash_rate, rng)
            outage_end = repair_done[he] + duration
            cr = np.flatnonzero(crashed)
            if cr.size:
                batch.dl_events[he_idx[cr]] += 1
                outage_end[cr] += _sample_rows(ddf_dist, he_idx[cr], rng)
                _renew_slots(clocks, he_idx[cr], wrong[cr], outage_end[cr], failure_dist, rng)
            batch.downtime_hours[he_idx] += _clip_downtime(repair_done[he], outage_end, horizon_hours)
            _renew_slots(clocks, he_idx, slot[he], outage_end, failure_dist, rng)
            _renew_failed_before(clocks, he_idx, outage_end, failure_dist, rng)
            now[he_idx] = outage_end

        # Successful replacement and rebuild.
        ok = rest & ~he
        ok_idx = active[ok]
        if ok_idx.size:
            _renew_slots(clocks, ok_idx, slot[ok], repair_done[ok], failure_dist, rng)
            now[ok_idx] = repair_done[ok]

    return batch


def _conventional_compacted(
    params, horizon_hours: float, m: int, rng: np.random.Generator, biasing=None
) -> BatchLifetimes:
    """The allocation-lean conventional kernel.

    State lives in a physically compacted working set: ``clocks``/``now``
    hold only live rows and ``rows`` maps each back to its global lifetime
    id (used for batch counters and row-aware sampling, so the draw
    sequence matches :func:`_conventional_gathered` exactly).  Matrix-sized
    scratch comes from the :class:`_Arena`.
    """
    n = params.n_disks
    n_disks = _per_row_or(params, "n_disks_rows", n)
    failure_dist, log_weights = _biased_failure_dist(params, horizon_hours, m, biasing)
    repair_dist = params.repair_distribution()
    ddf_dist = params.ddf_recovery_distribution()
    recovery_dist = params.human_error_recovery_distribution()
    hep = params.hep
    has_hep = _has_positive(hep)
    crash_rate = params.crash_rate

    batch = BatchLifetimes.zeros(m, horizon_hours)
    batch.log_weights = log_weights
    clocks = _initial_clocks(params, failure_dist, m, n, rng)
    now = np.zeros(m, dtype=float)
    rows = np.arange(m)
    arena = _Arena(m, n)
    first_round = True

    while rows.size:
        k = rows.size
        r = arena.arange(k)
        slot, fail = _min_and_slot(clocks, r)
        if first_round:
            # ``now`` is still all-zero and clocks are non-negative, so the
            # episode-start clamp is a no-op this round.
            first_round = False
        else:
            np.maximum(fail, now, out=fail)
        alive = fail < horizon_hours
        if not alive.all():
            keep = np.flatnonzero(alive)
            if keep.size == 0:
                break
            clocks = arena.compact(clocks, keep)
            now = now[keep]
            rows = rows[keep]
            slot = slot[keep]
            fail = fail[keep]
            k = keep.size
            r = arena.arange(k)
        batch.disk_failures[rows] += 1

        repair_done = fail + _sample_rows(repair_dist, rows, rng)
        second = _second_smallest(clocks, arena.masked(k))
        np.maximum(second, fail, out=second)

        # Double disk failure during the repair: data loss, backup restore.
        dl = second < repair_done
        dl_pos = np.flatnonzero(dl)
        if dl_pos.size:
            g = rows[dl_pos]
            batch.disk_failures[g] += 1
            batch.dl_events[g] += 1
            outage_end = second[dl_pos] + _sample_rows(ddf_dist, g, rng)
            batch.downtime_hours[g] += _clip_downtime(second[dl_pos], outage_end, horizon_hours)
            _renew_failed_before(clocks, dl_pos, outage_end, failure_dist, rng, sample_rows=g)
            now[dl_pos] = outage_end

        rest = ~dl
        if has_hep:
            he = rest & (rng.random(k) < _rows(hep, rows))
        else:
            he = np.zeros(k, dtype=bool)

        # Wrong disk replacement: data unavailable until the error is undone
        # (or, when the pulled disk crashes, until the backup restore ends).
        he_pos = np.flatnonzero(he)
        if he_pos.size:
            g = rows[he_pos]
            batch.human_errors[g] += 1
            batch.du_events[g] += 1
            wrong = _pick_other_slots(rng, _rows(n_disks, g), slot[he_pos])
            duration, crashed = _recovery_race(g, recovery_dist, hep, crash_rate, rng)
            outage_end = repair_done[he_pos] + duration
            cr = np.flatnonzero(crashed)
            if cr.size:
                batch.dl_events[g[cr]] += 1
                outage_end[cr] += _sample_rows(ddf_dist, g[cr], rng)
                _renew_slots(
                    clocks, he_pos[cr], wrong[cr], outage_end[cr],
                    failure_dist, rng, sample_rows=g[cr],
                )
            batch.downtime_hours[g] += _clip_downtime(repair_done[he_pos], outage_end, horizon_hours)
            _renew_slots(clocks, he_pos, slot[he_pos], outage_end, failure_dist, rng, sample_rows=g)
            _renew_failed_before(clocks, he_pos, outage_end, failure_dist, rng, sample_rows=g)
            now[he_pos] = outage_end

        # Successful replacement and rebuild.
        ok = rest & ~he
        ok_pos = np.flatnonzero(ok)
        if ok_pos.size:
            g = rows[ok_pos]
            _renew_slots(
                clocks, ok_pos, slot[ok_pos], repair_done[ok_pos],
                failure_dist, rng, sample_rows=g,
            )
            now[ok_pos] = repair_done[ok_pos]

    return batch


def _check_lifetimes(params, n_lifetimes: int) -> int:
    """Validate the lifetime count against a (possibly stacked) grid."""
    m = int(n_lifetimes)
    if getattr(params, "n_disks_rows", None) is not None and m != len(params):
        raise ConfigurationError(
            f"stacked grid holds {len(params)} lifetimes but {m} were requested"
        )
    return m


def _per_row_or(params, attr: str, default):
    """Return a per-row parameter array, or ``default`` for scalar points."""
    value = getattr(params, attr, None)
    return default if value is None else value


# ----------------------------------------------------------------------
# Spare-pool state machine (fail-over with n_spares == 1)
# ----------------------------------------------------------------------
@dataclass
class _SparePoolState:
    """Mutable struct-of-arrays state shared by the spare-pool sub-steps.

    On the compacted path ``clocks``/``now``/``spares`` hold only live rows
    and ``rows`` maps local working-set indices to global lifetime ids; the
    uncompacted path leaves ``rows``/``arena`` as ``None``, making local and
    global indices coincide.  Sub-steps therefore index state arrays with
    the indices they were handed and translate through :meth:`gids` for
    batch counters, per-row parameters and row-aware sampling — the one
    discipline that keeps both paths on the same random draw sequence.
    """

    params: object
    horizon: float
    rng: np.random.Generator
    n_spares: Union[int, np.ndarray]
    batch: BatchLifetimes
    clocks: np.ndarray
    now: np.ndarray
    spares: np.ndarray
    failure_dist: object
    rebuild_dist: object
    replace_dist: object
    ddf_dist: object
    recovery_dist: object

    #: Whether any row has a positive hep, computed once per invocation —
    #: the parameter arrays are immutable for the kernel's lifetime, so the
    #: per-round steps must not rescan a grid-sized array.
    has_hep: bool = False

    #: Global lifetime ids of the live rows (compacted path only).
    rows: Optional[np.ndarray] = None

    #: Scratch arena (compacted path only).
    arena: Optional[_Arena] = None

    @property
    def hep(self) -> Union[float, np.ndarray]:
        return self.params.hep

    @property
    def crash_rate(self) -> Union[float, np.ndarray]:
        return self.params.crash_rate

    @property
    def n_disks(self) -> Union[int, np.ndarray]:
        return _per_row_or(self.params, "n_disks_rows", self.params.n_disks)

    def gids(self, idx: np.ndarray) -> np.ndarray:
        """Translate local working-set indices to global lifetime ids."""
        return idx if self.rows is None else self.rows[idx]

    def scratch(self, k: int) -> Optional[np.ndarray]:
        """Return a ``(k, n)`` arena scratch matrix (``None`` uncompacted)."""
        return None if self.arena is None else self.arena.masked(k)

    def restock(self, idx: np.ndarray) -> None:
        """Refill the pools of ``idx`` to their configured sizes."""
        self.spares[idx] = _rows(self.n_spares, self.gids(idx))

    def empty(self, idx: np.ndarray) -> None:
        """Mark the pools of ``idx`` as exhausted."""
        self.spares[idx] = 0


def batch_spare_pool(
    params,
    horizon_hours: float,
    n_lifetimes: int,
    rng: np.random.Generator,
    n_spares: int = 1,
    compact: bool = True,
    biasing: Optional[Union[float, np.ndarray]] = None,
) -> BatchLifetimes:
    """Run ``n_lifetimes`` spare-pool lifetimes as one numpy batch.

    ``n_spares=1`` reproduces the paper's automatic fail-over policy; larger
    values implement the hot-spare-pool scenario.  On a stacked grid the
    per-row ``StackedParams.n_spares_rows`` (when present) overrides the
    scalar argument, so one invocation can mix pool sizes.

    ``compact`` selects the allocation-lean working set exactly as in
    :func:`batch_conventional`; both settings are bit-identical.
    ``biasing`` enables failure-biased importance sampling exactly as in
    :func:`batch_conventional`.
    """
    if horizon_hours <= 0.0:
        raise SimulationError(f"horizon must be positive, got {horizon_hours!r}")
    m = _check_lifetimes(params, n_lifetimes)
    pool_sizes = _per_row_or(params, "n_spares_rows", None)
    if pool_sizes is None:
        pool_sizes = int(n_spares)
        if pool_sizes < 1:
            raise ConfigurationError(
                f"spare pool needs at least one spare, got {n_spares!r}"
            )
        initial = np.full(m, pool_sizes, dtype=np.int64)
    else:
        if np.any(pool_sizes < 1):
            raise ConfigurationError("every stacked pool needs at least one spare")
        initial = np.asarray(pool_sizes, dtype=np.int64).copy()
    n = params.n_disks
    failure_dist, log_weights = _biased_failure_dist(
        params, float(horizon_hours), m, biasing
    )
    state = _SparePoolState(
        params=params,
        horizon=float(horizon_hours),
        rng=rng,
        n_spares=pool_sizes,
        batch=BatchLifetimes.zeros(m, horizon_hours),
        clocks=_initial_clocks(params, failure_dist, m, n, rng),
        now=np.zeros(m, dtype=float),
        spares=initial,
        failure_dist=failure_dist,
        rebuild_dist=params.repair_distribution(),
        replace_dist=params.spare_replacement_distribution(),
        ddf_dist=params.ddf_recovery_distribution(),
        recovery_dist=params.human_error_recovery_distribution(),
        has_hep=_has_positive(params.hep),
    )
    state.batch.log_weights = log_weights
    if compact:
        state.rows = np.arange(m)
        state.arena = _Arena(m, n)
        return _spare_pool_compacted(state)
    return _spare_pool_gathered(state, m)


def _spare_pool_gathered(state: _SparePoolState, m: int) -> BatchLifetimes:
    """The uncompacted spare-pool round loop (bit-identity oracle)."""
    active = np.arange(m)
    while active.size:
        c = state.clocks[active]
        slot, fail = _min_and_slot(c)
        fail = np.maximum(fail, state.now[active])
        alive = fail < state.horizon
        active = active[alive]
        if active.size == 0:
            break
        c, slot, fail = c[alive], slot[alive], fail[alive]
        state.batch.disk_failures[active] += 1

        # Lifetimes entering the exposed service this round, from any branch.
        exposed: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []

        has_spare = state.spares[active] > 0
        sp = np.flatnonzero(has_spare)
        if sp.size:
            _spare_rebuild_step(state, active[sp], slot[sp], fail[sp], c[sp], exposed)
        ns = np.flatnonzero(~has_spare)
        if ns.size:
            exposed.append((active[ns], slot[ns], fail[ns]))

        if exposed:
            idx = np.concatenate([part[0] for part in exposed])
            ex_slot = np.concatenate([part[1] for part in exposed])
            ex_start = np.concatenate([part[2] for part in exposed])
            _exposed_step(state, idx, ex_slot, ex_start)

    return state.batch


def _spare_pool_compacted(state: _SparePoolState) -> BatchLifetimes:
    """The allocation-lean spare-pool round loop (compacted working set)."""
    arena = state.arena
    first_round = True
    while state.rows.size:
        slot, fail = _min_and_slot(state.clocks, arena.arange(state.rows.size))
        if first_round:
            first_round = False
        else:
            np.maximum(fail, state.now, out=fail)
        alive = fail < state.horizon
        if not alive.all():
            keep = np.flatnonzero(alive)
            if keep.size == 0:
                break
            state.clocks = arena.compact(state.clocks, keep)
            state.now = state.now[keep]
            state.spares = state.spares[keep]
            state.rows = state.rows[keep]
            slot = slot[keep]
            fail = fail[keep]
        state.batch.disk_failures[state.rows] += 1

        # Lifetimes entering the exposed service this round, from any branch.
        exposed: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []

        has_spare = state.spares > 0
        sp = np.flatnonzero(has_spare)
        if sp.size:
            _spare_rebuild_step(state, sp, slot[sp], fail[sp], state.clocks[sp], exposed)
        ns = np.flatnonzero(~has_spare)
        if ns.size:
            exposed.append((ns, slot[ns], fail[ns]))

        if exposed:
            idx = np.concatenate([part[0] for part in exposed])
            ex_slot = np.concatenate([part[1] for part in exposed])
            ex_start = np.concatenate([part[2] for part in exposed])
            _exposed_step(state, idx, ex_slot, ex_start)

    return state.batch


def _spare_rebuild_step(
    state: _SparePoolState,
    idx: np.ndarray,
    slot: np.ndarray,
    fail: np.ndarray,
    c: np.ndarray,
    exposed: List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> None:
    """On-line rebuild onto a hot spare, then the hardware replacement visit."""
    rng = state.rng
    g = state.gids(idx)
    rebuild_done = fail + _sample_rows(state.rebuild_dist, g, rng)
    _, second = _min_excluding(c, slot, out=state.scratch(c.shape[0]))
    second = np.maximum(second, fail)

    # Double disk failure during the rebuild: data loss, backup restore; the
    # restore window is long enough for the technician to restock the pool.
    dl = second < rebuild_done
    dl_idx = idx[dl]
    if dl_idx.size:
        g_dl = g[dl]
        state.batch.disk_failures[g_dl] += 1
        state.batch.dl_events[g_dl] += 1
        outage_end = second[dl] + _sample_rows(state.ddf_dist, g_dl, rng)
        state.batch.downtime_hours[g_dl] += _clip_downtime(second[dl], outage_end, state.horizon)
        _renew_failed_before(
            state.clocks, dl_idx, outage_end, state.failure_dist, rng, sample_rows=g_dl
        )
        state.restock(dl_idx)
        state.now[dl_idx] = outage_end

    # Rebuild finished: the spare carries the data; replace the dead hardware.
    ok = ~dl
    ok_idx = idx[ok]
    if ok_idx.size:
        _renew_slots(
            state.clocks, ok_idx, slot[ok], rebuild_done[ok],
            state.failure_dist, rng, sample_rows=g[ok],
        )
        state.spares[ok_idx] -= 1
        _replacement_visit_step(state, ok_idx, rebuild_done[ok], exposed)


def _replacement_visit_step(
    state: _SparePoolState,
    idx: np.ndarray,
    start: np.ndarray,
    exposed: List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> None:
    """Technician visit restocking the spare pool after an on-line rebuild."""
    rng = state.rng
    g = state.gids(idx)
    replace_done = start + _sample_rows(state.replace_dist, g, rng)
    _, next_fail = _min_and_slot(state.clocks[idx])
    next_fail = np.maximum(next_fail, start)

    # A further failure preempts the visit: the pool is not restocked and the
    # failure is handled from scratch next round (another spare when one is
    # left, the exposed service otherwise).
    preempt = (next_fail < replace_done) & (next_fail < state.horizon)
    p_idx = idx[preempt]
    if p_idx.size:
        state.now[p_idx] = next_fail[preempt]

    rest = ~preempt
    if state.has_hep:
        he = rest & (rng.random(idx.size) < _rows(state.hep, g))
    else:
        he = np.zeros(idx.size, dtype=bool)

    ok = rest & ~he
    ok_idx = idx[ok]
    if ok_idx.size:
        state.restock(ok_idx)
        state.now[ok_idx] = replace_done[ok]

    # Wrong pull during the visit: the array was fully redundant, so it only
    # degrades — unless a real failure or a crash of the pulled disk lands
    # while the error is outstanding.
    he_idx = idx[he]
    if he_idx.size == 0:
        return
    g_he = g[he]
    state.batch.human_errors[g_he] += 1
    wrong = _random_slots(rng, _rows(state.n_disks, g_he), he_idx.size)
    duration, crashed = _recovery_race(
        g_he, state.recovery_dist, state.hep, state.crash_rate, rng
    )
    recovery_end = replace_done[he] + duration
    other, second = _min_excluding(
        state.clocks[he_idx], wrong, out=state.scratch(he_idx.size)
    )
    second = np.maximum(second, replace_done[he])
    fail_during = (second < recovery_end) & (second < state.horizon)

    # Failure during the wrong pull, pulled disk crashed: unavailability
    # escalates to data loss; the backup restore fixes everything.
    a = fail_during & crashed
    a_idx = he_idx[a]
    if a_idx.size:
        g_a = g_he[a]
        state.batch.disk_failures[g_a] += 1
        state.batch.du_events[g_a] += 1
        state.batch.dl_events[g_a] += 1
        outage_end = recovery_end[a] + _sample_rows(state.ddf_dist, g_a, rng)
        state.batch.downtime_hours[g_a] += _clip_downtime(second[a], outage_end, state.horizon)
        _renew_failed_before(
            state.clocks, a_idx, outage_end, state.failure_dist, rng, sample_rows=g_a
        )
        state.restock(a_idx)
        state.now[a_idx] = outage_end

    # Failure during the wrong pull, no crash: data unavailable until the
    # error is undone, then the real failure resolves without a spare.
    b = fail_during & ~crashed
    b_idx = he_idx[b]
    if b_idx.size:
        g_b = g_he[b]
        state.batch.disk_failures[g_b] += 1
        state.batch.du_events[g_b] += 1
        state.batch.downtime_hours[g_b] += _clip_downtime(second[b], recovery_end[b], state.horizon)
        exposed.append((b_idx, other[b], recovery_end[b]))

    # No failure, but the pulled disk crashed: it is now a genuine failed
    # disk (array degraded-but-up, pool not restocked).
    cr = ~fail_during & crashed
    cr_idx = he_idx[cr]
    if cr_idx.size:
        exposed.append((cr_idx, wrong[cr], recovery_end[cr]))

    # Clean recovery: the visit still restocked the pool.
    ok2 = ~fail_during & ~crashed
    ok2_idx = he_idx[ok2]
    if ok2_idx.size:
        state.restock(ok2_idx)
        state.now[ok2_idx] = recovery_end[ok2]


def _exposed_step(
    state: _SparePoolState,
    idx: np.ndarray,
    slot: np.ndarray,
    start: np.ndarray,
) -> None:
    """Resolve a failed disk with no spare left (the ``EXPns1`` service).

    The technician rebuilds and replaces hardware in one visit (combined
    rate ``mu_DF + mu_ch``); success restocks the whole pool.
    """
    rng = state.rng
    g = state.gids(idx)
    combined_rate = state.params.disk_repair_rate + state.params.spare_replacement_rate
    if isinstance(combined_rate, np.ndarray):
        service_done = start + rng.exponential(1.0, idx.size) / combined_rate[g]
    else:
        service_done = start + rng.exponential(1.0 / combined_rate, idx.size)
    _, second = _min_excluding(state.clocks[idx], slot, out=state.scratch(idx.size))
    second = np.maximum(second, start)

    # Double failure with no spare: data loss.
    dl = (second < service_done) & (second < state.horizon)
    dl_idx = idx[dl]
    if dl_idx.size:
        g_dl = g[dl]
        state.batch.disk_failures[g_dl] += 1
        state.batch.dl_events[g_dl] += 1
        outage_end = second[dl] + _sample_rows(state.ddf_dist, g_dl, rng)
        state.batch.downtime_hours[g_dl] += _clip_downtime(second[dl], outage_end, state.horizon)
        _renew_slots(
            state.clocks, dl_idx, slot[dl], outage_end,
            state.failure_dist, rng, sample_rows=g_dl,
        )
        _renew_failed_before(
            state.clocks, dl_idx, outage_end, state.failure_dist, rng, sample_rows=g_dl
        )
        state.empty(dl_idx)
        state.now[dl_idx] = outage_end

    rest = ~dl
    if state.has_hep:
        he = rest & (rng.random(idx.size) < _rows(state.hep, g))
    else:
        he = np.zeros(idx.size, dtype=bool)

    # Wrong pull while degraded: data unavailable (data loss if the pulled
    # disk crashes before the error is undone).
    he_idx = idx[he]
    if he_idx.size:
        g_he = g[he]
        state.batch.human_errors[g_he] += 1
        state.batch.du_events[g_he] += 1
        duration, crashed = _recovery_race(
            g_he, state.recovery_dist, state.hep, state.crash_rate, rng
        )
        outage_end = service_done[he] + duration
        cr = np.flatnonzero(crashed)
        if cr.size:
            state.batch.dl_events[g_he[cr]] += 1
            outage_end[cr] += _sample_rows(state.ddf_dist, g_he[cr], rng)
        state.batch.downtime_hours[g_he] += _clip_downtime(
            service_done[he], outage_end, state.horizon
        )
        _renew_slots(
            state.clocks, he_idx, slot[he], outage_end,
            state.failure_dist, rng, sample_rows=g_he,
        )
        _renew_failed_before(
            state.clocks, he_idx, outage_end, state.failure_dist, rng, sample_rows=g_he
        )
        state.empty(he_idx)
        state.now[he_idx] = outage_end

    # Successful combined service: disk back, pool restocked in one visit.
    ok = rest & ~he
    ok_idx = idx[ok]
    if ok_idx.size:
        g_ok = g[ok]
        _renew_slots(
            state.clocks, ok_idx, slot[ok], service_done[ok],
            state.failure_dist, rng, sample_rows=g_ok,
        )
        state.restock(ok_idx)
        state.now[ok_idx] = service_done[ok]


# ----------------------------------------------------------------------
# Erasure-coded k-of-N checker/repair kernel
# ----------------------------------------------------------------------
def _erasure_scheme_planes(params, m: int, scheme):
    """Return per-row ``(n, k, repair_threshold, period)`` arrays.

    Stacked grids carry the scheme as optional per-row planes
    (``k_rows``/``repair_threshold_rows``/``check_period_rows``, built by
    ``stack_parameter_points(..., schemes=...)``); a grid without planes
    falls back to broadcasting a fully pinned scheme.  Scalar points
    resolve the scheme against their geometry.
    """
    n_rows = getattr(params, "n_disks_rows", None)
    if n_rows is None:
        if scheme is None:
            raise ConfigurationError(
                "the erasure kernel needs a redundancy scheme; bind one via "
                "erasure_policy(k, n, ...) or pass scheme= explicitly"
            )
        resolved = scheme.resolve(params) if isinstance(scheme, RedundancyScheme) else scheme
        if not resolved.is_periodic:
            raise ConfigurationError(
                "the erasure kernel simulates periodic check/repair cycles; "
                "the scheme must set check_period_hours"
            )
        return (
            np.full(m, int(resolved.n_shares), dtype=np.int64),
            np.full(m, int(resolved.k), dtype=np.int64),
            np.full(m, int(resolved.repair_threshold), dtype=np.int64),
            np.full(m, float(resolved.check_period_hours), dtype=float),
        )
    k_rows = getattr(params, "k_rows", None)
    if k_rows is not None:
        return (
            np.asarray(n_rows, dtype=np.int64),
            np.asarray(k_rows, dtype=np.int64),
            np.asarray(params.repair_threshold_rows, dtype=np.int64),
            np.asarray(params.check_period_rows, dtype=float),
        )
    pinned = (
        scheme is not None
        and getattr(scheme, "n_shares", None) is not None
        and getattr(scheme, "k", None) is not None
        and getattr(scheme, "repair_threshold", None) is not None
        and getattr(scheme, "check_period_hours", None) is not None
    )
    if not pinned:
        raise ConfigurationError(
            "stacked erasure grids need per-row scheme planes (build the "
            "grid with stack_parameter_points(..., schemes=...)) or a fully "
            "pinned scheme to broadcast"
        )
    if np.any(np.asarray(n_rows) != int(scheme.n_shares)):
        raise ConfigurationError(
            f"scheme pins n_shares={scheme.n_shares!r} but the stacked grid "
            "mixes other geometries; use per-row scheme planes instead"
        )
    return (
        np.asarray(n_rows, dtype=np.int64),
        np.full(m, int(scheme.k), dtype=np.int64),
        np.full(m, int(scheme.repair_threshold), dtype=np.int64),
        np.full(m, float(scheme.check_period_hours), dtype=float),
    )


def batch_erasure(
    params,
    horizon_hours: float,
    n_lifetimes: int,
    rng: np.random.Generator,
    scheme: Optional[object] = None,
    compact: bool = True,
    biasing: Optional[Union[float, np.ndarray]] = None,
) -> BatchLifetimes:
    """Run ``n_lifetimes`` erasure-coded k-of-N lifetimes as one numpy batch.

    The simulated semantics (tahoe-style, shared with the scalar simulator
    and the checker-cycle analytical face in :mod:`repro.markov.checker`):

    * ``N`` shares fail independently at rate ``lambda`` (exponential only —
      the kernel tracks the aggregate next-failure clock ``Exp(s*lambda)``
      by memorylessness, so ``failure_shape`` must be 1);
    * a checker runs every ``check_period`` hours.  Finding ``k <= s <
      repair_threshold`` live shares it repairs back to ``N`` (one
      ``du_events`` repair activation); with probability ``hep`` the repair
      is botched by operator error and leaves ``N - 1`` shares
      (``human_errors``).  Repairs are instantaneous;
    * dropping below ``k`` live shares is a data outage (``dl_events``):
      downtime accrues until the next check discovers it and restores from
      backup (same ``hep`` botch risk; a botched restore of a ``k == N``
      scheme stays down — a continuing outage, not a second ``dl_events``);
    * share failures are not simulated while the object is down.

    ``scheme`` is a :class:`~repro.core.policies.base.RedundancyScheme`
    (resolved against scalar points) or a ready ``ResolvedScheme``; stacked
    grids read the per-row scheme planes instead.  ``compact`` is accepted
    for kernel-signature uniformity and ignored — the working set is a few
    flat arrays, there is no clock matrix to compact.  Failure biasing is
    not supported (the aggregate-clock discipline has no per-share draws to
    tilt); pass ``biasing=None``.

    ``crash_rate`` and the ``mu_*`` repair rates are not read by this
    kernel — repair duration is the check latency itself.
    """
    if horizon_hours <= 0.0:
        raise SimulationError(f"horizon must be positive, got {horizon_hours!r}")
    if biasing is not None:
        raise ConfigurationError(
            "the erasure checker kernel does not support failure biasing; "
            "its aggregate share clocks have no per-draw likelihood ratio"
        )
    horizon = float(horizon_hours)
    m = _check_lifetimes(params, n_lifetimes)
    if np.any(np.asarray(getattr(params, "failure_shape", 1.0)) != 1.0):
        raise ConfigurationError(
            "the erasure kernel requires exponential share failures "
            "(failure_shape == 1); Weibull share decay is not memoryless"
        )
    n_arr, k_arr, r_arr, period = _erasure_scheme_planes(params, m, scheme)
    lam = np.broadcast_to(
        np.asarray(params.disk_failure_rate, dtype=float), (m,)
    )
    hep = params.hep
    has_hep = _has_positive(hep)

    batch = BatchLifetimes.zeros(m, horizon)
    shares = n_arr.copy()
    # Aggregate next-failure clock: from s live shares the next loss arrives
    # at rate s*lambda; one draw per state change (memorylessness).
    pending = rng.exponential(1.0, m) / (shares * lam)
    # Checks fire at T, 2T, ...; while s >= repair_threshold every check is
    # a no-op, so jump straight to the first check at or after the failure.
    next_check = period * np.ceil(pending / period)
    down_since = np.full(m, np.inf)
    active = np.arange(m)

    while active.size:
        pf = pending[active]
        nc = next_check[active]
        etime = np.minimum(pf, nc)
        done = etime >= horizon
        if done.any():
            d_idx = active[done]
            still_down = np.isfinite(down_since[d_idx])
            if still_down.any():
                g = d_idx[still_down]
                batch.downtime_hours[g] += horizon - down_since[g]
            keep = ~done
            active = active[keep]
            if active.size == 0:
                break
            pf, nc, etime = pf[keep], nc[keep], etime[keep]

        pos = np.arange(active.size)
        is_fail = pf < nc

        # --- share failures (strictly before a coincident check) ---
        fail_pos = pos[is_fail]
        surv_pos = np.empty(0, dtype=np.int64)
        if fail_pos.size:
            f_idx = active[fail_pos]
            batch.disk_failures[f_idx] += 1
            shares[f_idx] -= 1
            broke = shares[f_idx] < k_arr[f_idx]
            br_idx = f_idx[broke]
            if br_idx.size:
                # Data outage until the next check discovers it; failures of
                # the surviving shares are not simulated while down.
                batch.dl_events[br_idx] += 1
                down_since[br_idx] = pending[br_idx]
                pending[br_idx] = np.inf
            surv_pos = fail_pos[~broke]

        # --- checker visits ---
        check_pos = pos[~is_fail]
        acted_up_pos = np.empty(0, dtype=np.int64)
        if check_pos.size:
            c_idx = active[check_pos]
            at = next_check[c_idx]
            is_down = ~np.isfinite(pending[c_idx])
            needs_repair = ~is_down & (shares[c_idx] < r_arr[c_idx])
            act = is_down | needs_repair
            act_pos = check_pos[act]
            if act_pos.size:
                a_idx = active[act_pos]
                a_at = at[act]
                if has_hep:
                    botched = rng.random(a_idx.size) < _rows(hep, a_idx)
                else:
                    botched = np.zeros(a_idx.size, dtype=bool)
                rep_idx = a_idx[needs_repair[act]]
                if rep_idx.size:
                    batch.du_events[rep_idx] += 1
                res = is_down[act]
                res_idx = a_idx[res]
                if res_idx.size:
                    batch.downtime_hours[res_idx] += a_at[res] - down_since[res_idx]
                    down_since[res_idx] = np.inf
                shares[a_idx] = np.where(botched, n_arr[a_idx] - 1, n_arr[a_idx])
                if botched.any():
                    batch.human_errors[a_idx[botched]] += 1
                # A botched restore of a k == N scheme stays down until the
                # next check — a continuing outage, no second dl_event.
                still_down = shares[a_idx] < k_arr[a_idx]
                if still_down.any():
                    down_since[a_idx[still_down]] = a_at[still_down]
                acted_up_pos = act_pos[~still_down]
            next_check[c_idx] = at + period[c_idx]

        # --- fresh aggregate clocks, in global row order ---
        redraw_pos = np.sort(np.concatenate([surv_pos, acted_up_pos]))
        if redraw_pos.size:
            g = active[redraw_pos]
            pending[g] = etime[redraw_pos] + rng.exponential(1.0, g.size) / (
                shares[g] * lam[g]
            )

        # Check-skip: rows at or above the repair threshold see only no-op
        # checks until their next failure, so jump ahead (never backwards).
        up = np.isfinite(pending[active])
        skip_idx = active[up]
        skip_idx = skip_idx[shares[skip_idx] >= r_arr[skip_idx]]
        if skip_idx.size:
            next_check[skip_idx] = np.maximum(
                next_check[skip_idx],
                period[skip_idx] * np.ceil(pending[skip_idx] / period[skip_idx]),
            )

    return batch
