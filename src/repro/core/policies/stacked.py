"""Per-lifetime parameter grids for the stacked Monte Carlo kernels.

The batch kernels in :mod:`repro.core.policies.vectorized` were written
against :class:`~repro.core.parameters.AvailabilityParameters`, whose rates
are plain scalars: one kernel invocation simulates many lifetimes of **one**
parameter point.  A parameter *sweep* therefore used to pay one kernel
invocation — plus shard scheduling and aggregation — per point.

:class:`StackedParams` removes that limit: every per-study scalar (``hep``,
``lambda``, the repair/recovery rates, ``n_disks``, the spare-pool size)
becomes a **per-lifetime array**, so a single kernel invocation can simulate
``points x lifetimes`` lifetimes covering an entire sweep grid at once.  The
class quacks exactly like ``AvailabilityParameters`` as far as the kernels
are concerned:

* the distribution factories return *row-aware* distributions whose
  ``sample_rows(rows, rng)`` draws each sample at the rate of the lifetime
  it belongs to, and
* ``hep`` / ``crash_rate`` / the service rates are arrays the kernels index
  with the global lifetime rows they are currently stepping.

Lifetimes of points with fewer disks than the widest point simply carry
``+inf`` failure clocks in the unused slots, so one rectangular clock matrix
serves a geometry-mixed grid.

The sharded executor in :mod:`repro.core.montecarlo.parallel` splits the
flattened ``point x lifetime`` axis into independent shards and has each
worker expand its own slice via :func:`stack_parameter_points` from the
covered points' scalars (only scalars cross the process boundary, never
grid-sized arrays); ``StackedParams.slice`` additionally cuts a contiguous
row range out of an existing grid for direct grid surgery.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np
from scipy.special import gamma as _gamma

from repro.core.parameters import AvailabilityParameters
from repro.exceptions import ConfigurationError

__all__ = [
    "OPTIONAL_PLANE_FIELD",
    "SCHEME_PLANE_FIELDS",
    "STACKED_PLANE_FIELDS",
    "RowExponential",
    "RowWeibull",
    "StackedParams",
    "stack_parameter_points",
    "stacked_from_planes",
]

#: The per-lifetime parameter planes of a grid, in canonical segment-layout
#: order: ``(field name, dtype)`` of every mandatory ``StackedParams`` array.
#: The shared-memory transport (:mod:`repro.core.montecarlo.transport`) lays
#: a sweep's planes out in exactly this order, so the spec doubles as the
#: wire format — change it and the attach protocol changes with it.
STACKED_PLANE_FIELDS = (
    ("disk_failure_rate", np.float64),
    ("disk_repair_rate", np.float64),
    ("ddf_recovery_rate", np.float64),
    ("human_error_rate", np.float64),
    ("spare_replacement_rate", np.float64),
    ("crash_rate", np.float64),
    ("hep", np.float64),
    ("failure_shape", np.float64),
    ("n_disks_rows", np.int64),
)

#: The optional per-row spare-pool plane, appended after the mandatory ones
#: when a grid carries per-row pool sizes.
OPTIONAL_PLANE_FIELD = ("n_spares_rows", np.int64)

#: The optional per-row redundancy-scheme planes of erasure-coded grids,
#: appended (in this order, all three together) after the spare plane when
#: present.  ``n_shares`` rides the mandatory ``n_disks_rows`` plane.
SCHEME_PLANE_FIELDS = (
    ("k_rows", np.int64),
    ("repair_threshold_rows", np.int64),
    ("check_period_rows", np.float64),
)


class RowExponential:
    """Exponential sampler with a per-lifetime rate array.

    ``sample_rows(rows, rng)`` draws one standard exponential per requested
    row and scales it by that row's mean, so every sample is distributed at
    the rate of the lifetime it belongs to while all rows share one
    underlying stream.
    """

    def __init__(self, rates: np.ndarray) -> None:
        rates = np.asarray(rates, dtype=float)
        if rates.ndim != 1 or rates.size == 0:
            raise ConfigurationError("row rates must be a non-empty 1-d array")
        if not np.all(np.isfinite(rates)) or np.any(rates <= 0.0):
            raise ConfigurationError("row rates must be positive and finite")
        self.rates = rates

    def sample_rows(self, rows: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw one sample per entry of ``rows`` at that row's rate."""
        if rows.size == 0:
            return np.empty(0, dtype=float)
        draws = rng.exponential(1.0, rows.size)
        draws /= self.rates[rows]
        return draws

    def sample_matrix(self, n_cols: int, rng: np.random.Generator) -> np.ndarray:
        """Draw an ``(n_rows, n_cols)`` matrix, each row at its own rate.

        Equivalent to ``sample_rows`` over a row-major repeat of every row
        ``n_cols`` times, but the rate division broadcasts (in place, over
        the draw buffer) instead of gathering one rate per sample — the
        fast path for the initial clock matrix of a large stacked grid.
        """
        draws = rng.exponential(1.0, (self.rates.size, int(n_cols)))
        draws /= self.rates[:, None]
        return draws

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RowExponential(n={self.rates.size})"


class RowWeibull:
    """Weibull sampler with per-lifetime rate and shape arrays.

    Follows the paper's convention (``Weibull.from_rate_and_shape``): the
    mean time to event of row ``i`` equals ``1 / rates[i]`` and its shape is
    ``shapes[i]``; rows with shape 1 degenerate to the exponential.
    """

    def __init__(self, rates: np.ndarray, shapes: np.ndarray) -> None:
        rates = np.asarray(rates, dtype=float)
        shapes = np.asarray(shapes, dtype=float)
        if rates.shape != shapes.shape or rates.ndim != 1 or rates.size == 0:
            raise ConfigurationError("row rates/shapes must be matching 1-d arrays")
        if np.any(rates <= 0.0) or np.any(shapes <= 0.0):
            raise ConfigurationError("row rates and shapes must be positive")
        self.rates = rates
        self.shapes = shapes
        # mean = scale * Gamma(1 + 1/shape)  =>  scale = mean / Gamma(...)
        self.scales = (1.0 / rates) / _gamma(1.0 + 1.0 / shapes)

    def sample_rows(self, rows: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw one sample per entry of ``rows`` at that row's parameters."""
        if rows.size == 0:
            return np.empty(0, dtype=float)
        draws = rng.weibull(self.shapes[rows])
        draws *= self.scales[rows]
        return draws

    def sample_matrix(self, n_cols: int, rng: np.random.Generator) -> np.ndarray:
        """Draw an ``(n_rows, n_cols)`` matrix, each row at its own parameters."""
        draws = rng.weibull(self.shapes[:, None], (self.shapes.size, int(n_cols)))
        draws *= self.scales[:, None]
        return draws

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RowWeibull(n={self.rates.size})"


@dataclass(frozen=True)
class StackedParams:
    """Struct-of-arrays parameter grid, one entry per simulated lifetime.

    Attributes mirror :class:`~repro.core.parameters.AvailabilityParameters`
    field for field, each widened to a length-``n_lifetimes`` array.
    ``n_spares`` is optional: when present it overrides the pool size a
    spare-pool kernel was constructed with, row by row.  The three scheme
    planes (``k_rows``/``repair_threshold_rows``/``check_period_rows``) are
    likewise optional and always travel together: erasure-coded grids carry
    one resolved :class:`~repro.core.policies.base.RedundancyScheme` per
    row, letting one kernel invocation mix ``k``-of-``N`` geometries and
    check periods (``N`` is ``n_disks_rows``).
    """

    disk_failure_rate: np.ndarray
    disk_repair_rate: np.ndarray
    ddf_recovery_rate: np.ndarray
    human_error_rate: np.ndarray
    spare_replacement_rate: np.ndarray
    crash_rate: np.ndarray
    hep: np.ndarray
    failure_shape: np.ndarray
    n_disks_rows: np.ndarray
    n_spares_rows: Optional[np.ndarray] = None
    k_rows: Optional[np.ndarray] = None
    repair_threshold_rows: Optional[np.ndarray] = None
    check_period_rows: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        n = self.disk_failure_rate.shape
        for name in (
            "disk_repair_rate",
            "ddf_recovery_rate",
            "human_error_rate",
            "spare_replacement_rate",
            "crash_rate",
            "hep",
            "failure_shape",
            "n_disks_rows",
        ):
            if getattr(self, name).shape != n:
                raise ConfigurationError(
                    f"stacked field {name!r} does not match the grid length"
                )
        if self.n_spares_rows is not None and self.n_spares_rows.shape != n:
            raise ConfigurationError("stacked n_spares does not match the grid length")
        if np.any(self.n_disks_rows < 2):
            raise ConfigurationError("stacked grids require at least two disks per row")
        if np.any(self.hep < 0.0) or np.any(self.hep > 1.0):
            raise ConfigurationError("stacked hep values must lie in [0, 1]")
        if np.any(self.crash_rate < 0.0):
            raise ConfigurationError("stacked crash rates must be non-negative")
        scheme_planes = (self.k_rows, self.repair_threshold_rows, self.check_period_rows)
        present = [plane is not None for plane in scheme_planes]
        if any(present):
            if not all(present):
                raise ConfigurationError(
                    "stacked scheme planes travel together: k_rows, "
                    "repair_threshold_rows and check_period_rows must all be "
                    "set (or none)"
                )
            for name, _ in SCHEME_PLANE_FIELDS:
                if getattr(self, name).shape != n:
                    raise ConfigurationError(
                        f"stacked field {name!r} does not match the grid length"
                    )
            if np.any(self.k_rows < 1) or np.any(self.k_rows > self.repair_threshold_rows):
                raise ConfigurationError(
                    "stacked schemes need 1 <= k <= repair_threshold per row"
                )
            if np.any(self.repair_threshold_rows > self.n_disks_rows):
                raise ConfigurationError(
                    "stacked schemes need repair_threshold <= n_disks per row"
                )
            if np.any(self.check_period_rows <= 0.0):
                raise ConfigurationError("stacked check periods must be positive")

    @property
    def has_schemes(self) -> bool:
        """Return whether the grid carries per-row redundancy schemes."""
        return self.k_rows is not None

    # ------------------------------------------------------------------
    # AvailabilityParameters-compatible surface (as used by the kernels)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.disk_failure_rate.size)

    @property
    def n_disks(self) -> int:
        """Return the clock-matrix width: the widest geometry in the grid."""
        return int(self.n_disks_rows.max())

    def failure_distribution(self):
        """Return the row-aware per-disk time-to-failure distribution."""
        if np.all(self.failure_shape == 1.0):
            return RowExponential(self.disk_failure_rate)
        return RowWeibull(self.disk_failure_rate, self.failure_shape)

    def repair_distribution(self) -> RowExponential:
        return RowExponential(self.disk_repair_rate)

    def ddf_recovery_distribution(self) -> RowExponential:
        return RowExponential(self.ddf_recovery_rate)

    def human_error_recovery_distribution(self) -> RowExponential:
        return RowExponential(self.human_error_rate)

    def spare_replacement_distribution(self) -> RowExponential:
        return RowExponential(self.spare_replacement_rate)

    def without_human_error(self) -> "StackedParams":
        """Return a copy with every row's ``hep`` forced to zero."""
        return replace(self, hep=np.zeros_like(self.hep))

    # ------------------------------------------------------------------
    # Grid surgery
    # ------------------------------------------------------------------
    def slice(self, start: int, stop: int) -> "StackedParams":
        """Return the contiguous row range ``[start, stop)`` as its own grid."""
        if not 0 <= start < stop <= len(self):
            raise ConfigurationError(
                f"invalid stacked slice [{start}, {stop}) of {len(self)} rows"
            )
        def _cut(plane):
            return None if plane is None else plane[start:stop]

        return StackedParams(
            disk_failure_rate=self.disk_failure_rate[start:stop],
            disk_repair_rate=self.disk_repair_rate[start:stop],
            ddf_recovery_rate=self.ddf_recovery_rate[start:stop],
            human_error_rate=self.human_error_rate[start:stop],
            spare_replacement_rate=self.spare_replacement_rate[start:stop],
            crash_rate=self.crash_rate[start:stop],
            hep=self.hep[start:stop],
            failure_shape=self.failure_shape[start:stop],
            n_disks_rows=self.n_disks_rows[start:stop],
            n_spares_rows=_cut(self.n_spares_rows),
            k_rows=_cut(self.k_rows),
            repair_threshold_rows=_cut(self.repair_threshold_rows),
            check_period_rows=_cut(self.check_period_rows),
        )


def stacked_from_planes(planes: dict) -> StackedParams:
    """Build a grid directly from per-field arrays (views included).

    ``planes`` maps every :data:`STACKED_PLANE_FIELDS` name — plus
    optionally ``n_spares_rows`` — to a length-matched 1-d array.  The
    arrays are adopted as-is, so zero-copy views (row ranges of a
    shared-memory segment, slices of a materialised sweep grid) flow
    straight into the kernels without a repack.
    """
    missing = [name for name, _ in STACKED_PLANE_FIELDS if name not in planes]
    if missing:
        raise ConfigurationError(f"stacked planes missing fields: {missing}")
    return StackedParams(
        **{name: planes[name] for name, _ in STACKED_PLANE_FIELDS},
        n_spares_rows=planes.get(OPTIONAL_PLANE_FIELD[0]),
        **{name: planes.get(name) for name, _ in SCHEME_PLANE_FIELDS},
    )


def stack_parameter_points(
    points: Sequence[AvailabilityParameters],
    counts: Sequence[int],
    n_spares: Optional[Sequence[int]] = None,
    schemes: Optional[Sequence[object]] = None,
) -> StackedParams:
    """Expand per-point scalar parameters into a per-lifetime grid.

    ``points[i]`` contributes ``counts[i]`` consecutive lifetimes; the
    flattened row order is therefore point-major, which is what the
    segmented per-point aggregation in
    :mod:`repro.core.montecarlo.batch` relies on.

    ``schemes`` attaches one periodic redundancy scheme per point
    (:class:`~repro.core.policies.base.RedundancyScheme` instances are
    resolved against their point's geometry), materialising the per-row
    scheme planes the erasure kernel reads — this is how one grid mixes
    ``k``-of-``N`` layouts and check periods.
    """
    if len(points) == 0:
        raise ConfigurationError("stacking requires at least one parameter point")
    if len(counts) != len(points):
        raise ConfigurationError("one lifetime count is required per parameter point")
    reps = np.asarray([int(c) for c in counts], dtype=np.int64)
    if np.any(reps < 1):
        raise ConfigurationError("every stacked point needs at least one lifetime")

    def _field(values, dtype=float) -> np.ndarray:
        return np.repeat(np.asarray(values, dtype=dtype), reps)

    spares = None
    if n_spares is not None:
        if len(n_spares) != len(points):
            raise ConfigurationError("one spare count is required per parameter point")
        spares = _field([int(k) for k in n_spares], dtype=np.int64)
    scheme_planes = {}
    if schemes is not None:
        if len(schemes) != len(points):
            raise ConfigurationError("one scheme is required per parameter point")
        resolved = [
            scheme.resolve(point) if hasattr(scheme, "resolve") else scheme
            for scheme, point in zip(schemes, points)
        ]
        not_periodic = [i for i, r in enumerate(resolved) if not r.is_periodic]
        if not_periodic:
            raise ConfigurationError(
                f"stacked scheme planes need periodic schemes; points "
                f"{not_periodic} have no check period"
            )
        scheme_planes = {
            "k_rows": _field([r.k for r in resolved], dtype=np.int64),
            "repair_threshold_rows": _field(
                [r.repair_threshold for r in resolved], dtype=np.int64
            ),
            "check_period_rows": _field(
                [r.check_period_hours for r in resolved], dtype=np.float64
            ),
        }
    return StackedParams(
        **scheme_planes,
        disk_failure_rate=_field([p.disk_failure_rate for p in points]),
        disk_repair_rate=_field([p.disk_repair_rate for p in points]),
        ddf_recovery_rate=_field([p.ddf_recovery_rate for p in points]),
        human_error_rate=_field([p.human_error_rate for p in points]),
        spare_replacement_rate=_field([p.spare_replacement_rate for p in points]),
        crash_rate=_field([p.crash_rate for p in points]),
        hep=_field([p.hep for p in points]),
        failure_shape=_field([p.failure_shape for p in points]),
        n_disks_rows=_field([p.n_disks for p in points], dtype=np.int64),
        n_spares_rows=spares,
    )
