"""Name-based registry of simulation policies.

The Monte Carlo runner, the experiments and the CLI all resolve policies
through this registry, so adding a new replacement strategy is a matter of
registering a :class:`~repro.core.policies.base.SimulationPolicy` — no
dispatch code changes anywhere else.

The registry accepts three spellings when resolving:

* a plain string name (``"conventional"``),
* a string-valued enum member whose value is the registry key
  (:class:`~repro.human.policy.PolicyKind` resolves this way), and
* an already constructed :class:`SimulationPolicy` (returned unchanged),
  which is how parameterised policies such as a hot-spare pool with a
  custom spare count are passed around without polluting the global table.
"""

from __future__ import annotations

import enum
import importlib
import threading
from typing import Dict, Tuple, Union

from repro.core.policies.base import SimulationPolicy
from repro.exceptions import ConfigurationError
from repro.human.policy import PolicyKind

PolicyRef = Union[str, PolicyKind, SimulationPolicy]

_REGISTRY: Dict[str, SimulationPolicy] = {}
_LOCK = threading.Lock()
#: Separate lock for the lazy builtin load: the builtin modules call
#: register_policy (which takes _LOCK) while being imported, so the load
#: must not hold _LOCK itself.
_LOAD_LOCK = threading.Lock()
_BUILTINS_LOADED = False


def register_policy(policy: SimulationPolicy, replace: bool = False) -> SimulationPolicy:
    """Add ``policy`` to the registry (and return it, for decorator-ish use).

    Registering a name twice is an error unless ``replace=True``; silent
    shadowing of a built-in policy is almost always a bug in caller code.
    """
    if not isinstance(policy, SimulationPolicy):
        raise ConfigurationError(
            f"only SimulationPolicy instances can be registered, got {policy!r}"
        )
    if not policy.name:
        raise ConfigurationError("policy name must be non-empty")
    with _LOCK:
        if policy.name in _REGISTRY and not replace:
            raise ConfigurationError(
                f"policy {policy.name!r} is already registered "
                "(pass replace=True to override)"
            )
        _REGISTRY[policy.name] = policy
    return policy


def unregister_policy(name: str) -> None:
    """Remove a policy by name (no-op when absent); used by tests."""
    with _LOCK:
        _REGISTRY.pop(name, None)


def get_policy(name: str) -> SimulationPolicy:
    """Return the registered policy called ``name``.

    Raises :class:`~repro.exceptions.ConfigurationError` for unknown names,
    listing what is available.
    """
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_policies())
        raise ConfigurationError(
            f"unknown policy {name!r}; registered policies: {known}"
        ) from None


def resolve_policy(ref: PolicyRef) -> SimulationPolicy:
    """Resolve a name, a string-valued enum or a policy instance to a policy.

    String-valued enum members (e.g. ``PolicyKind``) resolve through their
    ``value``, which is the registry key.
    """
    if isinstance(ref, SimulationPolicy):
        return ref
    if isinstance(ref, enum.Enum) and isinstance(ref.value, str):
        return get_policy(ref.value)
    if isinstance(ref, str):
        return get_policy(ref)
    raise ConfigurationError(f"unknown policy kind {ref!r}")


def available_policies() -> Tuple[str, ...]:
    """Return the sorted names of all registered policies."""
    _ensure_builtins()
    with _LOCK:
        return tuple(sorted(_REGISTRY))


def _ensure_builtins() -> None:
    """Import the built-in policy modules exactly once.

    Resolution must work even when a caller imported
    ``repro.core.policies.registry`` directly (the Monte Carlo runner does),
    so the built-ins are loaded lazily here rather than relying on the
    package ``__init__`` having run.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    with _LOAD_LOCK:
        if _BUILTINS_LOADED:
            return
        for module in ("baseline", "conventional", "erasure", "failover", "hotspare"):
            importlib.import_module(f"repro.core.policies.{module}")
        # Only latch once every builtin imported cleanly, so a failed load
        # is retried instead of leaving the registry silently empty.
        _BUILTINS_LOADED = True
