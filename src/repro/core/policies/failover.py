"""The paper's automatic fail-over policy, as a registered policy."""

from __future__ import annotations

import functools

from repro.core.models.raid5_failover import build_failover_chain
from repro.core.montecarlo.simulator import simulate_failover
from repro.core.policies.base import RedundancyScheme, SimulationPolicy
from repro.core.policies.registry import register_policy
from repro.core.policies.vectorized import batch_spare_pool

#: Fig. 3 semantics: one hot spare absorbs the failure via an on-line
#: rebuild; the technician only touches the array afterwards, while it is
#: fully redundant.  The batch kernel is the spare-pool state machine with a
#: pool of exactly one; the analytical face is the paper's Fig. 3 12-state
#: chain.
AUTOMATIC_FAILOVER_POLICY = register_policy(
    SimulationPolicy(
        name="automatic_failover",
        description=(
            "failed disk rebuilds onto a hot spare first; the technician only "
            "touches the fully redundant array afterwards (paper Fig. 3)"
        ),
        scalar=simulate_failover,
        batch=functools.partial(batch_spare_pool, n_spares=1),
        chain=build_failover_chain,
        n_spares=1,
        supports_stacked=True,
        # Continuous repair (the spare absorbs the failure immediately).
        scheme=RedundancyScheme(),
    )
)
