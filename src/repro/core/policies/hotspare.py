"""Hot-spare-pool replacement policy (a new scenario beyond the paper).

The paper stops at a single hot spare (automatic fail-over).  This policy
generalises it to a pool of ``k`` spares: every disk failure that finds a
spare is absorbed by an on-line rebuild with no human involvement, and a
technician visit after each rebuild restocks the *whole* pool in one go
(carrying the same wrong-pull risk as the fail-over policy's replacement
phase, against a fully redundant array).  Only when the pool is empty does a
failure expose the array to the combined human service of the paper's
``EXPns1`` state.

With ``k = 1`` the semantics coincide with the automatic fail-over policy —
the only behavioural difference of larger pools is that failures arriving
during a replacement visit consume further spares instead of exposing the
array, which is exactly why operators provision spare pools.

The scalar simulator below and the vectorised kernel in
:mod:`repro.core.policies.vectorized` implement the same state machine; the
registry test suite checks their availability estimates agree.
"""

from __future__ import annotations

import functools
from typing import Optional

import numpy as np

from repro.core.montecarlo.results import EpisodeTrace, IterationResult
from repro.core.montecarlo.simulator import (
    _ArrayClocks,
    _clip_downtime,
    _exposed_without_spare,
    _sample,
)
from repro.core.parameters import AvailabilityParameters
from repro.core.policies.base import RedundancyScheme, SimulationPolicy
from repro.core.policies.registry import register_policy
from repro.core.policies.vectorized import batch_spare_pool
from repro.exceptions import ConfigurationError, SimulationError
from repro.human.recovery import HumanErrorRecoveryModel

#: Pool size of the pre-registered ``hot_spare_pool`` policy.
DEFAULT_POOL_SIZE = 2


def simulate_hot_spare(
    params: AvailabilityParameters,
    horizon_hours: float,
    rng: np.random.Generator,
    trace: Optional[EpisodeTrace] = None,
    n_spares: int = DEFAULT_POOL_SIZE,
) -> IterationResult:
    """Simulate one lifetime under the hot-spare-pool policy (scalar path)."""
    if horizon_hours <= 0.0:
        raise SimulationError(f"horizon must be positive, got {horizon_hours!r}")
    if int(n_spares) < 1:
        raise ConfigurationError(f"spare pool needs at least one spare, got {n_spares!r}")
    n_spares = int(n_spares)
    n = params.n_disks
    failure_dist = params.failure_distribution()
    rebuild_dist = params.repair_distribution()
    replace_dist = params.spare_replacement_distribution()
    ddf_dist = params.ddf_recovery_distribution()
    recovery = HumanErrorRecoveryModel(
        hep=params.hep,
        recovery_time=params.human_error_recovery_distribution(),
        crash_rate_per_hour=params.crash_rate,
    )
    clocks = _ArrayClocks(n, failure_dist, rng)
    result = IterationResult(horizon_hours=float(horizon_hours))
    now = 0.0
    spares = n_spares

    while True:
        slot, fail_time = clocks.next_failure()
        fail_time = max(fail_time, now)
        if fail_time >= horizon_hours:
            break
        result.disk_failures += 1
        if trace is not None:
            trace.add(fail_time, "disk_failure", slot=slot, spares=spares)

        if spares == 0:
            now, restored = _exposed_without_spare(
                params, clocks, result, recovery, ddf_dist,
                slot, fail_time, horizon_hours, rng, trace,
            )
            spares = n_spares if restored else 0
            continue

        # On-line rebuild onto a spare; no human touches the array.
        rebuild_done = fail_time + _sample(rebuild_dist, rng)
        other_slot, second_fail = clocks.next_failure(exclude=slot)
        second_fail = max(second_fail, fail_time)
        if second_fail < rebuild_done:
            result.disk_failures += 1
            result.dl_events += 1
            restore = _sample(ddf_dist, rng)
            outage_end = second_fail + restore
            result.downtime_hours += _clip_downtime(second_fail, outage_end, horizon_hours)
            if trace is not None:
                trace.add(second_fail, "data_loss", cause="double_disk_failure")
                trace.add(outage_end, "backup_restore_complete", duration=restore)
            clocks.renew_failed_before(outage_end)
            spares = n_spares
            now = outage_end
            continue
        clocks.renew(slot, rebuild_done)
        spares -= 1
        if trace is not None:
            trace.add(rebuild_done, "spare_rebuild_complete", slot=slot, spares=spares)

        # Technician visit restocking the whole pool.
        replace_done = rebuild_done + _sample(replace_dist, rng)
        _, next_fail = clocks.next_failure()
        next_fail = max(next_fail, rebuild_done)
        if next_fail < replace_done and next_fail < horizon_hours:
            # Visit preempted by a new failure; it is handled from scratch
            # (another spare when one is left, the exposed service otherwise).
            now = next_fail
            continue

        if params.hep > 0.0 and rng.random() < params.hep:
            # Wrong pull against the fully redundant array.
            result.human_errors += 1
            wrong_slot = int(rng.integers(n))
            if trace is not None:
                trace.add(replace_done, "human_error", error="wrong_disk_replacement",
                          wrong_slot=wrong_slot, array_state="fully_redundant")
            attempt = recovery.sample_until_recovered(rng)
            recovery_end = replace_done + attempt.duration_hours
            other_slot, second_fail = clocks.next_failure(exclude=wrong_slot)
            second_fail = max(second_fail, replace_done)

            if second_fail < recovery_end and second_fail < horizon_hours:
                result.disk_failures += 1
                result.du_events += 1
                if attempt.disk_crashed:
                    result.dl_events += 1
                    restore = _sample(ddf_dist, rng)
                    outage_end = recovery_end + restore
                    result.downtime_hours += _clip_downtime(second_fail, outage_end, horizon_hours)
                    if trace is not None:
                        trace.add(second_fail, "data_unavailable", cause="failure_during_wrong_pull")
                        trace.add(outage_end, "backup_restore_complete", duration=restore)
                    clocks.renew_failed_before(outage_end)
                    spares = n_spares
                    now = outage_end
                    continue
                result.downtime_hours += _clip_downtime(second_fail, recovery_end, horizon_hours)
                if trace is not None:
                    trace.add(second_fail, "data_unavailable", cause="failure_during_wrong_pull")
                    trace.add(recovery_end, "human_error_recovered")
                now, restored = _exposed_without_spare(
                    params, clocks, result, recovery, ddf_dist,
                    other_slot, recovery_end, horizon_hours, rng, trace,
                    already_counted=True,
                )
                spares = n_spares if restored else 0
                continue
            if attempt.disk_crashed:
                if trace is not None:
                    trace.add(recovery_end, "wrong_pull_crashed", slot=wrong_slot)
                now, restored = _exposed_without_spare(
                    params, clocks, result, recovery, ddf_dist,
                    wrong_slot, recovery_end, horizon_hours, rng, trace,
                    already_counted=True, crashed_slot=True,
                )
                spares = n_spares if restored else 0
                continue
            if trace is not None:
                trace.add(recovery_end, "human_error_recovered")
            spares = n_spares
            now = recovery_end
            continue

        spares = n_spares
        now = replace_done
        if trace is not None:
            trace.add(replace_done, "spare_pool_restocked", spares=spares)

    return result


def hot_spare_policy(n_spares: int = DEFAULT_POOL_SIZE) -> SimulationPolicy:
    """Build a hot-spare-pool policy with a custom pool size.

    The returned policy is *not* registered globally; pass it directly as
    ``MonteCarloConfig(policy=hot_spare_policy(3), ...)`` or register it
    under its own name.
    """
    if int(n_spares) < 1:
        raise ConfigurationError(f"spare pool needs at least one spare, got {n_spares!r}")
    n_spares = int(n_spares)
    return SimulationPolicy(
        name=f"hot_spare_pool_k{n_spares}",
        description=(
            f"pool of {n_spares} hot spares absorbs failures via on-line "
            "rebuilds; technician visits restock the full pool"
        ),
        scalar=functools.partial(simulate_hot_spare, n_spares=n_spares),
        batch=functools.partial(batch_spare_pool, n_spares=n_spares),
        n_spares=n_spares,
        supports_stacked=True,
        scheme=RedundancyScheme(),
    )


#: The registered default pool (k = 2): one spare more than fail-over.
HOT_SPARE_POLICY = register_policy(
    SimulationPolicy(
        name="hot_spare_pool",
        description=(
            f"pool of {DEFAULT_POOL_SIZE} hot spares absorbs failures via "
            "on-line rebuilds; technician visits restock the full pool"
        ),
        scalar=functools.partial(simulate_hot_spare, n_spares=DEFAULT_POOL_SIZE),
        batch=functools.partial(batch_spare_pool, n_spares=DEFAULT_POOL_SIZE),
        n_spares=DEFAULT_POOL_SIZE,
        supports_stacked=True,
        # Continuous repair; the pool only changes who performs it.
        scheme=RedundancyScheme(),
    )
)
