"""The paper's conventional replacement policy, as a registered policy."""

from __future__ import annotations

from repro.core.models.raid5_conventional import build_conventional_chain
from repro.core.montecarlo.simulator import simulate_conventional
from repro.core.policies.base import RedundancyScheme, SimulationPolicy
from repro.core.policies.registry import register_policy
from repro.core.policies.vectorized import batch_conventional

#: Fig. 2 semantics: a technician replaces the failed disk immediately, so a
#: wrong pull hits a degraded array and takes the data offline.  The
#: analytical face is the paper's Fig. 2 four-state chain.
CONVENTIONAL_POLICY = register_policy(
    SimulationPolicy(
        name="conventional",
        description=(
            "technician replaces the failed disk immediately; a wrong pull "
            "hits the degraded array and takes the data offline (paper Fig. 2)"
        ),
        scalar=simulate_conventional,
        batch=batch_conventional,
        chain=build_conventional_chain,
        n_spares=0,
        supports_stacked=True,
        # Continuous repair over the geometry's k-of-N structure: every
        # failure is serviced immediately, no checker period.
        scheme=RedundancyScheme(),
    )
)
