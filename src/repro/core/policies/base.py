"""Policy protocol shared by the simulation kernels and the analytical models.

A *simulation policy* packages the semantics of one disk-replacement
strategy (conventional, automatic fail-over, hot-spare pool, ...) behind up
to three faces:

``scalar``
    Simulate **one** array lifetime with a plain Python event loop.  This is
    the traced/debug path: it can record an
    :class:`~repro.core.montecarlo.results.EpisodeTrace` and its episodes can
    be replayed on the discrete-event
    :class:`~repro.simulation.engine.SimulationEngine`.
``batch``
    Simulate **many** independent lifetimes at once as struct-of-arrays
    numpy batches — all disk-failure clocks, repair durations and
    human-error Bernoulli draws are sampled per batch instead of one Python
    loop iteration at a time.  This is the fast path used by the large
    paper sweeps; it is optional, and policies without a vectorised kernel
    transparently fall back to a scalar loop.
``chain``
    Optional **analytical face**: ``chain(params) -> MarkovChain`` builds the
    policy's CTMC availability model (the paper's Fig. 2/3 chains).  A policy
    with both a simulation face and an analytical face can be evaluated by
    either backend through :func:`repro.core.evaluation.evaluate`, which is
    how the Fig. 4 cross-validation compares the *same* scenario under both.

Policies are looked up by name through :mod:`repro.core.policies.registry`,
so new strategies plug into the Monte Carlo runner, the analytical
evaluation layer, the experiments and the CLI without touching any of them.

This module deliberately imports nothing from :mod:`repro.core.montecarlo`
at module scope; the two packages reference each other and the policy layer
must stay importable from either direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.montecarlo.results import EpisodeTrace, IterationResult
    from repro.core.parameters import AvailabilityParameters
    from repro.markov.chain import MarkovChain
    from repro.simulation.rng import RandomStreams

#: Signature of a scalar (one-lifetime) simulator.
ScalarSimulator = Callable[..., "IterationResult"]

#: Signature of a vectorised batch kernel: ``(params, horizon_hours,
#: n_lifetimes, rng) -> BatchLifetimes``.
BatchKernel = Callable[..., "BatchLifetimes"]

#: Signature of an analytical face: ``(params) -> MarkovChain``.
ChainFactory = Callable[..., "MarkovChain"]


@dataclass(frozen=True)
class RedundancyScheme:
    """How a policy derives availability from redundant shares.

    Every scenario in the registry is an instance of one structure: the
    object stores ``N`` shares, any ``k`` of which suffice to serve data,
    and a repair process restores lost shares — either continuously (a
    technician reacts to each failure, the paper's RAID policies) or on a
    periodic check (a scrubber inspects share counts every
    ``check_period_hours`` and triggers repair when fewer than
    ``repair_threshold`` shares remain, the tahoe-style erasure family).

    All fields are optional: ``None`` means "derive from the parameter
    point's geometry at evaluation time" (see :meth:`resolve`), which keeps
    one scheme instance valid across a whole mixed-geometry sweep grid.

    Attributes
    ----------
    n_shares:
        Total shares ``N``.  ``None`` derives ``geometry.n_disks``; a
        pinned value must match the geometry (the kernels size their clock
        matrices from the geometry, so a mismatch is a configuration
        error, not a silent override).
    k:
        Shares needed to serve data.  ``None`` derives
        ``N - geometry.fault_tolerance``.
    repair_threshold:
        Check-time repair trigger ``R``: a check finding fewer than ``R``
        (but at least ``k``) live shares repairs back to ``N``.  ``None``
        derives ``N`` (always repair missing shares).
    check_period_hours:
        Hours between checks.  ``None`` means continuous repair — the
        scheme is descriptive metadata and the policy's kernels keep their
        own event semantics (this is what the legacy RAID policies declare,
        which is why re-expressing them over schemes is bit-identical by
        construction).
    """

    n_shares: Optional[int] = None
    k: Optional[int] = None
    repair_threshold: Optional[int] = None
    check_period_hours: Optional[float] = None

    @property
    def is_periodic(self) -> bool:
        """Return whether repair happens on a check period (vs continuously)."""
        return self.check_period_hours is not None

    def resolve(self, params: "AvailabilityParameters") -> "ResolvedScheme":
        """Bind the scheme to one parameter point's geometry.

        Fills every ``None`` field from the geometry (``N = n_disks``,
        ``k = N - fault_tolerance``, ``R = N``) and validates the result:
        ``1 <= k <= R <= N`` and a positive check period.
        """
        from repro.exceptions import ConfigurationError

        geometry_n = int(params.geometry.n_disks)
        if self.n_shares is not None and int(self.n_shares) != geometry_n:
            raise ConfigurationError(
                f"scheme pins n_shares={self.n_shares!r} but the geometry "
                f"{params.geometry.label!r} has {geometry_n} disks; build the "
                "point with a matching geometry (RaidGeometry.erasure(k, n))"
            )
        n = geometry_n
        k = int(self.k) if self.k is not None else n - int(params.geometry.fault_tolerance)
        threshold = int(self.repair_threshold) if self.repair_threshold is not None else n
        period = self.check_period_hours
        if not 1 <= k <= threshold <= n:
            raise ConfigurationError(
                f"scheme needs 1 <= k <= repair_threshold <= N, got "
                f"k={k!r}, repair_threshold={threshold!r}, N={n!r}"
            )
        if period is not None and not float(period) > 0.0:
            raise ConfigurationError(
                f"check period must be positive, got {period!r}"
            )
        return ResolvedScheme(
            n_shares=n,
            k=k,
            repair_threshold=threshold,
            check_period_hours=None if period is None else float(period),
        )


@dataclass(frozen=True)
class ResolvedScheme:
    """A :class:`RedundancyScheme` bound to a concrete geometry.

    Every field is filled in; produced by :meth:`RedundancyScheme.resolve`
    and consumed by the erasure kernels and the checker-cycle analytical
    machinery.
    """

    n_shares: int
    k: int
    repair_threshold: int
    check_period_hours: Optional[float]

    @property
    def is_periodic(self) -> bool:
        return self.check_period_hours is not None


@dataclass
class BatchLifetimes:
    """Struct-of-arrays outcome of a batch of simulated lifetimes.

    Each attribute is a length-``n`` array holding one value per lifetime;
    the layout mirrors the fields of
    :class:`~repro.core.montecarlo.results.IterationResult`.

    ``log_weights`` is populated only by importance-sampled (``biasing=``)
    kernel runs: per-lifetime log-likelihood-ratio ``log dP/dQ`` of the
    nominal measure against the biased sampling measure.  ``None`` means the
    batch was drawn from the nominal measure (all weights exactly one).
    """

    horizon_hours: float
    downtime_hours: np.ndarray
    du_events: np.ndarray
    dl_events: np.ndarray
    disk_failures: np.ndarray
    human_errors: np.ndarray
    log_weights: Optional[np.ndarray] = None

    @classmethod
    def zeros(cls, n: int, horizon_hours: float) -> "BatchLifetimes":
        """Return a zero-initialised batch of ``n`` lifetimes."""
        return cls(
            horizon_hours=float(horizon_hours),
            downtime_hours=np.zeros(n, dtype=float),
            du_events=np.zeros(n, dtype=np.int64),
            dl_events=np.zeros(n, dtype=np.int64),
            disk_failures=np.zeros(n, dtype=np.int64),
            human_errors=np.zeros(n, dtype=np.int64),
        )

    def __len__(self) -> int:
        return int(self.downtime_hours.size)

    def availabilities(self) -> np.ndarray:
        """Return the per-lifetime availability (downtime clipped to horizon)."""
        downtime = np.minimum(self.downtime_hours, self.horizon_hours)
        return 1.0 - downtime / self.horizon_hours

    def weights(self) -> Optional[np.ndarray]:
        """Return per-lifetime importance weights, ``None`` on unbiased runs."""
        if self.log_weights is None:
            return None
        return np.exp(self.log_weights)

    def weighted_availabilities(self) -> np.ndarray:
        """Return the per-lifetime *unbiased estimator* of availability.

        For an unbiased batch this is exactly :meth:`availabilities`.  For an
        importance-sampled batch each sample is ``1 - w * (1 - a)``: the
        unavailability is reweighted by the likelihood ratio ``w = dP/dQ``
        while lifetimes with zero downtime contribute exactly ``1.0``
        regardless of their weight, so the estimator's expectation under the
        biased measure equals the nominal availability.
        """
        availabilities = self.availabilities()
        weights = self.weights()
        if weights is None:
            return availabilities
        return 1.0 - weights * (1.0 - availabilities)

    def totals(self) -> Dict[str, float]:
        """Return summed counters in the ``MonteCarloResult.totals`` layout.

        Importance-sampled batches sum likelihood-ratio-weighted counters so
        the totals estimate the nominal-measure expectations.
        """
        weights = self.weights()
        if weights is None:
            return {
                "downtime_hours": float(self.downtime_hours.sum()),
                "du_events": float(self.du_events.sum()),
                "dl_events": float(self.dl_events.sum()),
                "disk_failures": float(self.disk_failures.sum()),
                "human_errors": float(self.human_errors.sum()),
            }
        return {
            "downtime_hours": float(np.dot(weights, self.downtime_hours)),
            "du_events": float(np.dot(weights, self.du_events)),
            "dl_events": float(np.dot(weights, self.dl_events)),
            "disk_failures": float(np.dot(weights, self.disk_failures)),
            "human_errors": float(np.dot(weights, self.human_errors)),
        }

    def to_iteration_results(self) -> List["IterationResult"]:
        """Explode the batch into per-lifetime result objects."""
        from repro.core.montecarlo.results import IterationResult

        return [
            IterationResult(
                horizon_hours=self.horizon_hours,
                downtime_hours=float(self.downtime_hours[i]),
                du_events=int(self.du_events[i]),
                dl_events=int(self.dl_events[i]),
                disk_failures=int(self.disk_failures[i]),
                human_errors=int(self.human_errors[i]),
            )
            for i in range(len(self))
        ]


@dataclass(frozen=True)
class SimulationPolicy:
    """One replacement policy as seen by the simulation kernel.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"conventional"`` or ``"hot_spare_pool"``.
    description:
        One-line human readable summary (shown by ``python -m repro policies``).
    scalar:
        One-lifetime simulator ``(params, horizon_hours, rng, trace=None)``.
    batch:
        Optional vectorised kernel ``(params, horizon_hours, n, rng)``.
    chain:
        Optional analytical face ``(params) -> MarkovChain`` building the
        policy's CTMC availability model.
    n_spares:
        Number of hot spares the policy assumes (0 for conventional).
    supports_stacked:
        Whether the batch kernel accepts a
        :class:`~repro.core.policies.stacked.StackedParams` grid (per-
        lifetime parameter arrays), enabling the stacked-grid sweep engine
        in :mod:`repro.core.montecarlo.batch`.  The built-in kernels do;
        custom kernels must opt in explicitly.
    scheme:
        The policy's :class:`RedundancyScheme`.  Continuous-repair schemes
        (``check_period_hours=None``) are descriptive metadata — the legacy
        RAID policies declare one without their kernels reading it, so the
        re-expression is bit-identical by construction.  Periodic schemes
        switch the analytical face to the checker-cycle solver and
        parameterise the erasure kernels.  Participates in equality (the
        stacked executor requires every point of a grid to share one
        policy, so two policies differing only in scheme must not compare
        equal).
    """

    name: str
    description: str
    scalar: ScalarSimulator = field(compare=False)
    batch: Optional[BatchKernel] = field(compare=False, default=None)
    chain: Optional[ChainFactory] = field(compare=False, default=None)
    n_spares: int = 0
    supports_stacked: bool = False
    scheme: Optional[RedundancyScheme] = None

    @property
    def label(self) -> str:
        """Return a display label for reports."""
        return self.name.replace("_", " ")

    @property
    def has_batch_kernel(self) -> bool:
        """Return whether a vectorised batch kernel is available."""
        return self.batch is not None

    @property
    def has_analytical_model(self) -> bool:
        """Return whether the policy offers an analytical (CTMC) face."""
        return self.chain is not None

    @property
    def can_stack(self) -> bool:
        """Return whether the policy can run stacked parameter grids."""
        return self.batch is not None and self.supports_stacked

    @property
    def has_periodic_checks(self) -> bool:
        """Return whether repair runs on a check period (erasure family)."""
        return self.scheme is not None and self.scheme.is_periodic

    def build_chain(self, params: "AvailabilityParameters") -> "MarkovChain":
        """Build the policy's analytical Markov chain at one parameter point.

        Raises :class:`~repro.exceptions.ConfigurationError` for policies
        without an analytical face (e.g. custom spare-pool variants), so the
        ``"auto"`` evaluation backend can fall back to Monte Carlo instead.
        """
        if self.chain is None:
            from repro.exceptions import ConfigurationError

            raise ConfigurationError(
                f"policy {self.name!r} has no analytical model; evaluate it "
                "with the monte_carlo backend"
            )
        return self.chain(params)

    def simulate(
        self,
        params: "AvailabilityParameters",
        horizon_hours: float,
        rng: np.random.Generator,
        trace: Optional["EpisodeTrace"] = None,
    ) -> "IterationResult":
        """Simulate one lifetime on the scalar (traced/debug) path."""
        return self.scalar(params, horizon_hours, rng, trace=trace)

    def simulate_batch(
        self,
        params: "AvailabilityParameters",
        horizon_hours: float,
        n_lifetimes: int,
        rng: np.random.Generator,
        force_scalar: bool = False,
        biasing: Optional[float] = None,
    ) -> BatchLifetimes:
        """Simulate ``n_lifetimes`` lifetimes, vectorised when possible.

        Policies without a batch kernel fall back to a scalar loop so every
        registered policy supports both execution styles; ``force_scalar``
        requests that loop even when a kernel exists (the sharded executor
        uses it to honour ``executor="scalar"`` configs).  ``biasing``
        requests the kernel's importance-sampled mode; it is forwarded only
        when set so unbiased runs hit the exact historical call and custom
        kernels without the keyword keep working.
        """
        if self.batch is not None and not force_scalar:
            if biasing is not None:
                return self.batch(params, horizon_hours, int(n_lifetimes), rng, biasing=biasing)
            return self.batch(params, horizon_hours, int(n_lifetimes), rng)
        if biasing is not None:
            from repro.exceptions import ConfigurationError

            raise ConfigurationError(
                f"policy {self.name!r} cannot apply failure biasing on the "
                "scalar path; importance sampling requires a batch kernel"
            )
        batch = BatchLifetimes.zeros(int(n_lifetimes), horizon_hours)
        for i in range(int(n_lifetimes)):
            result = self.scalar(params, horizon_hours, rng, trace=None)
            batch.downtime_hours[i] = result.downtime_hours
            batch.du_events[i] = result.du_events
            batch.dl_events[i] = result.dl_events
            batch.disk_failures[i] = result.disk_failures
            batch.human_errors[i] = result.human_errors
        return batch

    def simulate_stacked(
        self,
        stacked_params,
        horizon_hours: float,
        rng: np.random.Generator,
        biasing: Optional[float] = None,
    ) -> BatchLifetimes:
        """Simulate one lifetime per row of a stacked parameter grid.

        One kernel invocation covers the whole grid: every per-study scalar
        (hep, rates, geometry, pool size) is a per-lifetime array inside
        ``stacked_params``.  Raises
        :class:`~repro.exceptions.ConfigurationError` for policies whose
        kernel has not opted into stacked grids.
        """
        if not self.can_stack:
            from repro.exceptions import ConfigurationError

            raise ConfigurationError(
                f"policy {self.name!r} has no stacked-capable batch kernel; "
                "run it point by point instead"
            )
        if biasing is not None:
            return self.batch(
                stacked_params, horizon_hours, len(stacked_params), rng, biasing=biasing
            )
        return self.batch(stacked_params, horizon_hours, len(stacked_params), rng)

    def simulate_shard(
        self,
        params: "AvailabilityParameters",
        horizon_hours: float,
        n_lifetimes: int,
        streams: "RandomStreams",
        force_scalar: bool = False,
        biasing: Optional[float] = None,
    ) -> BatchLifetimes:
        """Simulate one shard of a parallel run from its own stream family.

        A shard owns a whole :class:`~repro.simulation.rng.RandomStreams`
        family (spawned from the master seed at the shard's fixed index) and
        draws through the family's ``"montecarlo"`` stream — the same stream
        name the single-process executors use, so a one-shard run and a
        whole-budget batch run differ only in their position in the spawn
        tree.
        """
        rng = streams.stream("montecarlo")
        return self.simulate_batch(
            params,
            horizon_hours,
            int(n_lifetimes),
            rng,
            force_scalar=force_scalar,
            biasing=biasing,
        )
