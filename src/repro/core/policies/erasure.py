"""Erasure-coded k-of-N policy family with periodic checker/repair cycles.

The paper's RAID policies keep a technician on call: repair starts the
moment a failure is noticed, so availability is governed by an ergodic CTMC.
Distributed erasure-coded stores (the tahoe-lafs lineage) work differently:
``N`` shares are spread across nodes, any ``k`` of them reconstruct the
object, and nobody reacts to individual share losses — instead a *checker*
sweeps the store every ``T`` hours and triggers repair when fewer than a
threshold ``R`` of shares survive.  Repair itself is an operator-assisted
action and carries the paper's human-error probability ``hep``: with
probability ``hep`` the repair run is botched and leaves ``N - 1`` shares
instead of ``N``.

This module provides all three faces of that family:

* :func:`simulate_erasure` — the scalar (traced/debug) event loop;
* :func:`repro.core.policies.vectorized.batch_erasure` — the stacked-capable
  vectorised kernel (re-exported here for convenience);
* :func:`build_erasure_decay_chain` — the between-checks share-decay CTMC
  consumed by the checker-cycle analytical solver in
  :mod:`repro.markov.checker`.

Counter semantics differ slightly from the RAID policies and are worth
stating: ``du_events`` counts *repair activations* (checks that found the
object degraded but alive), ``dl_events`` counts outage onsets (live shares
dropping below ``k``), ``disk_failures`` counts share losses, and
``human_errors`` counts botched repair/restore runs.  ``crash_rate`` and the
``mu_*`` repair rates are not consulted — repair latency *is* the check
period.
"""

from __future__ import annotations

import functools
import math
from typing import Optional, Union

import numpy as np

from repro.core.montecarlo.results import EpisodeTrace, IterationResult
from repro.core.parameters import AvailabilityParameters
from repro.core.policies.base import RedundancyScheme, ResolvedScheme, SimulationPolicy
from repro.core.policies.registry import register_policy
from repro.core.policies.vectorized import batch_erasure
from repro.exceptions import ConfigurationError, SimulationError
from repro.markov.builder import ChainBuilder
from repro.markov.chain import MarkovChain
from repro.markov.checker import DOWN_STATE, share_state_name
from repro.markov.rates import share_failure_label
from repro.markov.validation import validate_chain

#: Default checker period: one month of wall-clock hours (tahoe's default
#: lease/check cadence is monthly; 730 h = 8760 h / 12).
MONTHLY_CHECK_HOURS = 730.0

#: Scheme of the registered default ``erasure`` policy: every structural
#: field derives from the parameter point's geometry (``N = n_disks``,
#: ``k = N - fault_tolerance``, ``R = N``), checked monthly.
DEFAULT_ERASURE_SCHEME = RedundancyScheme(check_period_hours=MONTHLY_CHECK_HOURS)


def _resolve(
    params: AvailabilityParameters,
    scheme: Optional[Union[RedundancyScheme, ResolvedScheme]],
) -> ResolvedScheme:
    if scheme is None:
        scheme = DEFAULT_ERASURE_SCHEME
    resolved = scheme.resolve(params) if isinstance(scheme, RedundancyScheme) else scheme
    if not resolved.is_periodic:
        raise ConfigurationError(
            "the erasure family repairs on a checker schedule; the scheme "
            "must set check_period_hours"
        )
    return resolved


def parse_scheme(
    text: str,
    check_period_hours: float = MONTHLY_CHECK_HOURS,
) -> RedundancyScheme:
    """Parse a ``"k:N"`` or ``"k:N:R"`` scheme spec (the CLI ``--scheme`` form).

    ``R`` defaults to ``N`` (repair any missing share).  The returned scheme
    is fully pinned, so it can also broadcast over hand-built stacked grids.
    """
    parts = str(text).strip().split(":")
    if len(parts) not in (2, 3):
        raise ConfigurationError(
            f"scheme spec must look like 'k:N' or 'k:N:R', got {text!r}"
        )
    try:
        numbers = [int(p) for p in parts]
    except ValueError:
        raise ConfigurationError(
            f"scheme spec must be colon-separated integers, got {text!r}"
        ) from None
    k, n = numbers[0], numbers[1]
    threshold = numbers[2] if len(numbers) == 3 else n
    if not 1 <= k <= threshold <= n:
        raise ConfigurationError(
            f"scheme spec needs 1 <= k <= R <= N, got k={k!r}, R={threshold!r}, N={n!r}"
        )
    if not float(check_period_hours) > 0.0:
        raise ConfigurationError(
            f"check period must be positive, got {check_period_hours!r}"
        )
    return RedundancyScheme(
        n_shares=n,
        k=k,
        repair_threshold=threshold,
        check_period_hours=float(check_period_hours),
    )


# ----------------------------------------------------------------------
# Analytical face: between-checks share-decay chain
# ----------------------------------------------------------------------
def build_erasure_decay_chain(
    params: AvailabilityParameters,
    scheme: Optional[Union[RedundancyScheme, ResolvedScheme]] = None,
) -> MarkovChain:
    """Build the pure-death share-count CTMC of one check period.

    States ``SH{N} .. SH{k}`` (up) and ``DOWN`` (down, absorbing *between*
    checks — the checker-cycle solver applies the repair matrix at check
    instants, so the chain itself has no repair transitions).  From ``s``
    live shares the next loss arrives at rate ``s * lambda``
    (:func:`~repro.markov.rates.share_failure_label` keeps the count
    symbolic-friendly).
    """
    resolved = _resolve(params, scheme)
    n, k = resolved.n_shares, resolved.k
    lam = params.disk_failure_rate
    builder = ChainBuilder(name=f"erasure-{params.geometry.label}")
    for s in range(n, k - 1, -1):
        builder.add_up_state(
            share_state_name(s), description=f"{s} of {n} shares alive"
        )
    builder.add_down_state(DOWN_STATE, description=f"fewer than {k} shares alive")
    for s in range(n, k, -1):
        builder.add_transition(
            share_state_name(s),
            share_state_name(s - 1),
            s * lam,
            label=share_failure_label(s),
        )
    builder.add_transition(
        share_state_name(k), DOWN_STATE, k * lam, label=share_failure_label(k)
    )
    chain = builder.build(validate=False)
    validate_chain(chain, allow_absorbing=True)
    return chain


# ----------------------------------------------------------------------
# Scalar face: one-lifetime event loop (traced/debug reference)
# ----------------------------------------------------------------------
def simulate_erasure(
    params: AvailabilityParameters,
    horizon_hours: float,
    rng: np.random.Generator,
    trace: Optional[EpisodeTrace] = None,
    scheme: Optional[Union[RedundancyScheme, ResolvedScheme]] = None,
) -> IterationResult:
    """Simulate one erasure-coded object lifetime (scalar path).

    The readable reference for ``batch_erasure`` — same event semantics,
    one lifetime at a time, with optional :class:`EpisodeTrace` recording.
    Exponential share decay is tracked through the aggregate next-failure
    clock ``Exp(s * lambda)``, redrawn after every share-count change.
    """
    if horizon_hours <= 0.0:
        raise SimulationError(f"horizon must be positive, got {horizon_hours!r}")
    if params.failure_shape != 1.0:
        raise ConfigurationError(
            "the erasure family requires exponential share failures "
            "(failure_shape == 1); Weibull share decay is not memoryless"
        )
    resolved = _resolve(params, scheme)
    n, k, threshold = resolved.n_shares, resolved.k, resolved.repair_threshold
    period = resolved.check_period_hours
    lam = params.disk_failure_rate
    hep = params.hep
    horizon = float(horizon_hours)
    result = IterationResult(horizon_hours=horizon)

    shares = n
    pending = rng.exponential(1.0) / (shares * lam)
    next_check = period * math.ceil(pending / period)
    down_since = math.inf  # inf = the object is up

    while True:
        event = min(pending, next_check)
        if event >= horizon:
            if math.isfinite(down_since):
                result.downtime_hours += horizon - down_since
            return result

        if pending < next_check:
            # --- share failure ---
            at = pending
            result.disk_failures += 1
            shares -= 1
            if trace is not None:
                trace.add(at, "share_failure", live_shares=shares)
            if shares < k:
                result.dl_events += 1
                down_since = at
                pending = math.inf
                if trace is not None:
                    trace.add(at, "data_loss", cause="below_k", live_shares=shares)
            else:
                pending = at + rng.exponential(1.0) / (shares * lam)
        else:
            # --- checker visit ---
            at = next_check
            is_down = not math.isfinite(pending)
            if is_down or shares < threshold:
                botched = hep > 0.0 and rng.random() < hep
                if is_down:
                    result.downtime_hours += at - down_since
                    down_since = math.inf
                else:
                    result.du_events += 1
                shares = n - 1 if botched else n
                if botched:
                    result.human_errors += 1
                if shares < k:
                    # Botched restore of a k == N scheme: the outage simply
                    # continues until the next check (no second dl_event).
                    down_since = at
                    if trace is not None:
                        trace.add(at, "check_restore", botched=True, still_down=True)
                else:
                    if trace is not None:
                        kind = "check_restore" if is_down else "check_repair"
                        trace.add(at, kind, botched=botched, live_shares=shares)
                    pending = at + rng.exponential(1.0) / (shares * lam)
            next_check = at + period

        # While at or above the repair threshold every check is a no-op, so
        # jump straight to the first check at or after the next failure.
        if math.isfinite(pending) and shares >= threshold:
            next_check = max(next_check, period * math.ceil(pending / period))


# ----------------------------------------------------------------------
# Policy construction and registration
# ----------------------------------------------------------------------
def erasure_policy(
    k: int,
    n: int,
    repair_threshold: Optional[int] = None,
    check_period_hours: float = MONTHLY_CHECK_HOURS,
) -> SimulationPolicy:
    """Build a pinned ``k``-of-``n`` erasure policy.

    ``repair_threshold`` defaults to ``n`` (repair any missing share); the
    checker runs every ``check_period_hours``.  The returned policy is not
    registered globally — pass it directly to ``MonteCarloConfig`` /
    :func:`repro.core.evaluation.evaluate` or register it under its own
    name.  Parameter points must use a matching
    ``RaidGeometry.erasure(k, n)`` geometry.
    """
    k, n = int(k), int(n)
    threshold = n if repair_threshold is None else int(repair_threshold)
    if not 1 <= k <= threshold <= n:
        raise ConfigurationError(
            f"erasure policy needs 1 <= k <= repair_threshold <= N, got "
            f"k={k!r}, repair_threshold={threshold!r}, N={n!r}"
        )
    if not float(check_period_hours) > 0.0:
        raise ConfigurationError(
            f"check period must be positive, got {check_period_hours!r}"
        )
    scheme = RedundancyScheme(
        n_shares=n,
        k=k,
        repair_threshold=threshold,
        check_period_hours=float(check_period_hours),
    )
    return SimulationPolicy(
        name=f"erasure_{k}of{n}",
        description=(
            f"{k}-of-{n} erasure coding; checker every "
            f"{float(check_period_hours):g} h repairs below {threshold} shares"
        ),
        scalar=functools.partial(simulate_erasure, scheme=scheme),
        batch=functools.partial(batch_erasure, scheme=scheme),
        chain=functools.partial(build_erasure_decay_chain, scheme=scheme),
        supports_stacked=True,
        scheme=scheme,
    )


#: The registered default: geometry-derived k-of-N with a monthly checker.
#: ``evaluate(params, policy="erasure")`` works for any geometry — ``N`` and
#: ``k`` come from the point's ``RaidGeometry`` (``RaidGeometry.erasure`` for
#: genuine k-of-N layouts; RAID geometries degenerate to their equivalent
#: share counts).
ERASURE_POLICY = register_policy(
    SimulationPolicy(
        name="erasure",
        description=(
            "geometry-derived k-of-N erasure coding with a monthly checker "
            "(N = n_disks, k = N - fault_tolerance, repair below N shares)"
        ),
        scalar=functools.partial(simulate_erasure, scheme=DEFAULT_ERASURE_SCHEME),
        batch=functools.partial(batch_erasure, scheme=DEFAULT_ERASURE_SCHEME),
        chain=functools.partial(build_erasure_decay_chain, scheme=DEFAULT_ERASURE_SCHEME),
        supports_stacked=True,
        scheme=DEFAULT_ERASURE_SCHEME,
    )
)
