"""Replacement-policy registry, simulation kernels and analytical faces.

The two paper policies (conventional, automatic fail-over), the baseline
human-error-free model and the hot-spare-pool extension are registered here;
the Monte Carlo runner, the analytical evaluation layer, the experiments and
the CLI all dispatch through :func:`resolve_policy`, so new policies plug in
by calling :func:`register_policy` — no runner changes.
"""

from repro.core.policies.base import (
    BatchLifetimes,
    RedundancyScheme,
    ResolvedScheme,
    SimulationPolicy,
)
from repro.core.policies.baseline import BASELINE_POLICY
from repro.core.policies.conventional import CONVENTIONAL_POLICY
from repro.core.policies.erasure import (
    ERASURE_POLICY,
    MONTHLY_CHECK_HOURS,
    build_erasure_decay_chain,
    erasure_policy,
    parse_scheme,
    simulate_erasure,
)
from repro.core.policies.failover import AUTOMATIC_FAILOVER_POLICY
from repro.core.policies.hotspare import (
    DEFAULT_POOL_SIZE,
    HOT_SPARE_POLICY,
    hot_spare_policy,
    simulate_hot_spare,
)
from repro.core.policies.registry import (
    available_policies,
    get_policy,
    register_policy,
    resolve_policy,
    unregister_policy,
)
from repro.core.policies.stacked import (
    StackedParams,
    stack_parameter_points,
)
from repro.core.policies.vectorized import (
    batch_conventional,
    batch_erasure,
    batch_spare_pool,
)

__all__ = [
    "AUTOMATIC_FAILOVER_POLICY",
    "BASELINE_POLICY",
    "BatchLifetimes",
    "CONVENTIONAL_POLICY",
    "DEFAULT_POOL_SIZE",
    "ERASURE_POLICY",
    "HOT_SPARE_POLICY",
    "MONTHLY_CHECK_HOURS",
    "RedundancyScheme",
    "ResolvedScheme",
    "SimulationPolicy",
    "StackedParams",
    "available_policies",
    "batch_conventional",
    "batch_erasure",
    "batch_spare_pool",
    "build_erasure_decay_chain",
    "erasure_policy",
    "get_policy",
    "hot_spare_policy",
    "parse_scheme",
    "register_policy",
    "resolve_policy",
    "simulate_erasure",
    "simulate_hot_spare",
    "stack_parameter_points",
    "unregister_policy",
]
