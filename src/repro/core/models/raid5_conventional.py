"""Markov model of a RAID group with human errors, conventional replacement.

This is the paper's Fig. 2 model.  Four states:

``OP``
    All disks operational.
``EXP``
    One disk failed; the array is degraded but serving data.  A technician
    is working on the replacement.
``DU``
    The technician pulled a *working* disk instead of the failed one (wrong
    disk replacement).  Two disks are now missing, so the data is
    unavailable — but not lost: re-inserting the wrongly pulled disk fully
    recovers the array.
``DL``
    Data loss: either a genuine double disk failure, or the wrongly pulled
    disk crashed while it was out of the array.  The array is restored from
    the backup (tape) at rate ``mu_DDF``.

Transitions (rates per hour)::

    OP  --n*lambda---------------> EXP
    EXP --(n-1)*lambda-----------> DL      second failure during the window
    EXP --hep * mu_DF------------> DU      replacement done, but wrong disk
    EXP --(1-hep) * mu_DF--------> OP      replacement done correctly
    DU  --(1-hep) * mu_he--------> OP      error detected and undone
    DU  --lambda_crash-----------> DL      wrongly pulled disk crashes
    DL  --mu_DDF-----------------> OP      restore from backup

The ``hep * mu_he`` self-loop drawn in the paper's figure (another error
during the recovery keeps the array in ``DU``) has no effect on a CTMC and
is therefore omitted.  The same structure with ``n = 2`` is the paper's
RAID1(1+1) model; any single-fault-tolerant geometry is accepted.
"""

from __future__ import annotations

from repro.core.parameters import AvailabilityParameters
from repro.exceptions import RaidConfigurationError
from repro.markov.builder import ChainBuilder
from repro.markov.chain import MarkovChain
from repro.markov.metrics import AvailabilityResult, steady_state_availability

#: State names of the conventional-replacement model, in declaration order.
CONVENTIONAL_STATES = ("OP", "EXP", "DU", "DL")


def build_conventional_chain(params: AvailabilityParameters) -> MarkovChain:
    """Return the Fig. 2 chain for the given parameter set.

    ``hep = 0`` is allowed and collapses the model to the baseline: the
    ``DU`` state remains in the chain but becomes unreachable-by-rate only
    when ``hep`` is exactly zero, in which case it is dropped to keep the
    chain structurally clean.
    """
    geometry = params.geometry
    if geometry.fault_tolerance != 1:
        raise RaidConfigurationError(
            "the conventional human-error model covers single-fault-tolerant "
            f"geometries (RAID1 mirrors, RAID5); got {geometry.label}"
        )
    n = geometry.n_disks
    lam = params.disk_failure_rate
    mu_df = params.disk_repair_rate
    mu_ddf = params.ddf_recovery_rate
    mu_he = params.human_error_rate
    lam_crash = params.crash_rate
    hep = params.hep
    # Guard against hep values so small that hep * mu underflows to zero,
    # which would leave the DU state in the chain with no way to reach it.
    if hep * mu_df <= 0.0 or hep * mu_he <= 0.0:
        hep = 0.0

    builder = ChainBuilder(name=f"conventional-{geometry.label}-hep={hep:g}")
    builder.add_up_state("OP", description="all disks operational")
    builder.add_up_state(
        "EXP",
        description="one disk failed; technician replacing it",
        tags=("exposed",),
    )
    if hep > 0.0:
        builder.add_down_state(
            "DU",
            description="working disk wrongly pulled; data unavailable",
            tags=("human-error", "unavailable"),
        )
    builder.add_down_state(
        "DL",
        description="data lost (double failure or crashed wrong pull); restoring from backup",
        tags=("data-loss",),
    )

    builder.add_transition("OP", "EXP", n * lam, label="n*lambda")
    builder.add_transition("EXP", "DL", (n - 1) * lam, label="(n-1)*lambda")
    builder.add_transition("EXP", "OP", (1.0 - hep) * mu_df, label="(1-hep)*mu_DF")
    if hep > 0.0:
        builder.add_transition("EXP", "DU", hep * mu_df, label="hep*mu_DF")
        builder.add_transition("DU", "OP", (1.0 - hep) * mu_he, label="(1-hep)*mu_he")
        builder.add_transition("DU", "DL", lam_crash, label="lambda_crash")
    builder.add_transition("DL", "OP", mu_ddf, label="mu_DDF")
    return builder.build()


def conventional_availability(
    params: AvailabilityParameters, method: str = "dense"
) -> AvailabilityResult:
    """Return the steady-state availability of the Fig. 2 model."""
    return steady_state_availability(build_conventional_chain(params), method=method)


def unavailability_breakdown(params: AvailabilityParameters, method: str = "dense") -> dict:
    """Return the split of unavailability between human error and data loss.

    The returned mapping has keys ``"du"`` (probability of sitting in the
    wrong-replacement state), ``"dl"`` (probability of sitting in the
    backup-restore state) and ``"total"``.
    """
    result = conventional_availability(params, method=method)
    du = result.state_probabilities.get("DU", 0.0)
    dl = result.state_probabilities.get("DL", 0.0)
    return {"du": du, "dl": dl, "total": result.unavailability}
