"""Traditional (human-error-free) RAID availability Markov model.

This is the model that the paper argues underestimates downtime: a RAID
group that only fails when redundancy is exhausted by disk failures, with
perfect repair service.  For single-fault-tolerant geometries (RAID1 two-way
mirrors and RAID5) the chain is the classic three-state birth-death model::

    OP --n*lambda--> EXP --(n-1)*lambda--> DL
    EXP --mu_DF--> OP            DL --mu_DDF--> OP

For double-fault-tolerant RAID6 an extra exposed state is inserted.  The
builder is shared with the human-error models so the comparison in
:mod:`repro.core.underestimation` is apples to apples.
"""

from __future__ import annotations

from repro.core.parameters import AvailabilityParameters
from repro.exceptions import RaidConfigurationError
from repro.markov.builder import ChainBuilder
from repro.markov.chain import MarkovChain
from repro.markov.metrics import AvailabilityResult, steady_state_availability


def build_baseline_chain(params: AvailabilityParameters) -> MarkovChain:
    """Return the hep-free availability chain for the configured geometry.

    Supports fault tolerance 1 (RAID1 mirrors, RAID5) and 2 (RAID6).  RAID0
    is rejected: with no redundancy the first failure is already a data-loss
    event and the model degenerates to two states, which the dedicated
    MTTDL helpers in :mod:`repro.availability.mttdl` cover better.
    """
    geometry = params.geometry
    n = geometry.n_disks
    lam = params.disk_failure_rate
    mu_df = params.disk_repair_rate
    mu_ddf = params.ddf_recovery_rate

    if geometry.fault_tolerance == 1:
        builder = ChainBuilder(name=f"baseline-{geometry.label}")
        builder.add_up_state("OP", description="all disks operational")
        builder.add_up_state("EXP", description="one disk failed, array degraded", tags=("exposed",))
        builder.add_down_state("DL", description="double disk failure; restoring from backup", tags=("data-loss",))
        builder.add_transition("OP", "EXP", n * lam, label="n*lambda")
        builder.add_transition("EXP", "OP", mu_df, label="mu_DF")
        builder.add_transition("EXP", "DL", (n - 1) * lam, label="(n-1)*lambda")
        builder.add_transition("DL", "OP", mu_ddf, label="mu_DDF")
        return builder.build()

    if geometry.fault_tolerance == 2:
        builder = ChainBuilder(name=f"baseline-{geometry.label}")
        builder.add_up_state("OP", description="all disks operational")
        builder.add_up_state("EXP1", description="one disk failed", tags=("exposed",))
        builder.add_up_state("EXP2", description="two disks failed", tags=("exposed",))
        builder.add_down_state("DL", description="triple disk failure; restoring from backup", tags=("data-loss",))
        builder.add_transition("OP", "EXP1", n * lam, label="n*lambda")
        builder.add_transition("EXP1", "OP", mu_df, label="mu_DF")
        builder.add_transition("EXP1", "EXP2", (n - 1) * lam, label="(n-1)*lambda")
        builder.add_transition("EXP2", "EXP1", mu_df, label="mu_DF")
        builder.add_transition("EXP2", "DL", (n - 2) * lam, label="(n-2)*lambda")
        builder.add_transition("DL", "OP", mu_ddf, label="mu_DDF")
        return builder.build()

    raise RaidConfigurationError(
        f"baseline model supports fault tolerance 1 or 2, got {geometry.fault_tolerance} "
        f"for {geometry.label}"
    )


def baseline_availability(params: AvailabilityParameters, method: str = "dense") -> AvailabilityResult:
    """Return the steady-state availability of the hep-free model."""
    return steady_state_availability(build_baseline_chain(params), method=method)
