"""Model dispatcher: build the right Markov chain for a (geometry, policy) pair.

The experiments and examples rarely care which module implements a model;
they ask for "RAID5(7+1), conventional policy, hep = 0.01" and want a chain
plus its availability back.  This module provides that dispatch, covering:

* the baseline (hep ignored) model,
* the conventional-replacement human-error model (Fig. 2) for any
  single-fault-tolerant geometry — RAID1 mirrors included, which is how the
  paper evaluates RAID1(1+1), and
* the automatic fail-over model (Fig. 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict

from repro.core.models.baseline import baseline_availability, build_baseline_chain
from repro.core.models.raid5_conventional import (
    build_conventional_chain,
    conventional_availability,
)
from repro.core.models.raid5_failover import build_failover_chain, failover_availability
from repro.core.parameters import AvailabilityParameters
from repro.exceptions import ConfigurationError
from repro.human.policy import PolicyKind
from repro.markov.chain import MarkovChain
from repro.markov.metrics import AvailabilityResult


class ModelKind(enum.Enum):
    """Identifier of the analytical availability models."""

    #: Classic model: human error ignored entirely (hep treated as 0).
    BASELINE = "baseline"
    #: Fig. 2: human error during conventional (immediate) replacement.
    CONVENTIONAL = "conventional"
    #: Fig. 3: human error under the automatic fail-over policy.
    AUTOMATIC_FAILOVER = "automatic_failover"

    @classmethod
    def from_policy(cls, policy: PolicyKind) -> "ModelKind":
        """Map a replacement policy onto the analytical model that captures it."""
        if policy is PolicyKind.CONVENTIONAL:
            return cls.CONVENTIONAL
        if policy is PolicyKind.AUTOMATIC_FAILOVER:
            return cls.AUTOMATIC_FAILOVER
        raise ConfigurationError(f"unknown policy kind {policy!r}")


@dataclass(frozen=True)
class ModelDescriptor:
    """A (parameters, model kind) pair ready to be built and solved."""

    params: AvailabilityParameters
    kind: ModelKind

    def build(self) -> MarkovChain:
        """Return the Markov chain of this model."""
        return build_chain(self.params, self.kind)

    def solve(self, method: str = "dense") -> AvailabilityResult:
        """Return the steady-state availability of this model."""
        return solve_model(self.params, self.kind, method=method)


_BUILDERS: Dict[ModelKind, Callable[[AvailabilityParameters], MarkovChain]] = {
    ModelKind.BASELINE: build_baseline_chain,
    ModelKind.CONVENTIONAL: build_conventional_chain,
    ModelKind.AUTOMATIC_FAILOVER: build_failover_chain,
}

_SOLVERS: Dict[ModelKind, Callable[..., AvailabilityResult]] = {
    ModelKind.BASELINE: baseline_availability,
    ModelKind.CONVENTIONAL: conventional_availability,
    ModelKind.AUTOMATIC_FAILOVER: failover_availability,
}


def build_chain(params: AvailabilityParameters, kind: ModelKind) -> MarkovChain:
    """Return the Markov chain for the requested model kind."""
    try:
        builder = _BUILDERS[kind]
    except KeyError:
        raise ConfigurationError(f"unknown model kind {kind!r}") from None
    if kind is ModelKind.BASELINE:
        return builder(params.without_human_error())
    return builder(params)


def solve_model(
    params: AvailabilityParameters, kind: ModelKind, method: str = "dense"
) -> AvailabilityResult:
    """Return the steady-state availability for the requested model kind."""
    try:
        solver = _SOLVERS[kind]
    except KeyError:
        raise ConfigurationError(f"unknown model kind {kind!r}") from None
    if kind is ModelKind.BASELINE:
        return solver(params.without_human_error(), method=method)
    return solver(params, method=method)


def available_models() -> Dict[str, str]:
    """Return a mapping of model-kind value to a one-line description."""
    return {
        ModelKind.BASELINE.value: "classic availability model, human error ignored",
        ModelKind.CONVENTIONAL.value: "Fig. 2 — human error under conventional replacement",
        ModelKind.AUTOMATIC_FAILOVER.value: "Fig. 3 — human error under automatic fail-over",
    }
