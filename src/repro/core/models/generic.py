"""Deprecated model dispatch, kept as a thin shim over the policy registry.

Historically the analytical models were dispatched through the hardcoded
:class:`ModelKind` enum while Monte Carlo went through the policy registry.
Both now share one front door: every registered policy may carry an
analytical face (``chain(params) -> MarkovChain``) next to its simulation
kernels, and :func:`repro.core.evaluation.evaluate` dispatches by registry
name and backend.

``ModelKind``, ``build_chain`` and ``solve_model`` remain importable so
``examples/`` and external callers keep working mid-transition; the
functions emit one :class:`DeprecationWarning` per process and resolve
through the registry (``ModelKind.CONVENTIONAL`` → the ``"conventional"``
policy's chain face).  New code should call
:func:`repro.core.evaluation.evaluate` /
:func:`repro.core.evaluation.analytical_result` instead.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass
from typing import Dict, Set

from repro.core.parameters import AvailabilityParameters
from repro.core.policies.registry import resolve_policy
from repro.human.policy import PolicyKind
from repro.markov.chain import MarkovChain
from repro.markov.metrics import AvailabilityResult, steady_state_availability


class ModelKind(enum.Enum):
    """Deprecated identifier of the analytical models.

    The enum values are exactly the registry names of the policies carrying
    the corresponding analytical face, so ``ModelKind`` members resolve
    anywhere a policy reference is accepted.
    """

    #: Classic model: human error ignored entirely (hep treated as 0).
    BASELINE = "baseline"
    #: Fig. 2: human error during conventional (immediate) replacement.
    CONVENTIONAL = "conventional"
    #: Fig. 3: human error under the automatic fail-over policy.
    AUTOMATIC_FAILOVER = "automatic_failover"

    @classmethod
    def from_policy(cls, policy: PolicyKind) -> "ModelKind":
        """Map a replacement policy onto the analytical model that captures it."""
        from repro.exceptions import ConfigurationError

        if policy is PolicyKind.CONVENTIONAL:
            return cls.CONVENTIONAL
        if policy is PolicyKind.AUTOMATIC_FAILOVER:
            return cls.AUTOMATIC_FAILOVER
        raise ConfigurationError(f"unknown policy kind {policy!r}")


_WARNED: Set[str] = set()


def _warn_deprecated(name: str) -> None:
    """Emit the migration warning once per symbol per process."""
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(
        f"repro.core.models.generic.{name} is deprecated; policies now carry "
        "their analytical face — use repro.core.evaluation.evaluate(params, "
        "policy, backend=...) or resolve_policy(name).build_chain(params)",
        DeprecationWarning,
        stacklevel=3,
    )


def _reset_deprecation_warnings() -> None:
    """Re-arm the warn-once latches (test helper)."""
    _WARNED.clear()


@dataclass(frozen=True)
class ModelDescriptor:
    """A (parameters, model kind) pair ready to be built and solved."""

    params: AvailabilityParameters
    kind: ModelKind

    def build(self) -> MarkovChain:
        """Return the Markov chain of this model."""
        return build_chain(self.params, self.kind)

    def solve(self, method: str = "dense") -> AvailabilityResult:
        """Return the steady-state availability of this model."""
        return solve_model(self.params, self.kind, method=method)


def build_chain(params: AvailabilityParameters, kind: ModelKind) -> MarkovChain:
    """Deprecated: return the Markov chain for the requested model kind.

    Equivalent to ``resolve_policy(kind).build_chain(params)``.
    """
    _warn_deprecated("build_chain")
    return resolve_policy(kind).build_chain(params)


def solve_model(
    params: AvailabilityParameters, kind: ModelKind, method: str = "dense"
) -> AvailabilityResult:
    """Deprecated: return the steady-state availability for a model kind.

    Equivalent to building the policy's analytical face and summarising it;
    new code should call :func:`repro.core.evaluation.evaluate` (cached,
    backend-selectable) instead.
    """
    _warn_deprecated("solve_model")
    chain = resolve_policy(kind).build_chain(params)
    return steady_state_availability(chain, method=method)


def available_models() -> Dict[str, str]:
    """Return ``{registry name: description}`` of the analytical models."""
    from repro.core.policies.registry import get_policy
    from repro.core.evaluation import analytical_policies

    return {name: get_policy(name).description for name in analytical_policies()}
