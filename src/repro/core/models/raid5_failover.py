"""Markov model of RAID5 with the automatic fail-over (delayed replacement) policy.

This reproduces the paper's Fig. 3 model.  Under automatic fail-over the
array keeps a hot spare; when a disk fails, its contents are first rebuilt
onto the spare *without any human involvement*, and only after that on-line
rebuild completes does a technician replace the dead hardware (restoring the
spare).  Human hands therefore touch the array while it is fully redundant,
so a wrong-disk error merely degrades the array instead of taking the data
offline — this is the structural reason the policy wins roughly two orders
of magnitude of availability at ``hep = 0.01``.

State inventory (12 states, as in the paper's figure)
------------------------------------------------------

Up (data available):

``OP``      all disks operational, hot spare present.
``EXP1``    one disk failed, rebuild onto the hot spare in progress.
``OPns``    all disks operational but no spare (the rebuild consumed it);
            a technician is replacing the dead hardware.
``EXPns1``  one disk failed and no spare available.
``EXPns2``  a working disk was wrongly pulled during the hardware
            replacement (array degraded), no spare.
``EXP2``    as ``EXPns2`` but with a spare available.

Down (data unavailable):

``DUns1``   a failed disk plus a wrongly pulled disk, no spare.
``DUns2``   two wrongly pulled disks outstanding, no spare.
``DU1``     as ``DUns1`` with a spare available.
``DU2``     as ``DUns2`` with a spare available.
``DL``      double disk failure (data loss), spare available.
``DLns``    double disk failure, no spare.

Reconstruction notes
--------------------

The source text of the paper's Fig. 3 is partially garbled, so the
transition set below is reconstructed from the prose of Section IV-B.  Two
transitions are genuinely ambiguous in the prose and are resolved as
follows (both are low-probability corners that do not affect the reported
qualitative results; see DESIGN.md / EXPERIMENTS.md):

* ``EXPns2 -> EXP2`` and ``DUns2 -> DU2`` at rate ``(1-hep)*mu_ch``: the
  dead hardware whose replacement triggered the wrong pull is eventually
  replaced, restoring the spare while the human error is still
  outstanding.  This is the only way the "with spare" mirror states of the
  paper's figure become reachable in the reconstruction.
* ``EXPns1`` offers both recovery paths described in the prose: a
  successful fail-over/rebuild (``(1-hep)*mu_DF`` to ``OPns``) and a
  successful physical replacement (``(1-hep)*mu_ch`` to ``EXP1``); a human
  error in either action leads to ``DUns1`` with the combined rate
  ``hep*(mu_DF + mu_ch)``, exactly as labelled in the figure.
"""

from __future__ import annotations

from typing import Dict

from repro.core.parameters import AvailabilityParameters
from repro.exceptions import RaidConfigurationError
from repro.markov.builder import ChainBuilder
from repro.markov.chain import MarkovChain
from repro.markov.metrics import AvailabilityResult, steady_state_availability

#: State names of the automatic fail-over model, in declaration order.
FAILOVER_STATES = (
    "OP",
    "EXP1",
    "OPns",
    "EXPns1",
    "EXPns2",
    "EXP2",
    "DUns1",
    "DUns2",
    "DU1",
    "DU2",
    "DL",
    "DLns",
)


def build_failover_chain(params: AvailabilityParameters) -> MarkovChain:
    """Return the Fig. 3 chain for the given parameter set.

    With ``hep = 0`` every human-error state becomes unreachable; those
    states are dropped so that validation still sees a clean chain, leaving
    the five-state spare-aware baseline (OP, EXP1, OPns, EXPns1, DL, DLns).
    """
    geometry = params.geometry
    if geometry.fault_tolerance != 1:
        raise RaidConfigurationError(
            "the automatic fail-over model covers single-fault-tolerant "
            f"geometries (RAID1 mirrors, RAID5); got {geometry.label}"
        )
    n = geometry.n_disks
    lam = params.disk_failure_rate
    mu_df = params.disk_repair_rate
    mu_ddf = params.ddf_recovery_rate
    mu_he = params.human_error_rate
    mu_ch = params.spare_replacement_rate
    lam_crash = params.crash_rate
    hep = params.hep
    # Guard against hep values so small that hep * mu underflows to zero,
    # which would leave human-error states in the chain with no inbound rate.
    if min(hep * mu_df, hep * mu_ch, hep * mu_he) <= 0.0:
        hep = 0.0
    ok = 1.0 - hep

    builder = ChainBuilder(name=f"failover-{geometry.label}-hep={hep:g}")

    builder.add_up_state("OP", description="all disks operational, spare present")
    builder.add_up_state("EXP1", description="one disk failed, rebuilding onto hot spare", tags=("exposed",))
    builder.add_up_state("OPns", description="all disks operational, no spare; hardware replacement pending")
    builder.add_up_state("EXPns1", description="one disk failed, no spare", tags=("exposed",))
    if hep > 0.0:
        builder.add_up_state(
            "EXPns2",
            description="working disk wrongly pulled during hardware replacement, no spare",
            tags=("exposed", "human-error"),
        )
        builder.add_up_state(
            "EXP2",
            description="working disk wrongly pulled, spare available",
            tags=("exposed", "human-error"),
        )
        builder.add_down_state(
            "DUns1", description="failed disk + wrongly pulled disk, no spare", tags=("human-error",)
        )
        builder.add_down_state(
            "DUns2", description="two wrongly pulled disks, no spare", tags=("human-error",)
        )
        builder.add_down_state(
            "DU1", description="failed disk + wrongly pulled disk, spare available", tags=("human-error",)
        )
        builder.add_down_state(
            "DU2", description="two wrongly pulled disks, spare available", tags=("human-error",)
        )
    builder.add_down_state("DL", description="double disk failure, spare available", tags=("data-loss",))
    builder.add_down_state("DLns", description="double disk failure, no spare", tags=("data-loss",))

    # --- fully redundant with spare -----------------------------------
    builder.add_transition("OP", "EXP1", n * lam, label="n*lambda")

    # --- rebuild onto the hot spare (no human involvement) -------------
    builder.add_transition("EXP1", "OPns", mu_df, label="mu_DF")
    builder.add_transition("EXP1", "DL", (n - 1) * lam, label="(n-1)*lambda")

    # --- hardware replacement while fully redundant --------------------
    builder.add_transition("OPns", "OP", ok * mu_ch, label="(1-hep)*mu_ch")
    if hep > 0.0:
        builder.add_transition("OPns", "EXPns2", hep * mu_ch, label="hep*mu_ch")
    builder.add_transition("OPns", "EXPns1", n * lam, label="n*lambda")

    # --- failed disk with no spare --------------------------------------
    builder.add_transition("EXPns1", "OPns", ok * mu_df, label="(1-hep)*mu_DF")
    builder.add_transition("EXPns1", "EXP1", ok * mu_ch, label="(1-hep)*mu_ch")
    if hep > 0.0:
        builder.add_transition(
            "EXPns1", "DUns1", hep * (mu_df + mu_ch), label="hep*(mu_DF+mu_ch)"
        )
    builder.add_transition("EXPns1", "DLns", (n - 1) * lam, label="(n-1)*lambda")

    if hep > 0.0:
        # --- wrong pull while fully redundant, no spare -----------------
        builder.add_transition("EXPns2", "OP", ok * mu_he, label="(1-hep)*mu_he")
        builder.add_transition("EXPns2", "DUns2", hep * mu_he, label="hep*mu_he")
        builder.add_transition("EXPns2", "EXPns1", lam_crash, label="lambda_crash")
        builder.add_transition("EXPns2", "DUns1", (n - 1) * lam, label="(n-1)*lambda")
        builder.add_transition("EXPns2", "EXP2", ok * mu_ch, label="(1-hep)*mu_ch")

        # --- wrong pull while fully redundant, spare available ----------
        builder.add_transition("EXP2", "OP", ok * mu_he, label="(1-hep)*mu_he")
        builder.add_transition("EXP2", "DU2", hep * mu_he, label="hep*mu_he")
        builder.add_transition("EXP2", "EXP1", lam_crash, label="lambda_crash")
        builder.add_transition("EXP2", "DU1", (n - 1) * lam, label="(n-1)*lambda")

        # --- data unavailable: failed disk + wrong pull, no spare -------
        builder.add_transition("DUns1", "EXPns1", ok * mu_he, label="(1-hep)*mu_he")
        builder.add_transition("DUns1", "DLns", lam_crash, label="lambda_crash")
        builder.add_transition("DUns1", "OPns", mu_ddf, label="mu_DDF")
        builder.add_transition("DUns1", "DU1", ok * mu_ch, label="(1-hep)*mu_ch")

        # --- data unavailable: two wrong pulls, no spare -----------------
        builder.add_transition("DUns2", "EXPns2", ok * mu_he, label="(1-hep)*mu_he")
        builder.add_transition("DUns2", "DUns1", 2.0 * lam_crash, label="2*lambda_crash")
        builder.add_transition("DUns2", "DU2", ok * mu_ch, label="(1-hep)*mu_ch")

        # --- data unavailable: failed disk + wrong pull, spare available -
        builder.add_transition("DU1", "EXP1", ok * mu_he, label="(1-hep)*mu_he")
        builder.add_transition("DU1", "DL", lam_crash, label="lambda_crash")
        builder.add_transition("DU1", "OP", mu_ddf, label="mu_DDF")

        # --- data unavailable: two wrong pulls, spare available ----------
        builder.add_transition("DU2", "EXP2", ok * mu_he, label="(1-hep)*mu_he")
        builder.add_transition("DU2", "DU1", 2.0 * lam_crash, label="2*lambda_crash")

    # --- data loss ------------------------------------------------------
    builder.add_transition("DL", "OP", mu_ddf, label="mu_DDF")
    builder.add_transition("DLns", "OPns", mu_ddf, label="mu_DDF")
    builder.add_transition("DLns", "DL", ok * mu_ch, label="(1-hep)*mu_ch")

    return builder.build()


def failover_availability(
    params: AvailabilityParameters, method: str = "dense"
) -> AvailabilityResult:
    """Return the steady-state availability of the Fig. 3 model."""
    return steady_state_availability(build_failover_chain(params), method=method)


def unavailability_breakdown(params: AvailabilityParameters, method: str = "dense") -> Dict[str, float]:
    """Return unavailability split into human-error and data-loss states."""
    result = failover_availability(params, method=method)
    human = sum(
        result.state_probabilities.get(name, 0.0)
        for name in ("DUns1", "DUns2", "DU1", "DU2")
    )
    loss = sum(result.state_probabilities.get(name, 0.0) for name in ("DL", "DLns"))
    return {"du": human, "dl": loss, "total": result.unavailability}
