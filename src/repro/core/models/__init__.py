"""Analytical (Markov) availability models of the paper."""

from repro.core.models.baseline import baseline_availability, build_baseline_chain
from repro.core.models.generic import (
    ModelDescriptor,
    ModelKind,
    available_models,
    build_chain,
    solve_model,
)
from repro.core.models.raid5_conventional import (
    CONVENTIONAL_STATES,
    build_conventional_chain,
    conventional_availability,
)
from repro.core.models.raid5_failover import (
    FAILOVER_STATES,
    build_failover_chain,
    failover_availability,
)

__all__ = [
    "CONVENTIONAL_STATES",
    "FAILOVER_STATES",
    "ModelDescriptor",
    "ModelKind",
    "available_models",
    "baseline_availability",
    "build_baseline_chain",
    "build_chain",
    "build_conventional_chain",
    "build_failover_chain",
    "conventional_availability",
    "failover_availability",
    "solve_model",
]
