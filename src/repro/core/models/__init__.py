"""Analytical (Markov) availability models of the paper.

These are the chain *builders* behind the registered policies' analytical
faces.  Dispatch happens through the policy registry: use
:func:`repro.core.evaluation.evaluate` /
:func:`repro.core.evaluation.analytical_result` with a policy name, or
``resolve_policy(name).build_chain(params)`` for the raw chain.
"""

from repro.core.models.baseline import baseline_availability, build_baseline_chain
from repro.core.models.raid5_conventional import (
    CONVENTIONAL_STATES,
    build_conventional_chain,
    conventional_availability,
)
from repro.core.models.raid5_failover import (
    FAILOVER_STATES,
    build_failover_chain,
    failover_availability,
)

__all__ = [
    "CONVENTIONAL_STATES",
    "FAILOVER_STATES",
    "baseline_availability",
    "build_baseline_chain",
    "build_conventional_chain",
    "build_failover_chain",
    "conventional_availability",
    "failover_availability",
]
