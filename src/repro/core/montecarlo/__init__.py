"""Monte Carlo (simulation-based) availability model of the paper.

Policies are resolved by name through :mod:`repro.core.policies`; execution
happens either on the vectorised batch path (:mod:`.batch`) or the scalar
traced path (:mod:`.runner` / :mod:`.engine_bridge`).
"""

from repro.core.montecarlo.batch import (
    POINT_SUMMARY_DTYPE,
    PointSummary,
    run_batch,
    run_batch_lifetimes,
    run_stacked,
    segment_point_records,
    segment_point_summaries,
    summarise_batch,
)
from repro.core.montecarlo.compiled import (
    KERNELS,
    compiled_available,
    has_compiled_face,
    kernel_context,
    resolve_kernel,
)
from repro.core.montecarlo.fused import (
    fused_available,
    has_fused_face,
    run_fused_batch,
    warmup_fused,
)
from repro.core.montecarlo.config import (
    ALLOCATORS,
    DEFAULT_ADAPTIVE_CEILING,
    DEFAULT_HORIZON_HOURS,
    DEFAULT_ITERATIONS,
    EXECUTORS,
    POOLS,
    TRANSPORTS,
    MonteCarloConfig,
)
from repro.core.montecarlo.engine_bridge import (
    replay_trace_on_engine,
    run_traced_on_engine,
)
from repro.core.montecarlo.faults import (
    FAULT_KINDS,
    FAULT_PLAN_ENV,
    FaultInjected,
    FaultPlan,
    ShardFault,
    fault_plan,
)
from repro.core.montecarlo.journal import (
    ShardJournal,
    journal_entropy,
    run_digest,
)
from repro.core.montecarlo.parallel import (
    DEFAULT_SHARD_CAP,
    DEFAULT_STACKED_SHARD_SIZE,
    ShardSummary,
    StackedShard,
    effective_shard_size,
    plan_shards,
    plan_stacked_shards,
    replay_stacked_point,
    run_shard,
    run_sharded,
    run_stacked_shard,
    run_stacked_shard_shm,
    worker_pool,
)
from repro.core.montecarlo.transport import (
    GridPlanesSpec,
    SharedGridPlanes,
    reap_stale_segments,
    resolve_stacked_transport,
    shared_memory_available,
)
from repro.core.montecarlo.results import (
    EpisodeTrace,
    IterationResult,
    MonteCarloResult,
    merge_iteration_counters,
    merge_totals,
)
from repro.core.montecarlo.runner import (
    estimate_availability,
    run_iterations,
    run_monte_carlo,
    run_monte_carlo_with_trace,
    summarise_iterations,
)
from repro.core.montecarlo.simulator import simulate_conventional, simulate_failover
from repro.core.montecarlo.trace import (
    generate_example_trace,
    render_timeline,
    summarise_trace,
)

__all__ = [
    "ALLOCATORS",
    "DEFAULT_ADAPTIVE_CEILING",
    "DEFAULT_HORIZON_HOURS",
    "DEFAULT_SHARD_CAP",
    "DEFAULT_STACKED_SHARD_SIZE",
    "DEFAULT_ITERATIONS",
    "EXECUTORS",
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "KERNELS",
    "POOLS",
    "TRANSPORTS",
    "EpisodeTrace",
    "FaultInjected",
    "FaultPlan",
    "GridPlanesSpec",
    "IterationResult",
    "MonteCarloConfig",
    "MonteCarloResult",
    "POINT_SUMMARY_DTYPE",
    "PointSummary",
    "ShardFault",
    "ShardJournal",
    "ShardSummary",
    "SharedGridPlanes",
    "StackedShard",
    "compiled_available",
    "effective_shard_size",
    "estimate_availability",
    "fault_plan",
    "fused_available",
    "generate_example_trace",
    "has_compiled_face",
    "has_fused_face",
    "journal_entropy",
    "kernel_context",
    "merge_iteration_counters",
    "merge_totals",
    "plan_shards",
    "plan_stacked_shards",
    "reap_stale_segments",
    "render_timeline",
    "run_digest",
    "replay_stacked_point",
    "replay_trace_on_engine",
    "resolve_kernel",
    "resolve_stacked_transport",
    "run_batch",
    "run_batch_lifetimes",
    "run_fused_batch",
    "run_iterations",
    "run_monte_carlo",
    "run_monte_carlo_with_trace",
    "run_shard",
    "run_sharded",
    "run_stacked",
    "run_stacked_shard",
    "run_stacked_shard_shm",
    "run_traced_on_engine",
    "segment_point_records",
    "warmup_fused",
    "segment_point_summaries",
    "shared_memory_available",
    "simulate_conventional",
    "simulate_failover",
    "summarise_batch",
    "summarise_iterations",
    "summarise_trace",
    "worker_pool",
]
