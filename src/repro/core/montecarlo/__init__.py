"""Monte Carlo (simulation-based) availability model of the paper."""

from repro.core.montecarlo.config import (
    DEFAULT_HORIZON_HOURS,
    DEFAULT_ITERATIONS,
    MonteCarloConfig,
)
from repro.core.montecarlo.results import (
    EpisodeTrace,
    IterationResult,
    MonteCarloResult,
    merge_iteration_counters,
)
from repro.core.montecarlo.runner import (
    estimate_availability,
    run_iterations,
    run_monte_carlo,
    run_monte_carlo_with_trace,
    summarise_iterations,
)
from repro.core.montecarlo.simulator import simulate_conventional, simulate_failover
from repro.core.montecarlo.trace import (
    generate_example_trace,
    render_timeline,
    summarise_trace,
)

__all__ = [
    "DEFAULT_HORIZON_HOURS",
    "DEFAULT_ITERATIONS",
    "EpisodeTrace",
    "IterationResult",
    "MonteCarloConfig",
    "MonteCarloResult",
    "estimate_availability",
    "generate_example_trace",
    "merge_iteration_counters",
    "render_timeline",
    "run_iterations",
    "run_monte_carlo",
    "run_monte_carlo_with_trace",
    "simulate_conventional",
    "simulate_failover",
    "summarise_iterations",
    "summarise_trace",
]
