"""Configuration of a Monte Carlo availability study."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.core.parameters import AvailabilityParameters
from repro.core.policies.base import SimulationPolicy
from repro.exceptions import ConfigurationError
from repro.human.policy import PolicyKind

#: Default mission time of one simulated lifetime: ten years of operation.
DEFAULT_HORIZON_HOURS = 10 * 8760.0

#: Default number of simulated lifetimes.  The paper uses 1e6; the default
#: here is sized for interactive use and can be raised per experiment.
DEFAULT_ITERATIONS = 20_000

#: Accepted execution styles: ``"auto"`` picks the vectorised batch path
#: whenever the policy has a kernel and no trace was requested.
EXECUTORS = ("auto", "batch", "scalar")

#: Accepted stacked-grid parameter transports: ``"auto"`` prefers the
#: zero-copy shared-memory planes and falls back to pickling, ``"shm"``
#: demands shared memory, ``"pickle"`` pins the per-shard rebuild path
#: (the bit-identity oracle; also the spawn-only-platform fallback).
#: Re-exported from the transport module, the single source of truth.
from repro.core.montecarlo.transport import TRANSPORTS  # noqa: E402

#: Accepted kernel backends: ``"auto"`` prefers the compiled (numba) row
#: scans when importable and falls back to numpy with a one-time warning,
#: ``"numpy"`` pins the pure-numpy kernels (the bit-identity oracle),
#: ``"compiled"`` demands numba.  Re-exported from the compiled module,
#: the single source of truth (mirrors the TRANSPORTS re-export above).
from repro.core.montecarlo.compiled import KERNELS  # noqa: E402

#: Accepted shard-executor pools: ``"process"`` fans shards out over worker
#: processes (today's default), ``"thread"`` over in-process threads that
#: share the stacked grid planes outright (no segment, no pickling),
#: ``"serial"`` runs the identical shard plan sequentially in-process even
#: with ``workers > 1`` (the pool oracle).  All three are bit-identical:
#: shard decomposition, spawn-indexed draws and CGL merge order are pool
#: independent.
POOLS = ("process", "thread", "serial")

#: Iteration ceiling of an adaptive (``target_half_width``) run when no
#: explicit ``max_iterations`` is configured — the paper's 1e6 setting.
DEFAULT_ADAPTIVE_CEILING = 1_000_000

#: Accepted adaptive-round budget allocators for stacked grids:
#: ``"uniform"`` gives every unmet point the same next-round budget,
#: ``"ci_width"`` sizes each unmet point's round by its own interval gap.
ALLOCATORS = ("uniform", "ci_width")

#: How a policy may be specified: a registry name, a legacy enum member, or
#: a ready :class:`~repro.core.policies.base.SimulationPolicy` instance.
PolicyRef = Union[str, PolicyKind, SimulationPolicy]

#: Sentinel distinguishing "argument not passed" from an explicit ``None``.
_UNSET = object()


@dataclass(frozen=True)
class MonteCarloConfig:
    """Everything needed to run a Monte Carlo availability estimate.

    Attributes
    ----------
    params:
        Rates, probabilities and RAID geometry of the simulated array.
    policy:
        Replacement policy: a registry name (``"conventional"``,
        ``"automatic_failover"``, ``"hot_spare_pool"``, ...), a legacy
        :class:`~repro.human.policy.PolicyKind` member, or a
        :class:`~repro.core.policies.base.SimulationPolicy` instance.
    horizon_hours:
        Mission time of each simulated lifetime.
    n_iterations:
        Number of independent lifetimes to simulate.
    confidence:
        Confidence level of the availability interval (0.99 in the paper).
    seed:
        Master seed for reproducibility; ``None`` draws a fresh seed.
    collect_trace:
        When ``True`` the first iteration records a Fig. 1 style event trace
        (this forces the scalar execution path).
    executor:
        ``"auto"`` (batch whenever the policy has a vectorised kernel and no
        trace is collected), ``"batch"`` or ``"scalar"``.
    workers:
        Number of worker processes for the sharded executor.  ``1`` (the
        default) runs all shards in-process; ``> 1`` fans shards out over a
        process pool.
    shard_size:
        Lifetimes per shard on the sharded path.  ``None`` derives
        ``ceil(round_budget / workers)`` (one shard per worker and round),
        capped at 50k lifetimes per shard
        (:data:`repro.core.montecarlo.parallel.DEFAULT_SHARD_CAP`), which
        ties the decomposition — and therefore the exact random draws — to
        the worker count.  Setting it explicitly pins the decomposition
        instead (no cap applied), making results bit-identical across
        different worker counts.
    target_half_width:
        Adaptive-stopping target: keep dispatching shard rounds until the
        Student-t interval half-width at ``confidence`` drops to this value
        (or ``max_iterations`` is reached).  ``n_iterations`` sizes the
        first round.  ``None`` disables adaptive mode.
    max_iterations:
        Iteration ceiling of an adaptive run; ``None`` uses
        ``DEFAULT_ADAPTIVE_CEILING``.  Ignored without ``target_half_width``.
    transport:
        How a stacked sweep's parameter planes reach the shard workers:
        ``"auto"`` (zero-copy shared-memory planes whenever usable,
        pickling otherwise), ``"shm"`` (demand shared memory; error when
        unavailable) or ``"pickle"`` (per-shard scalar rebuild — the
        retained fallback and bit-identity oracle).  Both transports are
        byte-identical in results; single-point (non-stacked) runs ignore
        the setting because only scalars ever cross the boundary there.
    biasing:
        Failure-biasing factor of the importance-sampled kernels: failure
        rates are inflated by this factor (> 0) and every lifetime carries a
        log-likelihood-ratio weight, so estimates stay unbiased while
        rare-event scenarios resolve with orders of magnitude fewer
        lifetimes.  ``None`` (the default) runs the unbiased kernels on the
        exact historical call path.  Requires a batch kernel (no scalar
        executor, no event traces).
    allocator:
        How adaptive (``target_half_width``) stacked runs split each next
        shard round across grid points: ``"uniform"`` gives every unmet
        point the same budget, ``"ci_width"`` sizes each unmet point's
        budget by its own confidence-interval gap.  Ignored without
        ``target_half_width``; single-point runs have nothing to allocate.
    kernel:
        Which kernel backend the batch path uses: ``"auto"`` (the compiled
        numba row scans when importable, numpy otherwise with a one-time
        warning), ``"numpy"`` (the retained oracle), ``"compiled"`` (demand
        numba; :class:`ConfigurationError` without it) or ``"fused"`` (the
        whole-event-loop nopython kernels of
        :mod:`repro.core.montecarlo.fused`; demands numba or the explicit
        ``REPRO_FUSED_PUREPY=1`` fallback).  ``numpy`` and ``compiled`` are
        bit-identical — the compiled primitives are pure selections over
        the same spawn-indexed Generator draws; ``fused`` owns its draw
        discipline (statistically pinned cross-backend, still bit-identical
        across worker counts and pools within itself) and is never chosen
        by ``"auto"``.
    pool:
        Which executor the sharded path fans shards out over when
        ``workers > 1``: ``"process"`` (worker processes, today's
        behaviour), ``"thread"`` (in-process threads sharing the stacked
        grid planes outright — no segment, no pickling) or ``"serial"``
        (the identical shard plan run sequentially in-process, the pool
        oracle).  Bit-identical across pools and worker counts.
    shard_timeout:
        Seconds the sharded collector waits for the next unfinished shard
        (in plan order) before declaring it hung: the pool is torn down,
        rebuilt, and every unfinished shard resubmitted — counting one
        retry against the timed-out shard.  ``None`` (the default) waits
        forever, today's behaviour.  Not enforceable on the inline
        (``workers=1``/serial) path, where shards run in the caller.
    max_shard_retries:
        How many times a failed shard — in-shard exception, timeout, or a
        worker lost to ``BrokenProcessPool`` — is resubmitted before the
        run gives up and re-raises.  Retried shards recompute bit-identical
        records (the spawn-indexed stream family depends only on the master
        entropy and shard index), so retries never change results.  ``0``
        (the default) keeps the historical fail-fast behaviour.
    retry_backoff:
        Base of the exponential pause between a shard's failure and its
        resubmission: attempt ``k`` sleeps ``retry_backoff * 2**(k-1)``
        seconds.  ``0`` disables the pause.
    checkpoint:
        Path of a shard journal to write (and, when it already exists with
        a matching run digest, to resume): completed shard summaries are
        appended durably as they are collected, and already-journaled
        shards are skipped on restart.  See
        :mod:`repro.core.montecarlo.journal`.
    resume:
        Like ``checkpoint`` but the journal **must** already exist — the
        explicit "continue that killed run" spelling.  Requires a matching
        digest; a ``seed=None`` resume adopts the journaled run's entropy.
    """

    params: AvailabilityParameters = field(default_factory=AvailabilityParameters)
    policy: PolicyRef = PolicyKind.CONVENTIONAL
    horizon_hours: float = DEFAULT_HORIZON_HOURS
    n_iterations: int = DEFAULT_ITERATIONS
    confidence: float = 0.99
    seed: Optional[int] = None
    collect_trace: bool = False
    executor: str = "auto"
    workers: int = 1
    shard_size: Optional[int] = None
    target_half_width: Optional[float] = None
    max_iterations: Optional[int] = None
    transport: str = "auto"
    biasing: Optional[float] = None
    allocator: str = "uniform"
    kernel: str = "auto"
    pool: str = "process"
    shard_timeout: Optional[float] = None
    max_shard_retries: int = 0
    retry_backoff: float = 0.1
    checkpoint: Optional[str] = None
    resume: Optional[str] = None

    def __post_init__(self) -> None:
        if self.horizon_hours <= 0.0:
            raise ConfigurationError(f"horizon must be positive, got {self.horizon_hours!r}")
        if self.n_iterations < 2:
            raise ConfigurationError(
                f"at least two iterations are required, got {self.n_iterations!r}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ConfigurationError(
                f"confidence must lie in (0, 1), got {self.confidence!r}"
            )
        if self.executor not in EXECUTORS:
            raise ConfigurationError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.transport not in TRANSPORTS:
            raise ConfigurationError(
                f"transport must be one of {TRANSPORTS}, got {self.transport!r}"
            )
        if int(self.workers) < 1:
            raise ConfigurationError(f"workers must be at least 1, got {self.workers!r}")
        if self.shard_size is not None and int(self.shard_size) < 1:
            raise ConfigurationError(
                f"shard size must be at least 1, got {self.shard_size!r}"
            )
        if self.target_half_width is not None and self.target_half_width <= 0.0:
            raise ConfigurationError(
                f"target half-width must be positive, got {self.target_half_width!r}"
            )
        if (
            self.target_half_width is not None
            and self.max_iterations is not None
            and self.max_iterations < self.n_iterations
        ):
            # Without a target the ceiling is documented as ignored, so it
            # is deliberately left unvalidated there.
            raise ConfigurationError(
                f"max_iterations ({self.max_iterations!r}) must not be below "
                f"n_iterations ({self.n_iterations!r}); the adaptive ceiling "
                "cannot undercut the first round"
            )
        if self.allocator not in ALLOCATORS:
            raise ConfigurationError(
                f"allocator must be one of {ALLOCATORS}, got {self.allocator!r}"
            )
        if self.kernel not in KERNELS:
            raise ConfigurationError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}"
            )
        if self.pool not in POOLS:
            raise ConfigurationError(f"pool must be one of {POOLS}, got {self.pool!r}")
        if self.kernel in ("compiled", "fused"):
            if self.executor == "scalar":
                raise ConfigurationError(
                    f"kernel={self.kernel!r} accelerates the vectorised batch "
                    "kernels; it cannot be combined with executor='scalar'"
                )
            if self.collect_trace:
                raise ConfigurationError(
                    f"kernel={self.kernel!r} runs on the batch path and "
                    "cannot collect an event trace"
                )
        if self.pool in ("thread", "serial") and self.transport == "shm":
            raise ConfigurationError(
                "transport='shm' crosses a process boundary; thread and "
                "serial pools share the stacked grid planes directly "
                "(use transport='auto')"
            )
        if self.biasing is not None:
            if not float(self.biasing) > 0.0:
                raise ConfigurationError(
                    f"biasing factor must be positive, got {self.biasing!r}"
                )
            if self.executor == "scalar":
                raise ConfigurationError(
                    "failure biasing requires the vectorised batch kernels; "
                    "it cannot be combined with executor='scalar'"
                )
            if self.collect_trace:
                raise ConfigurationError(
                    "failure biasing runs on the batch path and cannot "
                    "collect an event trace"
                )
        if self.shard_timeout is not None and not float(self.shard_timeout) > 0.0:
            raise ConfigurationError(
                f"shard timeout must be positive, got {self.shard_timeout!r}"
            )
        if int(self.max_shard_retries) < 0:
            raise ConfigurationError(
                f"max_shard_retries must be non-negative, got {self.max_shard_retries!r}"
            )
        if float(self.retry_backoff) < 0.0:
            raise ConfigurationError(
                f"retry_backoff must be non-negative, got {self.retry_backoff!r}"
            )
        if self.checkpoint is not None and self.resume is not None:
            raise ConfigurationError(
                "checkpoint= and resume= name the same journal mechanism; "
                "pass one of them (resume requires the file to exist, "
                "checkpoint creates it)"
            )
        if self.collect_trace and self.uses_sharded_path:
            raise ConfigurationError(
                "event traces require the single-process scalar path; "
                "collect_trace cannot be combined with workers > 1, "
                "shard_size or target_half_width"
            )

    @property
    def uses_sharded_path(self) -> bool:
        """Return whether this config runs on the sharded parallel executor."""
        return (
            int(self.workers) > 1
            or self.shard_size is not None
            or self.target_half_width is not None
        )

    @property
    def journal_path(self) -> Optional[str]:
        """Return the configured journal path (``resume`` wins), if any."""
        return self.resume if self.resume is not None else self.checkpoint

    @property
    def adaptive_ceiling(self) -> int:
        """Return the iteration ceiling of an adaptive run."""
        if self.max_iterations is not None:
            return int(self.max_iterations)
        return max(DEFAULT_ADAPTIVE_CEILING, int(self.n_iterations))

    @property
    def policy_name(self) -> str:
        """Return the registry name of the configured policy."""
        if isinstance(self.policy, SimulationPolicy):
            return self.policy.name
        if isinstance(self.policy, PolicyKind):
            return self.policy.value
        return str(self.policy)

    def with_iterations(self, n_iterations: int) -> "MonteCarloConfig":
        """Return a copy with a different iteration count."""
        return replace(self, n_iterations=int(n_iterations))

    def with_policy(self, policy: PolicyRef) -> "MonteCarloConfig":
        """Return a copy with a different replacement policy."""
        return replace(self, policy=policy)

    def with_executor(self, executor: str) -> "MonteCarloConfig":
        """Return a copy with a different execution style."""
        return replace(self, executor=str(executor))

    def with_workers(self, workers: int, shard_size=_UNSET) -> "MonteCarloConfig":
        """Return a copy configured for the sharded executor.

        A pinned ``shard_size`` is preserved unless explicitly overridden
        (pass ``None`` to unpin), so changing the worker count never
        silently changes the shard decomposition of a reference config.
        """
        return replace(
            self,
            workers=int(workers),
            shard_size=self.shard_size if shard_size is _UNSET else shard_size,
        )

    def with_target_half_width(
        self, target_half_width: float, max_iterations=_UNSET
    ) -> "MonteCarloConfig":
        """Return a copy that stops adaptively at the given interval width.

        A pinned ``max_iterations`` ceiling is preserved unless explicitly
        overridden (pass ``None`` to restore the default ceiling).
        """
        return replace(
            self,
            target_half_width=float(target_half_width),
            max_iterations=self.max_iterations if max_iterations is _UNSET else max_iterations,
        )

    def with_biasing(self, biasing: Optional[float]) -> "MonteCarloConfig":
        """Return a copy with a different failure-biasing factor."""
        return replace(self, biasing=None if biasing is None else float(biasing))

    def with_allocator(self, allocator: str) -> "MonteCarloConfig":
        """Return a copy with a different adaptive-round budget allocator."""
        return replace(self, allocator=str(allocator))

    def with_params(self, params: AvailabilityParameters) -> "MonteCarloConfig":
        """Return a copy with a different parameter set."""
        return replace(self, params=params)

    def with_transport(self, transport: str) -> "MonteCarloConfig":
        """Return a copy with a different stacked-grid parameter transport."""
        return replace(self, transport=str(transport))

    def with_kernel(self, kernel: str) -> "MonteCarloConfig":
        """Return a copy with a different kernel backend."""
        return replace(self, kernel=str(kernel))

    def with_pool(self, pool: str) -> "MonteCarloConfig":
        """Return a copy with a different shard-executor pool."""
        return replace(self, pool=str(pool))

    def with_retries(
        self,
        max_shard_retries: int,
        shard_timeout=_UNSET,
        retry_backoff=_UNSET,
    ) -> "MonteCarloConfig":
        """Return a copy with different shard retry/timeout settings."""
        return replace(
            self,
            max_shard_retries=int(max_shard_retries),
            shard_timeout=self.shard_timeout if shard_timeout is _UNSET else shard_timeout,
            retry_backoff=self.retry_backoff if retry_backoff is _UNSET else retry_backoff,
        )

    def with_journal(
        self, checkpoint: Optional[str] = None, resume: Optional[str] = None
    ) -> "MonteCarloConfig":
        """Return a copy with a checkpoint/resume journal path."""
        return replace(self, checkpoint=checkpoint, resume=resume)

    def with_seed(self, seed: int) -> "MonteCarloConfig":
        """Return a copy with a fixed master seed."""
        return replace(self, seed=int(seed))

    def label(self) -> str:
        """Return a short description used in result tables."""
        return (
            f"{self.params.geometry.label} {self.policy_name} "
            f"lambda={self.params.disk_failure_rate:g} hep={self.params.hep:g}"
        )
