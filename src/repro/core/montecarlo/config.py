"""Configuration of a Monte Carlo availability study."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.parameters import AvailabilityParameters
from repro.exceptions import ConfigurationError
from repro.human.policy import PolicyKind

#: Default mission time of one simulated lifetime: ten years of operation.
DEFAULT_HORIZON_HOURS = 10 * 8760.0

#: Default number of simulated lifetimes.  The paper uses 1e6; the default
#: here is sized for interactive use and can be raised per experiment.
DEFAULT_ITERATIONS = 20_000


@dataclass(frozen=True)
class MonteCarloConfig:
    """Everything needed to run a Monte Carlo availability estimate.

    Attributes
    ----------
    params:
        Rates, probabilities and RAID geometry of the simulated array.
    policy:
        Replacement policy (conventional or automatic fail-over).
    horizon_hours:
        Mission time of each simulated lifetime.
    n_iterations:
        Number of independent lifetimes to simulate.
    confidence:
        Confidence level of the availability interval (0.99 in the paper).
    seed:
        Master seed for reproducibility; ``None`` draws a fresh seed.
    collect_trace:
        When ``True`` the first iteration records a Fig. 1 style event trace.
    """

    params: AvailabilityParameters = field(default_factory=AvailabilityParameters)
    policy: PolicyKind = PolicyKind.CONVENTIONAL
    horizon_hours: float = DEFAULT_HORIZON_HOURS
    n_iterations: int = DEFAULT_ITERATIONS
    confidence: float = 0.99
    seed: Optional[int] = None
    collect_trace: bool = False

    def __post_init__(self) -> None:
        if self.horizon_hours <= 0.0:
            raise ConfigurationError(f"horizon must be positive, got {self.horizon_hours!r}")
        if self.n_iterations < 2:
            raise ConfigurationError(
                f"at least two iterations are required, got {self.n_iterations!r}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ConfigurationError(
                f"confidence must lie in (0, 1), got {self.confidence!r}"
            )

    def with_iterations(self, n_iterations: int) -> "MonteCarloConfig":
        """Return a copy with a different iteration count."""
        return replace(self, n_iterations=int(n_iterations))

    def with_policy(self, policy: PolicyKind) -> "MonteCarloConfig":
        """Return a copy with a different replacement policy."""
        return replace(self, policy=policy)

    def with_params(self, params: AvailabilityParameters) -> "MonteCarloConfig":
        """Return a copy with a different parameter set."""
        return replace(self, params=params)

    def with_seed(self, seed: int) -> "MonteCarloConfig":
        """Return a copy with a fixed master seed."""
        return replace(self, seed=int(seed))

    def label(self) -> str:
        """Return a short description used in result tables."""
        return (
            f"{self.params.geometry.label} {self.policy.value} "
            f"lambda={self.params.disk_failure_rate:g} hep={self.params.hep:g}"
        )
