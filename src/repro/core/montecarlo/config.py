"""Configuration of a Monte Carlo availability study."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.core.parameters import AvailabilityParameters
from repro.core.policies.base import SimulationPolicy
from repro.exceptions import ConfigurationError
from repro.human.policy import PolicyKind

#: Default mission time of one simulated lifetime: ten years of operation.
DEFAULT_HORIZON_HOURS = 10 * 8760.0

#: Default number of simulated lifetimes.  The paper uses 1e6; the default
#: here is sized for interactive use and can be raised per experiment.
DEFAULT_ITERATIONS = 20_000

#: Accepted execution styles: ``"auto"`` picks the vectorised batch path
#: whenever the policy has a kernel and no trace was requested.
EXECUTORS = ("auto", "batch", "scalar")

#: How a policy may be specified: a registry name, a legacy enum member, or
#: a ready :class:`~repro.core.policies.base.SimulationPolicy` instance.
PolicyRef = Union[str, PolicyKind, SimulationPolicy]


@dataclass(frozen=True)
class MonteCarloConfig:
    """Everything needed to run a Monte Carlo availability estimate.

    Attributes
    ----------
    params:
        Rates, probabilities and RAID geometry of the simulated array.
    policy:
        Replacement policy: a registry name (``"conventional"``,
        ``"automatic_failover"``, ``"hot_spare_pool"``, ...), a legacy
        :class:`~repro.human.policy.PolicyKind` member, or a
        :class:`~repro.core.policies.base.SimulationPolicy` instance.
    horizon_hours:
        Mission time of each simulated lifetime.
    n_iterations:
        Number of independent lifetimes to simulate.
    confidence:
        Confidence level of the availability interval (0.99 in the paper).
    seed:
        Master seed for reproducibility; ``None`` draws a fresh seed.
    collect_trace:
        When ``True`` the first iteration records a Fig. 1 style event trace
        (this forces the scalar execution path).
    executor:
        ``"auto"`` (batch whenever the policy has a vectorised kernel and no
        trace is collected), ``"batch"`` or ``"scalar"``.
    """

    params: AvailabilityParameters = field(default_factory=AvailabilityParameters)
    policy: PolicyRef = PolicyKind.CONVENTIONAL
    horizon_hours: float = DEFAULT_HORIZON_HOURS
    n_iterations: int = DEFAULT_ITERATIONS
    confidence: float = 0.99
    seed: Optional[int] = None
    collect_trace: bool = False
    executor: str = "auto"

    def __post_init__(self) -> None:
        if self.horizon_hours <= 0.0:
            raise ConfigurationError(f"horizon must be positive, got {self.horizon_hours!r}")
        if self.n_iterations < 2:
            raise ConfigurationError(
                f"at least two iterations are required, got {self.n_iterations!r}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ConfigurationError(
                f"confidence must lie in (0, 1), got {self.confidence!r}"
            )
        if self.executor not in EXECUTORS:
            raise ConfigurationError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )

    @property
    def policy_name(self) -> str:
        """Return the registry name of the configured policy."""
        if isinstance(self.policy, SimulationPolicy):
            return self.policy.name
        if isinstance(self.policy, PolicyKind):
            return self.policy.value
        return str(self.policy)

    def with_iterations(self, n_iterations: int) -> "MonteCarloConfig":
        """Return a copy with a different iteration count."""
        return replace(self, n_iterations=int(n_iterations))

    def with_policy(self, policy: PolicyRef) -> "MonteCarloConfig":
        """Return a copy with a different replacement policy."""
        return replace(self, policy=policy)

    def with_executor(self, executor: str) -> "MonteCarloConfig":
        """Return a copy with a different execution style."""
        return replace(self, executor=str(executor))

    def with_params(self, params: AvailabilityParameters) -> "MonteCarloConfig":
        """Return a copy with a different parameter set."""
        return replace(self, params=params)

    def with_seed(self, seed: int) -> "MonteCarloConfig":
        """Return a copy with a fixed master seed."""
        return replace(self, seed=int(seed))

    def label(self) -> str:
        """Return a short description used in result tables."""
        return (
            f"{self.params.geometry.label} {self.policy_name} "
            f"lambda={self.params.disk_failure_rate:g} hep={self.params.hep:g}"
        )
