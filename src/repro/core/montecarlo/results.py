"""Result containers for the Monte Carlo availability model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.availability.metrics import availability_to_nines
from repro.simulation.confidence import ConfidenceInterval


@dataclass
class IterationResult:
    """Outcome of one simulated array lifetime.

    Attributes
    ----------
    horizon_hours:
        Simulated mission time.
    downtime_hours:
        Total time the array data was unavailable (DU episodes plus backup
        restores after data loss).
    du_events:
        Number of data-unavailability episodes caused by human error.
    dl_events:
        Number of data-loss episodes (double failures or crashed wrong pulls)
        requiring a backup restore.
    disk_failures:
        Number of hard disk failures observed.
    human_errors:
        Number of wrong disk replacements committed.
    """

    horizon_hours: float
    downtime_hours: float = 0.0
    du_events: int = 0
    dl_events: int = 0
    disk_failures: int = 0
    human_errors: int = 0

    @property
    def availability(self) -> float:
        """Return the availability of this single run."""
        if self.horizon_hours <= 0.0:
            return 1.0
        downtime = min(self.downtime_hours, self.horizon_hours)
        return 1.0 - downtime / self.horizon_hours

    @property
    def uptime_hours(self) -> float:
        """Return the uptime of this single run in hours."""
        return self.horizon_hours - min(self.downtime_hours, self.horizon_hours)


@dataclass
class MonteCarloResult:
    """Aggregated outcome of a Monte Carlo availability study.

    Attributes
    ----------
    availability:
        Point estimate of the long-run availability (mean over iterations,
        each iteration weighted equally as in the paper's estimator).
    interval:
        Student-t confidence interval of the availability at the configured
        confidence level.
    n_iterations:
        Number of simulated lifetimes.
    horizon_hours:
        Mission time of each lifetime.
    totals:
        Summed event counters across iterations (``disk_failures``,
        ``human_errors``, ``du_events``, ``dl_events``, ``downtime_hours``).
    label:
        Free-form description of the scenario (used by reports).
    seed_entropy:
        The resolved master entropy of the run's random streams.  For
        ``seed=None`` runs this is the freshly drawn OS entropy, so any run
        can be replayed exactly by passing it back as the seed.
    ess:
        Kish's effective sample size of an importance-sampled run
        (``None`` for unbiased runs, where it would equal ``n_iterations``).
    analytical_reference:
        Availability of the policy's analytical (CTMC) face at the same
        parameter point, populated when an importance-sampled evaluation has
        a dual-face policy available — the free control variate of the
        rare-event engine.
    retried_shards:
        How many shard attempts failed (crash, timeout, lost worker) and
        were resubmitted by the fault-tolerant executor.  Retried shards
        recompute bit-identical records, so a non-zero count is provenance,
        not a caveat.  On a stacked grid the counter describes the whole
        run and is carried by the first point's result (the other points
        report 0), so sums over a sweep total the run once.
    resumed_shards:
        How many shards were skipped because a checkpoint journal already
        held their (bit-identical) records.  Carried like
        ``retried_shards`` on stacked grids.
    interrupted:
        ``True`` when the run was cut short (``KeyboardInterrupt``/SIGTERM)
        and this is a *partial* result covering only the shards collected
        before the interrupt.  Interrupted runs with a checkpoint journal
        can be resumed to completion.
    """

    availability: float
    interval: ConfidenceInterval
    n_iterations: int
    horizon_hours: float
    totals: Dict[str, float] = field(default_factory=dict)
    label: str = ""
    seed_entropy: Optional[int] = None
    ess: Optional[float] = None
    analytical_reference: Optional[float] = None
    retried_shards: int = 0
    resumed_shards: int = 0
    interrupted: bool = False

    @property
    def unavailability(self) -> float:
        """Return ``1 - availability``."""
        return 1.0 - self.availability

    @property
    def nines(self) -> float:
        """Return the availability expressed as a number of nines."""
        return availability_to_nines(self.availability)

    @property
    def nines_interval(self) -> tuple:
        """Return (low, high) nines corresponding to the availability CI.

        The lower availability bound gives the lower nines bound.  Bounds are
        clipped into ``[0, 1]`` before conversion because a Student-t
        interval on a probability can numerically exceed 1.
        """
        low = min(max(self.interval.lower, 0.0), 1.0)
        high = min(max(self.interval.upper, 0.0), 1.0)
        return (availability_to_nines(low), availability_to_nines(high))

    def contains_availability(self, value: float) -> bool:
        """Return whether ``value`` lies inside the availability CI.

        This is the acceptance test the paper applies in Fig. 4: the Markov
        prediction must fall inside the Monte Carlo error interval.
        """
        return self.interval.contains(value)

    def mean_downtime_hours_per_run(self) -> float:
        """Return the average downtime per simulated lifetime."""
        if self.n_iterations == 0:
            return 0.0
        return self.totals.get("downtime_hours", 0.0) / self.n_iterations

    def as_dict(self) -> Dict[str, object]:
        """Return a JSON-serialisable summary."""
        return {
            "label": self.label,
            "availability": self.availability,
            "unavailability": self.unavailability,
            "nines": self.nines,
            "ci_low": self.interval.lower,
            "ci_high": self.interval.upper,
            "confidence": self.interval.confidence,
            "n_iterations": self.n_iterations,
            "horizon_hours": self.horizon_hours,
            "totals": dict(self.totals),
            "seed_entropy": self.seed_entropy,
            "ess": self.ess,
            "analytical_reference": self.analytical_reference,
            "retried_shards": self.retried_shards,
            "resumed_shards": self.resumed_shards,
            "interrupted": self.interrupted,
        }


#: Counter keys every totals mapping carries (the fields of
#: :class:`IterationResult` that sum across lifetimes).
TOTAL_KEYS = ("downtime_hours", "du_events", "dl_events", "disk_failures", "human_errors")


def empty_totals() -> Dict[str, float]:
    """Return a zeroed totals mapping."""
    return {key: 0.0 for key in TOTAL_KEYS}


def merge_totals(parts: Iterable[Dict[str, float]]) -> Dict[str, float]:
    """Sum several totals mappings (e.g. per-shard summaries) into one."""
    totals = empty_totals()
    for part in parts:
        for key, value in part.items():
            totals[key] = totals.get(key, 0.0) + float(value)
    return totals


def merge_iteration_counters(iterations: List[IterationResult]) -> Dict[str, float]:
    """Sum per-iteration counters into a totals mapping."""
    totals = empty_totals()
    for iteration in iterations:
        totals["downtime_hours"] += iteration.downtime_hours
        totals["du_events"] += iteration.du_events
        totals["dl_events"] += iteration.dl_events
        totals["disk_failures"] += iteration.disk_failures
        totals["human_errors"] += iteration.human_errors
    return totals


@dataclass
class EpisodeTrace:
    """Optional per-episode trace of a single run (the paper's Fig. 1 view)."""

    records: List = field(default_factory=list)

    def add(self, time: float, kind: str, **detail: object) -> None:
        """Append one trace record."""
        from repro.simulation.events import TraceRecord

        self.records.append(TraceRecord(time=float(time), kind=kind, detail=dict(detail)))

    def render(self) -> str:
        """Return the trace as readable text, one event per line."""
        return "\n".join(record.describe() for record in self.records)

    def kinds(self) -> List[str]:
        """Return the event kinds in order of occurrence."""
        return [record.kind for record in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


Trace = Optional[EpisodeTrace]
