"""Vectorised batch execution of a Monte Carlo availability study.

Where :mod:`repro.core.montecarlo.runner` walks one Python event loop per
lifetime, this executor hands the whole iteration budget to the policy's
struct-of-arrays numpy kernel (see :mod:`repro.core.policies.vectorized`)
and summarises the per-lifetime availabilities with the same Student-t
interval as the scalar path.  Policies without a vectorised kernel fall
back to a scalar loop inside :meth:`SimulationPolicy.simulate_batch`, so
``run_batch`` works for every registered policy.

Multi-process execution lives one layer up in
:mod:`repro.core.montecarlo.parallel`, which splits the budget into shards
and runs each shard through the same kernels used here.

**Stacked grids.**  :func:`run_stacked` takes one config per sweep point and
runs the whole ``points x lifetimes`` grid through the policy's stacked
batch kernel: per-study scalars become per-lifetime broadcast arrays (see
:mod:`repro.core.policies.stacked`), so an entire parameter sweep costs a
handful of kernel invocations instead of one full study per point.
Per-point results come back from one segmented aggregation
(``np.add.reduceat``-style moments per point,
:func:`segment_point_summaries`); the flattened axis is sharded by
:mod:`repro.core.montecarlo.parallel` with the same spawn-indexed stream
discipline as single-point runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.montecarlo.compiled import kernel_context, resolve_kernel
from repro.core.montecarlo.config import MonteCarloConfig
from repro.core.montecarlo.fused import run_fused_batch
from repro.core.montecarlo.results import MonteCarloResult
from repro.core.policies.base import BatchLifetimes
from repro.core.policies.registry import resolve_policy
from repro.exceptions import ConfigurationError
from repro.simulation.confidence import (
    StreamingMoments,
    confidence_interval,
    segmented_moments,
)
from repro.simulation.rng import RandomStreams


def run_batch_lifetimes(
    config: MonteCarloConfig, streams: Optional[RandomStreams] = None
) -> BatchLifetimes:
    """Run all configured lifetimes through the batch kernel, raw results.

    ``streams`` lets a caller supply an externally seeded stream family
    (e.g. a shard's spawned child); ``None`` builds one from ``config.seed``.
    """
    policy = resolve_policy(config.policy)
    if streams is None:
        streams = RandomStreams(config.seed)
    if resolve_kernel(config.kernel) == "fused":
        return run_fused_batch(
            policy,
            config.params,
            config.horizon_hours,
            config.n_iterations,
            streams,
            biasing=config.biasing,
        )
    rng = streams.stream("montecarlo")
    with kernel_context(config.kernel):
        return policy.simulate_batch(
            config.params,
            config.horizon_hours,
            config.n_iterations,
            rng,
            biasing=config.biasing,
        )


def summarise_batch(
    batch: BatchLifetimes,
    config: MonteCarloConfig,
    seed_entropy: Optional[int] = None,
) -> MonteCarloResult:
    """Aggregate a batch into a :class:`MonteCarloResult`."""
    # Same up-front check (and error type) as the scalar path's
    # summarise_iterations — a too-small batch must not surface as a
    # SimulationError from deep inside the interval computation.
    if len(batch) < 2:
        raise ConfigurationError("at least two iterations are required to summarise")
    availabilities = batch.weighted_availabilities()
    interval = confidence_interval(availabilities, confidence=config.confidence)
    ess = None
    weights = batch.weights()
    if weights is not None:
        moments = StreamingMoments.from_samples(availabilities, weights=weights)
        ess = moments.ess()
    return MonteCarloResult(
        availability=float(availabilities.mean()),
        interval=interval,
        n_iterations=len(batch),
        horizon_hours=config.horizon_hours,
        totals=batch.totals(),
        label=config.label(),
        seed_entropy=seed_entropy,
        ess=ess,
    )


def run_batch(config: MonteCarloConfig) -> MonteCarloResult:
    """Run the configured study on the vectorised path and summarise it."""
    streams = RandomStreams(config.seed)
    batch = run_batch_lifetimes(config, streams=streams)
    return summarise_batch(batch, config, seed_entropy=streams.seed_entropy)


# ----------------------------------------------------------------------
# Stacked grids: one kernel invocation for many sweep points
# ----------------------------------------------------------------------
#: Fixed-width record of one sweep point's rows within a shard: the shard
#: summary wire format of the stacked executor.  One row per point the
#: shard intersects — mergeable moments (``n``/``mean``/``m2``) plus the
#: event totals — so a whole shard's outcome crosses the process boundary
#: as one small structured array instead of a list of per-point dicts.
POINT_SUMMARY_DTYPE = np.dtype(
    [
        ("point", np.int64),
        ("n", np.int64),
        ("mean", np.float64),
        ("m2", np.float64),
        ("w_sum", np.float64),
        ("w2_sum", np.float64),
        ("downtime_hours", np.float64),
        ("du_events", np.float64),
        ("dl_events", np.float64),
        ("disk_failures", np.float64),
        ("human_errors", np.float64),
    ]
)

#: The event-counter fields of :data:`POINT_SUMMARY_DTYPE`, in the
#: ``MonteCarloResult.totals`` key order.
POINT_SUMMARY_TOTAL_FIELDS = (
    "downtime_hours",
    "du_events",
    "dl_events",
    "disk_failures",
    "human_errors",
)


def segment_point_records(
    batch: BatchLifetimes,
    point_indices: Sequence[int],
    counts: Sequence[int],
) -> np.ndarray:
    """Aggregate a point-major batch into a :data:`POINT_SUMMARY_DTYPE` array.

    ``counts[i]`` consecutive lifetimes of ``batch`` belong to sweep point
    ``point_indices[i]``.  The per-segment moments use the same two-pass
    arithmetic as :func:`segment_point_summaries` (numerically identical
    triples), and the totals are the same ``np.add.reduceat`` sums — only
    the container changes, from per-point dicts to one record array the
    parent merges with array ops.
    """
    if len(point_indices) != len(counts):
        raise ConfigurationError("one point index is required per segment")
    weights = batch.weights()
    moments = segmented_moments(batch.weighted_availabilities(), counts, weights=weights)
    sizes = np.asarray(list(counts), dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    records = np.zeros(len(moments), dtype=POINT_SUMMARY_DTYPE)
    records["point"] = np.asarray(list(point_indices), dtype=np.int64)
    records["n"] = sizes
    records["mean"] = [moment.mean for moment in moments]
    records["m2"] = [moment.m2 for moment in moments]
    records["w_sum"] = [moment.w_sum for moment in moments]
    records["w2_sum"] = [moment.w2_sum for moment in moments]
    for key in POINT_SUMMARY_TOTAL_FIELDS:
        values = getattr(batch, key)
        if weights is not None:
            values = weights * values
        records[key] = np.add.reduceat(values, offsets)
    return records


@dataclass(frozen=True)
class PointSummary:
    """Constant-size outcome of one sweep point's rows within a shard.

    Attributes
    ----------
    point_index:
        Index of the sweep point in the stacked config list.
    moments:
        Mergeable mean/variance of the rows' availabilities.
    totals:
        Summed event counters of the rows (``MonteCarloResult.totals``
        layout).
    """

    point_index: int
    moments: StreamingMoments
    totals: Dict[str, float]


def segment_point_summaries(
    batch: BatchLifetimes,
    point_indices: Sequence[int],
    counts: Sequence[int],
) -> List[PointSummary]:
    """Aggregate a point-major batch into per-point summaries.

    ``counts[i]`` consecutive lifetimes of ``batch`` belong to sweep point
    ``point_indices[i]``.  One segmented pass (``np.add.reduceat``) computes
    every point's moments and event totals — no per-point Python loop over
    samples.
    """
    if len(point_indices) != len(counts):
        raise ConfigurationError("one point index is required per segment")
    weights = batch.weights()
    moments = segmented_moments(batch.weighted_availabilities(), counts, weights=weights)
    sizes = np.asarray(list(counts), dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))

    def _column(values: np.ndarray) -> np.ndarray:
        if weights is not None:
            values = weights * values
        return np.add.reduceat(values, offsets)

    columns = {
        "downtime_hours": _column(batch.downtime_hours),
        "du_events": _column(batch.du_events),
        "dl_events": _column(batch.dl_events),
        "disk_failures": _column(batch.disk_failures),
        "human_errors": _column(batch.human_errors),
    }
    return [
        PointSummary(
            point_index=int(point),
            moments=moment,
            totals={key: float(values[row]) for key, values in columns.items()},
        )
        for row, (point, moment) in enumerate(zip(point_indices, moments))
    ]


def run_stacked(
    configs: Sequence[MonteCarloConfig],
    *,
    crn: bool = False,
    pool=None,
) -> List[MonteCarloResult]:
    """Run one Monte Carlo study per config as a single stacked grid.

    All configs must share policy, horizon, confidence, seed and executor;
    their parameter points and iteration counts form the grid.  The
    flattened ``point x lifetime`` axis is cut into fixed-size shards whose
    stream families are spawned at the shard index (worker-count
    independent), so ``workers=N`` is bit-identical to ``workers=1`` and
    every point can be replayed from the master seed alone
    (:func:`repro.core.montecarlo.parallel.replay_stacked_point`).

    ``crn=True`` enables **common random numbers**: shards then never cross
    point boundaries and every point reuses the *same* within-point stream
    indices, so all points consume identical base streams — the opt-in
    variance-reduction mode for policy/parameter contrasts.

    Returns one :class:`MonteCarloResult` per config, in config order.
    """
    from repro.core.montecarlo.parallel import run_stacked_sharded

    return run_stacked_sharded(configs, crn=crn, pool=pool)
