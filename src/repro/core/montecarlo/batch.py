"""Vectorised batch execution of a Monte Carlo availability study.

Where :mod:`repro.core.montecarlo.runner` walks one Python event loop per
lifetime, this executor hands the whole iteration budget to the policy's
struct-of-arrays numpy kernel (see :mod:`repro.core.policies.vectorized`)
and summarises the per-lifetime availabilities with the same Student-t
interval as the scalar path.  Policies without a vectorised kernel fall
back to a scalar loop inside :meth:`SimulationPolicy.simulate_batch`, so
``run_batch`` works for every registered policy.

Multi-process execution lives one layer up in
:mod:`repro.core.montecarlo.parallel`, which splits the budget into shards
and runs each shard through the same kernels used here.
"""

from __future__ import annotations

from typing import Optional

from repro.core.montecarlo.config import MonteCarloConfig
from repro.core.montecarlo.results import MonteCarloResult
from repro.core.policies.base import BatchLifetimes
from repro.core.policies.registry import resolve_policy
from repro.exceptions import ConfigurationError
from repro.simulation.confidence import confidence_interval
from repro.simulation.rng import RandomStreams


def run_batch_lifetimes(
    config: MonteCarloConfig, streams: Optional[RandomStreams] = None
) -> BatchLifetimes:
    """Run all configured lifetimes through the batch kernel, raw results.

    ``streams`` lets a caller supply an externally seeded stream family
    (e.g. a shard's spawned child); ``None`` builds one from ``config.seed``.
    """
    policy = resolve_policy(config.policy)
    if streams is None:
        streams = RandomStreams(config.seed)
    rng = streams.stream("montecarlo")
    return policy.simulate_batch(
        config.params, config.horizon_hours, config.n_iterations, rng
    )


def summarise_batch(
    batch: BatchLifetimes,
    config: MonteCarloConfig,
    seed_entropy: Optional[int] = None,
) -> MonteCarloResult:
    """Aggregate a batch into a :class:`MonteCarloResult`."""
    # Same up-front check (and error type) as the scalar path's
    # summarise_iterations — a too-small batch must not surface as a
    # SimulationError from deep inside the interval computation.
    if len(batch) < 2:
        raise ConfigurationError("at least two iterations are required to summarise")
    availabilities = batch.availabilities()
    interval = confidence_interval(availabilities, confidence=config.confidence)
    return MonteCarloResult(
        availability=float(availabilities.mean()),
        interval=interval,
        n_iterations=len(batch),
        horizon_hours=config.horizon_hours,
        totals=batch.totals(),
        label=config.label(),
        seed_entropy=seed_entropy,
    )


def run_batch(config: MonteCarloConfig) -> MonteCarloResult:
    """Run the configured study on the vectorised path and summarise it."""
    streams = RandomStreams(config.seed)
    batch = run_batch_lifetimes(config, streams=streams)
    return summarise_batch(batch, config, seed_entropy=streams.seed_entropy)
