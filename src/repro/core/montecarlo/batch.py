"""Vectorised batch execution of a Monte Carlo availability study.

Where :mod:`repro.core.montecarlo.runner` walks one Python event loop per
lifetime, this executor hands the whole iteration budget to the policy's
struct-of-arrays numpy kernel (see :mod:`repro.core.policies.vectorized`)
and summarises the per-lifetime availabilities with the same Student-t
interval as the scalar path.  Policies without a vectorised kernel fall
back to a scalar loop inside :meth:`SimulationPolicy.simulate_batch`, so
``run_batch`` works for every registered policy.
"""

from __future__ import annotations

from repro.core.montecarlo.config import MonteCarloConfig
from repro.core.montecarlo.results import MonteCarloResult
from repro.core.policies.base import BatchLifetimes
from repro.core.policies.registry import resolve_policy
from repro.simulation.confidence import confidence_interval
from repro.simulation.rng import RandomStreams


def run_batch_lifetimes(config: MonteCarloConfig) -> BatchLifetimes:
    """Run all configured lifetimes through the batch kernel, raw results."""
    policy = resolve_policy(config.policy)
    streams = RandomStreams(config.seed)
    rng = streams.stream("montecarlo")
    return policy.simulate_batch(
        config.params, config.horizon_hours, config.n_iterations, rng
    )


def summarise_batch(batch: BatchLifetimes, config: MonteCarloConfig) -> MonteCarloResult:
    """Aggregate a batch into a :class:`MonteCarloResult`."""
    availabilities = batch.availabilities()
    interval = confidence_interval(availabilities, confidence=config.confidence)
    return MonteCarloResult(
        availability=float(availabilities.mean()),
        interval=interval,
        n_iterations=len(batch),
        horizon_hours=config.horizon_hours,
        totals=batch.totals(),
        label=config.label(),
    )


def run_batch(config: MonteCarloConfig) -> MonteCarloResult:
    """Run the configured study on the vectorised path and summarise it."""
    return summarise_batch(run_batch_lifetimes(config), config)
