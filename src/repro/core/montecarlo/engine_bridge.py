"""Bridge between scalar episode traces and the discrete-event engine.

The scalar simulators emit :class:`EpisodeTrace` records as they walk a
lifetime.  This module replays such a trace on a
:class:`~repro.simulation.engine.SimulationEngine`: every record becomes a
scheduled event, the engine pops them in time order (validating that the
episode semantics never step backwards in time) and re-records them through
its own tracing facility.  The result is an engine whose clock, event
counters and :class:`~repro.simulation.events.TraceRecord` list describe the
lifetime — the glue that makes the scalar path the *traced/debug* twin of
the vectorised batch executor.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.montecarlo.config import MonteCarloConfig
from repro.core.montecarlo.results import EpisodeTrace, MonteCarloResult
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import ScheduledEvent


def replay_trace_on_engine(
    trace: EpisodeTrace, horizon_hours: Optional[float] = None
) -> SimulationEngine:
    """Replay ``trace`` on a fresh engine and return it after the run.

    Each trace record is scheduled at its episode time with a callback that
    re-records it through :meth:`SimulationEngine.record`, so the returned
    engine carries the full trace in engine form (``engine.trace``) and an
    event count equal to the number of records.  Scalar simulators record
    episode *ends* at unclipped times, so the tail of the final episode may
    lie past the horizon; those records are replayed too (the engine runs
    unbounded), and the clock is only advanced to ``horizon_hours`` when the
    trace ends short of it.
    """
    engine = SimulationEngine()
    engine.enable_trace()
    for record in trace:
        def _replay(event: ScheduledEvent, _record=record) -> None:
            engine.record(_record.kind, subject=_record.subject, **_record.detail)

        engine.schedule_at(record.time, name=record.kind, callback=_replay)
    engine.run()
    if horizon_hours is not None and engine.now < horizon_hours:
        engine.run(until=horizon_hours)
    return engine


def run_traced_on_engine(
    config: MonteCarloConfig,
) -> Tuple[MonteCarloResult, EpisodeTrace, SimulationEngine]:
    """Run a scalar study, then replay its first lifetime on the engine.

    Returns ``(result, trace, engine)`` — the debugging bundle: aggregate
    numbers, the raw episode trace, and the engine replay of that trace.
    """
    from repro.core.montecarlo.runner import run_monte_carlo_with_trace

    result, trace = run_monte_carlo_with_trace(config)
    engine = replay_trace_on_engine(trace, horizon_hours=config.horizon_hours)
    return result, trace, engine
