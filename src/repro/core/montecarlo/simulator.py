"""Event-driven Monte Carlo simulation of one RAID group's lifetime.

This is the paper's reference model (Section III): disk failure events are
drawn from the configured time-to-failure distribution (exponential or
Weibull), repair and recovery durations from their distributions, and human
error events are attached to each replacement with probability ``hep``.  The
simulator walks the events in time order and accumulates downtime from

* **DU episodes** — a wrong disk replacement takes the data offline until
  the error is detected and undone, and
* **DL episodes** — a double disk failure (or a wrongly pulled disk crashing
  while out of the array) destroys the array contents, which are then
  restored from the backup.

Two policies are provided here.  ``simulate_conventional`` follows the
paper's Fig. 2 semantics exactly.  ``simulate_failover`` mirrors the Fig. 3
automatic fail-over policy; its rare-corner handling (multiple concurrent
human errors) is slightly simplified relative to the full Markov model, as
documented in DESIGN.md — the dominant availability paths are identical.

These scalar simulators are the readable reference semantics and the
traced/debug path.  They are registered (together with further policies
such as the hot-spare pool) in :mod:`repro.core.policies`, whose vectorised
kernels in :mod:`repro.core.policies.vectorized` mirror them
struct-of-arrays style for the fast batch execution path.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.montecarlo.results import EpisodeTrace, IterationResult
from repro.core.parameters import AvailabilityParameters
from repro.exceptions import SimulationError
from repro.human.recovery import HumanErrorRecoveryModel


def _sample(dist, rng: np.random.Generator) -> float:
    return float(dist.sample(1, rng)[0])


def _clip_downtime(start: float, end: float, horizon: float) -> float:
    """Return the portion of ``[start, end]`` that falls inside the horizon."""
    return max(0.0, min(end, horizon) - min(start, horizon))


class _ArrayClocks:
    """Per-slot absolute failure times for one RAID group."""

    def __init__(self, n_disks: int, failure_dist, rng: np.random.Generator) -> None:
        self._dist = failure_dist
        self._rng = rng
        self.times = np.asarray(failure_dist.sample(n_disks, rng), dtype=float)

    def next_failure(self, exclude: Optional[int] = None) -> tuple:
        """Return ``(slot, time)`` of the earliest pending failure."""
        times = self.times
        if exclude is None:
            slot = int(np.argmin(times))
            return slot, float(times[slot])
        masked = times.copy()
        masked[exclude] = math.inf
        slot = int(np.argmin(masked))
        return slot, float(masked[slot])

    def renew(self, slot: int, at_time: float) -> None:
        """Install a fresh disk in ``slot`` at ``at_time``."""
        self.times[slot] = at_time + _sample(self._dist, self._rng)

    def renew_failed_before(self, time: float) -> int:
        """Renew every slot whose failure time is before ``time``.

        Used after a backup restore: every disk that failed during the
        outage has been replaced by the time the restore completes.  Returns
        the number of slots renewed.
        """
        renewed = 0
        for slot in range(self.times.size):
            if self.times[slot] <= time:
                self.renew(slot, time)
                renewed += 1
        return renewed


def simulate_conventional(
    params: AvailabilityParameters,
    horizon_hours: float,
    rng: np.random.Generator,
    trace: Optional[EpisodeTrace] = None,
) -> IterationResult:
    """Simulate one lifetime under the conventional replacement policy."""
    if horizon_hours <= 0.0:
        raise SimulationError(f"horizon must be positive, got {horizon_hours!r}")
    n = params.n_disks
    failure_dist = params.failure_distribution()
    repair_dist = params.repair_distribution()
    ddf_dist = params.ddf_recovery_distribution()
    recovery = HumanErrorRecoveryModel(
        hep=params.hep,
        recovery_time=params.human_error_recovery_distribution(),
        crash_rate_per_hour=params.crash_rate,
    )
    clocks = _ArrayClocks(n, failure_dist, rng)
    result = IterationResult(horizon_hours=float(horizon_hours))
    now = 0.0

    while True:
        slot, fail_time = clocks.next_failure()
        # A failure "scheduled" inside a previous episode manifests as soon
        # as the episode is over.
        fail_time = max(fail_time, now)
        if fail_time >= horizon_hours:
            break
        result.disk_failures += 1
        if trace is not None:
            trace.add(fail_time, "disk_failure", slot=slot)

        repair_duration = _sample(repair_dist, rng)
        repair_done = fail_time + repair_duration
        other_slot, second_fail = clocks.next_failure(exclude=slot)
        second_fail = max(second_fail, fail_time)

        if second_fail < repair_done:
            # Double disk failure: data loss, restore from backup.
            result.disk_failures += 1
            result.dl_events += 1
            restore = _sample(ddf_dist, rng)
            outage_end = second_fail + restore
            result.downtime_hours += _clip_downtime(second_fail, outage_end, horizon_hours)
            if trace is not None:
                trace.add(second_fail, "disk_failure", slot=other_slot)
                trace.add(second_fail, "data_loss", cause="double_disk_failure")
                trace.add(outage_end, "backup_restore_complete", duration=restore)
            clocks.renew_failed_before(outage_end)
            now = outage_end
            continue

        if params.hep > 0.0 and rng.random() < params.hep:
            # Wrong disk replacement at the end of the service action.
            result.human_errors += 1
            result.du_events += 1
            wrong_slot = _pick_other_slot(rng, n, slot)
            attempt = recovery.sample_until_recovered(rng)
            outage_end = repair_done + attempt.duration_hours
            if trace is not None:
                trace.add(repair_done, "human_error", error="wrong_disk_replacement",
                          wrong_slot=wrong_slot)
            if attempt.disk_crashed:
                # The wrongly pulled disk died while out of the array: the
                # unavailability escalates to a data loss.
                result.dl_events += 1
                restore = _sample(ddf_dist, rng)
                outage_end += restore
                if trace is not None:
                    trace.add(outage_end - restore, "data_loss", cause="wrong_pull_crashed")
                    trace.add(outage_end, "backup_restore_complete", duration=restore)
                clocks.renew(wrong_slot, outage_end)
            else:
                if trace is not None:
                    trace.add(outage_end, "human_error_recovered")
            result.downtime_hours += _clip_downtime(repair_done, outage_end, horizon_hours)
            clocks.renew(slot, outage_end)
            clocks.renew_failed_before(outage_end)
            now = outage_end
            continue

        # Successful replacement and rebuild.
        clocks.renew(slot, repair_done)
        if trace is not None:
            trace.add(repair_done, "rebuild_complete", slot=slot, duration=repair_duration)
        now = repair_done

    return result


def simulate_failover(
    params: AvailabilityParameters,
    horizon_hours: float,
    rng: np.random.Generator,
    trace: Optional[EpisodeTrace] = None,
) -> IterationResult:
    """Simulate one lifetime under the automatic fail-over policy.

    The array keeps one hot spare.  A failed disk is first rebuilt onto the
    spare without human involvement; the dead hardware is replaced afterwards
    (restoring the spare), and only that replacement can suffer a human
    error.  A wrong pull therefore leaves the array degraded-but-up unless a
    further failure, crash or second error hits before it is undone.
    """
    if horizon_hours <= 0.0:
        raise SimulationError(f"horizon must be positive, got {horizon_hours!r}")
    n = params.n_disks
    failure_dist = params.failure_distribution()
    rebuild_dist = params.repair_distribution()
    replace_dist = params.spare_replacement_distribution()
    ddf_dist = params.ddf_recovery_distribution()
    recovery = HumanErrorRecoveryModel(
        hep=params.hep,
        recovery_time=params.human_error_recovery_distribution(),
        crash_rate_per_hour=params.crash_rate,
    )
    clocks = _ArrayClocks(n, failure_dist, rng)
    result = IterationResult(horizon_hours=float(horizon_hours))
    now = 0.0
    spare_available = True

    while True:
        slot, fail_time = clocks.next_failure()
        fail_time = max(fail_time, now)
        if fail_time >= horizon_hours:
            break
        result.disk_failures += 1
        if trace is not None:
            trace.add(fail_time, "disk_failure", slot=slot, spare_available=spare_available)

        if spare_available:
            # On-line rebuild onto the hot spare; no human touches the array.
            rebuild_done = fail_time + _sample(rebuild_dist, rng)
            other_slot, second_fail = clocks.next_failure(exclude=slot)
            second_fail = max(second_fail, fail_time)
            if second_fail < rebuild_done:
                result.disk_failures += 1
                result.dl_events += 1
                restore = _sample(ddf_dist, rng)
                outage_end = second_fail + restore
                result.downtime_hours += _clip_downtime(second_fail, outage_end, horizon_hours)
                if trace is not None:
                    trace.add(second_fail, "data_loss", cause="double_disk_failure")
                    trace.add(outage_end, "backup_restore_complete", duration=restore)
                clocks.renew_failed_before(outage_end)
                spare_available = True
                now = outage_end
                continue
            # Rebuild finished: the spare now carries the data of the failed
            # slot; the dead hardware must be replaced to restore the spare.
            clocks.renew(slot, rebuild_done)
            if trace is not None:
                trace.add(rebuild_done, "spare_rebuild_complete", slot=slot)
            spare_available = False
            now, spare_available = _hardware_replacement_phase(
                params, clocks, result, recovery, replace_dist, ddf_dist,
                rebuild_done, horizon_hours, rng, trace,
            )
            continue

        # No spare: handle the failure like a conventional (human) replacement
        # but remember that the spare stays consumed afterwards.
        now, spare_available = _exposed_without_spare(
            params, clocks, result, recovery, ddf_dist,
            slot, fail_time, horizon_hours, rng, trace,
        )

    return result


# ----------------------------------------------------------------------
# Fail-over policy helpers
# ----------------------------------------------------------------------
def _hardware_replacement_phase(
    params: AvailabilityParameters,
    clocks: _ArrayClocks,
    result: IterationResult,
    recovery: HumanErrorRecoveryModel,
    replace_dist,
    ddf_dist,
    start: float,
    horizon: float,
    rng: np.random.Generator,
    trace: Optional[EpisodeTrace],
) -> tuple:
    """Replace the dead hardware after a spare rebuild (the ``OPns`` phase).

    Returns ``(time, spare_available)`` when the phase resolves.
    """
    n = params.n_disks
    replace_done = start + _sample(replace_dist, rng)
    slot, next_fail = clocks.next_failure()
    next_fail = max(next_fail, start)

    if next_fail < replace_done and next_fail < horizon:
        # A further disk failure arrives while there is no spare.
        result.disk_failures += 1
        if trace is not None:
            trace.add(next_fail, "disk_failure", slot=slot, spare_available=False)
        return _exposed_without_spare(
            params, clocks, result, recovery, ddf_dist,
            slot, next_fail, horizon, rng, trace,
        )

    if params.hep > 0.0 and rng.random() < params.hep:
        # Wrong pull during the hardware replacement: the array degrades but
        # stays up because it was fully redundant.
        result.human_errors += 1
        wrong_slot = int(rng.integers(n))
        if trace is not None:
            trace.add(replace_done, "human_error", error="wrong_disk_replacement",
                      wrong_slot=wrong_slot, array_state="fully_redundant")
        attempt = recovery.sample_until_recovered(rng)
        recovery_end = replace_done + attempt.duration_hours
        other_slot, second_fail = clocks.next_failure(exclude=wrong_slot)
        second_fail = max(second_fail, replace_done)

        if second_fail < recovery_end and second_fail < horizon:
            # A real failure lands while the wrong pull is outstanding: two
            # disks are missing, the data is unavailable until the error is
            # undone (or, if the pulled disk crashed, until a restore).
            result.disk_failures += 1
            result.du_events += 1
            if attempt.disk_crashed:
                result.dl_events += 1
                restore = _sample(ddf_dist, rng)
                outage_end = recovery_end + restore
                result.downtime_hours += _clip_downtime(second_fail, outage_end, horizon)
                clocks.renew_failed_before(outage_end)
                if trace is not None:
                    trace.add(second_fail, "data_unavailable", cause="failure_during_wrong_pull")
                    trace.add(outage_end, "backup_restore_complete", duration=restore)
                return outage_end, True
            result.downtime_hours += _clip_downtime(second_fail, recovery_end, horizon)
            if trace is not None:
                trace.add(second_fail, "data_unavailable", cause="failure_during_wrong_pull")
                trace.add(recovery_end, "human_error_recovered")
            # The error is undone; the real failure is still outstanding.
            return _exposed_without_spare(
                params, clocks, result, recovery, ddf_dist,
                other_slot, recovery_end, horizon, rng, trace,
                already_counted=True,
            )

        if attempt.disk_crashed:
            # The wrongly pulled disk died: it is now a genuine failed disk
            # (array still degraded-but-up, no spare).
            result.dl_events += 0  # no loss yet; redundancy absorbed it
            if trace is not None:
                trace.add(recovery_end, "wrong_pull_crashed", slot=wrong_slot)
            return _exposed_without_spare(
                params, clocks, result, recovery, ddf_dist,
                wrong_slot, recovery_end, horizon, rng, trace,
                already_counted=True, crashed_slot=True,
            )
        if trace is not None:
            trace.add(recovery_end, "human_error_recovered")
        return recovery_end, True

    if trace is not None:
        trace.add(replace_done, "spare_restored")
    return replace_done, True


def _exposed_without_spare(
    params: AvailabilityParameters,
    clocks: _ArrayClocks,
    result: IterationResult,
    recovery: HumanErrorRecoveryModel,
    ddf_dist,
    slot: int,
    start: float,
    horizon: float,
    rng: np.random.Generator,
    trace: Optional[EpisodeTrace],
    already_counted: bool = False,
    crashed_slot: bool = False,
) -> tuple:
    """Resolve a failed disk when no spare is available (the ``EXPns1`` state).

    The technician both rebuilds and replaces hardware; the combined service
    completes at rate ``mu_DF + mu_ch`` and can suffer a human error that
    takes the data down.  Returns ``(time, spare_available)``.
    """
    combined_rate = params.disk_repair_rate + params.spare_replacement_rate
    service_done = start + float(rng.exponential(1.0 / combined_rate))
    other_slot, second_fail = clocks.next_failure(exclude=slot)
    second_fail = max(second_fail, start)

    if second_fail < service_done and second_fail < horizon:
        # Double failure with no spare: data loss.
        result.disk_failures += 1
        result.dl_events += 1
        restore = _sample(ddf_dist, rng)
        outage_end = second_fail + restore
        result.downtime_hours += _clip_downtime(second_fail, outage_end, horizon)
        if trace is not None:
            trace.add(second_fail, "data_loss", cause="double_disk_failure_no_spare")
            trace.add(outage_end, "backup_restore_complete", duration=restore)
        clocks.renew(slot, outage_end)
        clocks.renew_failed_before(outage_end)
        return outage_end, False

    if params.hep > 0.0 and rng.random() < params.hep:
        # Wrong pull while the array is degraded: data unavailable.
        result.human_errors += 1
        result.du_events += 1
        attempt = recovery.sample_until_recovered(rng)
        outage_end = service_done + attempt.duration_hours
        if trace is not None:
            trace.add(service_done, "human_error", error="wrong_disk_replacement",
                      array_state="degraded_no_spare")
        if attempt.disk_crashed:
            result.dl_events += 1
            restore = _sample(ddf_dist, rng)
            outage_end += restore
            if trace is not None:
                trace.add(outage_end - restore, "data_loss", cause="wrong_pull_crashed")
                trace.add(outage_end, "backup_restore_complete", duration=restore)
        else:
            if trace is not None:
                trace.add(outage_end, "human_error_recovered")
        result.downtime_hours += _clip_downtime(service_done, outage_end, horizon)
        clocks.renew(slot, outage_end)
        clocks.renew_failed_before(outage_end)
        return outage_end, False

    # Successful service: the failed disk is back, the spare is restored too
    # (the technician replaced the dead hardware in the same visit).
    clocks.renew(slot, service_done)
    if trace is not None:
        trace.add(service_done, "rebuild_complete", slot=slot)
    return service_done, True


def _pick_other_slot(rng: np.random.Generator, n_disks: int, failed_slot: int) -> int:
    """Pick a uniformly random operational slot different from ``failed_slot``."""
    if n_disks <= 1:
        return failed_slot
    choice = int(rng.integers(n_disks - 1))
    return choice if choice < failed_slot else choice + 1
