"""Deterministic fault injection for the sharded executor.

The fault-tolerance layer in :mod:`repro.core.montecarlo.parallel` is only
trustworthy if its failure modes can be reproduced on demand: a worker
that dies mid-shard, a shard that hangs past its timeout, a plain in-shard
exception, and a parent interrupted after *k* completed shards.  This
module injects exactly those faults at exactly the chosen shard indices —
deterministically, across process boundaries, and **once per fault**, so a
retried shard runs clean and the executor's bit-identity claim is testable
rather than assumed.

Mechanics
---------
A :class:`FaultPlan` maps shard stream indices to fault kinds.  The plan is
serialised to a JSON file and advertised through the
:data:`FAULT_PLAN_ENV` environment variable, which forked *and* spawned
pool workers inherit — no executor plumbing, no special worker entry
points.  The simulation entry points (:func:`repro.core.montecarlo.parallel
.run_shard` and the stacked shard runners) call :func:`check_fault` with
their stream index before doing any work.

"Fire once" must survive the fact that a killed worker cannot record that
it already fired.  Each fault therefore *arms* through an atomic marker
file (``O_CREAT | O_EXCL``) in a directory owned by the plan: the first
process to create the marker injects the fault, every later attempt of the
same shard sees the marker and runs normally.  That makes kill/hang/raise
faults first-attempt-only by construction, whatever pool or platform runs
the shard.

Fault kinds
-----------
``"raise"``
    Raise :class:`FaultInjected` inside the shard (an ordinary in-shard
    exception, retried in place).
``"kill"``
    Die without cleanup (``os._exit``) when running inside a pool worker
    process — the ``BrokenProcessPool`` path.  Worker *loss* is only
    physically realisable on process pools; in thread and serial pools the
    kill degrades to ``"raise"`` (killing the shared interpreter would take
    the parent down too).
``"hang"``
    Sleep ``hang_seconds`` before continuing normally — long enough to
    trip a configured ``shard_timeout``.  The sleep is finite on purpose:
    a hung *thread* cannot be killed, only abandoned, and a finite sleep
    lets the interpreter exit cleanly after the test.

The parent-side ``abort_after`` fault raises :class:`KeyboardInterrupt` in
the *collector* after the given number of shard results has been gathered —
the deterministic stand-in for Ctrl-C/SIGTERM that the checkpoint/resume
CI smoke uses instead of racing a kill signal against the sweep.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from repro.exceptions import ConfigurationError, SimulationError

__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_KINDS",
    "FaultInjected",
    "FaultPlan",
    "ShardFault",
    "active_plan",
    "check_abort",
    "check_fault",
    "fault_plan",
]

#: Environment variable carrying the path of the active fault-plan file.
#: Worker processes (forked and spawned) inherit it automatically.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Accepted fault kinds.
FAULT_KINDS = ("raise", "kill", "hang")

#: Worker marker set by the process-pool initializer — how ``"kill"``
#: decides whether dying would take the parent down.  Imported lazily from
#: parallel.py would be circular; the literal is asserted equal in tests.
_WORKER_ENV = "REPRO_MC_WORKER"


class FaultInjected(SimulationError):
    """The deliberate in-shard failure raised by ``"raise"`` faults."""


@dataclass(frozen=True)
class ShardFault:
    """One planned fault at one shard stream index."""

    kind: str
    hang_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.hang_seconds < 0.0:
            raise ConfigurationError(
                f"hang_seconds must be non-negative, got {self.hang_seconds!r}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of shard faults (plus a parent-side abort).

    Attributes
    ----------
    faults:
        Mapping of shard *stream index* to the fault injected on that
        shard's **first** attempt.
    abort_after:
        When set, the parent's shard collector raises
        :class:`KeyboardInterrupt` after this many shard results have been
        gathered — once per plan, like the shard faults.
    """

    faults: Mapping[int, ShardFault] = field(default_factory=dict)
    abort_after: Optional[int] = None

    def __post_init__(self) -> None:
        if self.abort_after is not None and int(self.abort_after) < 1:
            raise ConfigurationError(
                f"abort_after must be at least 1, got {self.abort_after!r}"
            )

    @classmethod
    def single(cls, shard_index: int, kind: str, hang_seconds: float = 5.0) -> "FaultPlan":
        """Return a plan injecting one fault at one shard index."""
        return cls(faults={int(shard_index): ShardFault(kind, hang_seconds)})

    def as_dict(self) -> Dict[str, object]:
        """Return the JSON payload of the plan (arm dir added at install)."""
        return {
            "faults": {
                str(index): {"kind": spec.kind, "hang_seconds": spec.hang_seconds}
                for index, spec in self.faults.items()
            },
            "abort_after": self.abort_after,
        }


@dataclass(frozen=True)
class _InstalledPlan:
    """A plan as loaded from its file: faults plus the arm directory."""

    plan: FaultPlan
    arm_dir: str


def write_plan(plan: FaultPlan, directory: Union[str, Path]) -> Path:
    """Serialise ``plan`` into ``directory`` and return the plan file path.

    The directory doubles as the arm-marker store, so pointing
    :data:`FAULT_PLAN_ENV` at the returned file is all a test (or the CI
    chaos smoke) needs: any process loading the plan derives the marker
    location from the file itself.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = plan.as_dict()
    payload["arm_dir"] = str(directory)
    path = directory / "fault_plan.json"
    path.write_text(json.dumps(payload))
    return path


def load_plan(path: Union[str, Path]) -> _InstalledPlan:
    """Load a plan file written by :func:`write_plan`."""
    payload = json.loads(Path(path).read_text())
    faults = {
        int(index): ShardFault(
            kind=str(spec["kind"]),
            hang_seconds=float(spec.get("hang_seconds", 5.0)),
        )
        for index, spec in payload.get("faults", {}).items()
    }
    plan = FaultPlan(faults=faults, abort_after=payload.get("abort_after"))
    return _InstalledPlan(plan=plan, arm_dir=str(payload["arm_dir"]))


def active_plan() -> Optional[_InstalledPlan]:
    """Return the currently advertised plan, or ``None`` without one.

    Loaded fresh from the file on every call: plans are tiny, and the
    statelessness is what lets a forked/spawned worker — which shares no
    Python state with the installer — see the same schedule.
    """
    path = os.environ.get(FAULT_PLAN_ENV)
    if not path:
        return None
    try:
        return load_plan(path)
    except FileNotFoundError:
        return None


def _arm(arm_dir: str, marker: str) -> bool:
    """Atomically claim a fault; ``True`` exactly once per marker.

    ``O_CREAT | O_EXCL`` is atomic on every POSIX filesystem, including
    across the fork/spawn boundary — whichever attempt creates the marker
    first injects the fault, and a retried shard (or a resumed run reusing
    the same plan directory) finds the marker and runs clean.
    """
    try:
        fd = os.open(
            os.path.join(arm_dir, marker), os.O_CREAT | os.O_EXCL | os.O_WRONLY
        )
    except FileExistsError:
        return False
    os.close(fd)
    return True


def check_fault(stream_index: int) -> None:
    """Inject the planned fault for ``stream_index``, if it has not fired.

    Called at the top of every shard entry point.  A no-op (one env lookup)
    when no plan is installed, which is the production path.
    """
    installed = active_plan()
    if installed is None:
        return
    spec = installed.plan.faults.get(int(stream_index))
    if spec is None:
        return
    if not _arm(installed.arm_dir, f"shard-{int(stream_index)}"):
        return
    if spec.kind == "hang":
        time.sleep(spec.hang_seconds)
        return
    if spec.kind == "kill" and os.environ.get(_WORKER_ENV) == "1":
        # A pool worker process: die the way an OOM kill would — no
        # cleanup, no exception propagation, exit code 1.  The parent sees
        # BrokenProcessPool.
        os._exit(1)
    # Thread/serial pools share the parent's interpreter, so "kill"
    # degrades to the in-shard exception (documented above).
    raise FaultInjected(
        f"injected {spec.kind!r} fault on shard {int(stream_index)}"
    )


def check_abort(completed: int) -> None:
    """Raise ``KeyboardInterrupt`` once when ``abort_after`` is reached.

    Called by the parent-side collector after every gathered shard result;
    the marker file makes the abort fire exactly once per plan, so a
    resumed run under the same plan completes normally.
    """
    installed = active_plan()
    if installed is None or installed.plan.abort_after is None:
        return
    if int(completed) < int(installed.plan.abort_after):
        return
    if _arm(installed.arm_dir, "abort"):
        raise KeyboardInterrupt(
            f"injected abort after {int(completed)} completed shards"
        )


class fault_plan:
    """Context manager installing a plan for the enclosed code (tests).

    Writes the plan under ``directory``, points :data:`FAULT_PLAN_ENV` at
    it, and restores the previous environment on exit.  Workers started
    inside the context inherit the variable; workers of a pool created
    *before* the context still see it on fork platforms only at their next
    os.environ read (which :func:`active_plan` performs per call), so tests
    should create pools inside the context.
    """

    def __init__(self, plan: FaultPlan, directory: Union[str, Path]) -> None:
        self._plan = plan
        self._directory = directory
        self._previous: Optional[str] = None

    def __enter__(self) -> Path:
        path = write_plan(self._plan, self._directory)
        self._previous = os.environ.get(FAULT_PLAN_ENV)
        os.environ[FAULT_PLAN_ENV] = str(path)
        return path

    def __exit__(self, *exc_info) -> None:
        if self._previous is None:
            os.environ.pop(FAULT_PLAN_ENV, None)
        else:
            os.environ[FAULT_PLAN_ENV] = self._previous
