"""Monte Carlo runner: policy-registry dispatch over two execution paths.

Runs many independent simulated lifetimes (as configured by
:class:`~repro.core.montecarlo.config.MonteCarloConfig`), averages their
availability and attaches a Student-t confidence interval — the estimator
described in the paper's Section III, where the interval width shrinks with
the square root of the iteration count.

The replacement policy is resolved by name through
:mod:`repro.core.policies.registry`; execution happens on one of two paths:

* the **sharded** path (whenever ``workers > 1``, ``shard_size`` or
  ``target_half_width`` is configured) splits the budget into per-worker
  shards and merges streaming summaries via
  :mod:`repro.core.montecarlo.parallel`,
* the **batch** path (default whenever the policy ships a vectorised kernel
  and no event trace was requested) runs all lifetimes as struct-of-arrays
  numpy batches via :mod:`repro.core.montecarlo.batch`, and
* the **scalar** path walks one Python event loop per lifetime — slower,
  but able to record the paper's Fig. 1 style episode traces, which can be
  replayed on the discrete-event engine through
  :mod:`repro.core.montecarlo.engine_bridge`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

import numpy as np

from repro.core.montecarlo.batch import run_batch
from repro.core.montecarlo.parallel import run_sharded
from repro.core.montecarlo.config import MonteCarloConfig, PolicyRef
from repro.core.montecarlo.results import (
    EpisodeTrace,
    IterationResult,
    MonteCarloResult,
    merge_iteration_counters,
)
from repro.core.parameters import AvailabilityParameters
from repro.core.policies.registry import resolve_policy
from repro.exceptions import ConfigurationError
from repro.human.policy import PolicyKind
from repro.simulation.confidence import confidence_interval
from repro.simulation.rng import RandomStreams


def _use_batch_path(config: MonteCarloConfig) -> bool:
    """Decide the execution path for ``config`` (see ``config.executor``)."""
    if config.executor == "scalar":
        return False
    if config.executor == "batch":
        return True
    # "auto": vectorise when possible; traces only exist on the scalar path.
    if config.collect_trace:
        return False
    return resolve_policy(config.policy).has_batch_kernel


def run_iterations(
    config: MonteCarloConfig,
    streams: Optional[RandomStreams] = None,
) -> Tuple[List[IterationResult], Optional[EpisodeTrace]]:
    """Run all configured iterations on the scalar path, raw results.

    The first iteration optionally records an event trace (Fig. 1 style).
    ``streams`` lets a caller supply an externally seeded stream family;
    ``None`` builds one from ``config.seed``.
    """
    policy = resolve_policy(config.policy)
    if streams is None:
        streams = RandomStreams(config.seed)
    rng = streams.stream("montecarlo")
    iterations: List[IterationResult] = []
    trace: Optional[EpisodeTrace] = EpisodeTrace() if config.collect_trace else None
    for index in range(config.n_iterations):
        iteration_trace = trace if (index == 0 and trace is not None) else None
        iterations.append(
            policy.simulate(config.params, config.horizon_hours, rng, trace=iteration_trace)
        )
    return iterations, trace


def run_monte_carlo(config: MonteCarloConfig, pool=None) -> MonteCarloResult:
    """Run the configured study and return the aggregated result.

    Dispatches to the sharded parallel executor (``workers``,
    ``shard_size`` or ``target_half_width`` configured), the vectorised
    batch executor, or the scalar loop according to the config
    (``"auto"`` prefers the batch path).  ``pool`` optionally shares an
    externally owned executor across sharded studies (see
    :func:`repro.core.montecarlo.parallel.worker_pool`); it is ignored on
    the single-process paths.
    """
    if config.uses_sharded_path:
        return run_sharded(config, pool=pool)
    if config.journal_path is not None:
        raise ConfigurationError(
            "checkpoint/resume journals record *shard* summaries and need "
            "the sharded executor; set workers, shard_size or "
            "target_half_width"
        )
    if _use_batch_path(config):
        return run_batch(config)
    if config.biasing is not None:
        # The config validator already rejects executor="scalar"; this
        # catches the quieter case of executor="auto" resolving to the
        # scalar loop because the policy has no batch kernel.
        raise ConfigurationError(
            "failure biasing requires the vectorised batch kernels; policy "
            f"{resolve_policy(config.policy).name!r} has no batch kernel and "
            "resolved to the scalar path"
        )
    if config.kernel in ("compiled", "fused"):
        # Same shape as the biasing guard: explicit kernel="compiled" or
        # "fused" with a policy that has no batch kernel resolved to the
        # scalar loop, where neither compiled row searches nor fused event
        # loops ever run.  kernel="auto" degrades to the scalar path
        # silently instead.
        raise ConfigurationError(
            f"kernel={config.kernel!r} accelerates the vectorised batch "
            f"kernels; policy {resolve_policy(config.policy).name!r} has no "
            "batch kernel and resolved to the scalar path"
        )
    streams = RandomStreams(config.seed)
    iterations, _ = run_iterations(config, streams=streams)
    return summarise_iterations(iterations, config, seed_entropy=streams.seed_entropy)


def run_monte_carlo_with_trace(
    config: MonteCarloConfig,
) -> Tuple[MonteCarloResult, EpisodeTrace]:
    """Run the study on the scalar path and also return the first trace."""
    traced_config = config if config.collect_trace else replace(config, collect_trace=True)
    streams = RandomStreams(traced_config.seed)
    iterations, trace = run_iterations(traced_config, streams=streams)
    assert trace is not None  # collect_trace was forced on above
    result = summarise_iterations(
        iterations, traced_config, seed_entropy=streams.seed_entropy
    )
    return result, trace


def summarise_iterations(
    iterations: List[IterationResult],
    config: MonteCarloConfig,
    seed_entropy: Optional[int] = None,
) -> MonteCarloResult:
    """Aggregate raw iteration results into a :class:`MonteCarloResult`."""
    if len(iterations) < 2:
        raise ConfigurationError("at least two iterations are required to summarise")
    availabilities = np.array([it.availability for it in iterations], dtype=float)
    interval = confidence_interval(availabilities, confidence=config.confidence)
    return MonteCarloResult(
        availability=float(availabilities.mean()),
        interval=interval,
        n_iterations=len(iterations),
        horizon_hours=config.horizon_hours,
        totals=merge_iteration_counters(iterations),
        label=config.label(),
        seed_entropy=seed_entropy,
    )


def estimate_availability(
    params: AvailabilityParameters,
    policy: PolicyRef = PolicyKind.CONVENTIONAL,
    n_iterations: int = 20_000,
    horizon_hours: float = 10 * 8760.0,
    seed: Optional[int] = 0,
    confidence: float = 0.99,
    executor: str = "auto",
    workers: int = 1,
    target_half_width: Optional[float] = None,
) -> MonteCarloResult:
    """One-call convenience wrapper around :func:`run_monte_carlo`."""
    config = MonteCarloConfig(
        params=params,
        policy=policy,
        horizon_hours=horizon_hours,
        n_iterations=n_iterations,
        confidence=confidence,
        seed=seed,
        executor=executor,
        workers=workers,
        target_half_width=target_half_width,
    )
    return run_monte_carlo(config)
