"""Multi-iteration Monte Carlo runner with confidence intervals.

Runs many independent simulated lifetimes (as configured by
:class:`~repro.core.montecarlo.config.MonteCarloConfig`), averages their
availability and attaches a Student-t confidence interval — the estimator
described in the paper's Section III, where the interval width shrinks with
the square root of the iteration count.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.montecarlo.config import MonteCarloConfig
from repro.core.montecarlo.results import (
    EpisodeTrace,
    IterationResult,
    MonteCarloResult,
    merge_iteration_counters,
)
from repro.core.montecarlo.simulator import simulate_conventional, simulate_failover
from repro.core.parameters import AvailabilityParameters
from repro.exceptions import ConfigurationError
from repro.human.policy import PolicyKind
from repro.simulation.confidence import confidence_interval
from repro.simulation.rng import RandomStreams


def _simulator_for(policy: PolicyKind) -> Callable:
    if policy is PolicyKind.CONVENTIONAL:
        return simulate_conventional
    if policy is PolicyKind.AUTOMATIC_FAILOVER:
        return simulate_failover
    raise ConfigurationError(f"unknown policy kind {policy!r}")


def run_iterations(
    config: MonteCarloConfig,
) -> Tuple[List[IterationResult], Optional[EpisodeTrace]]:
    """Run all configured iterations and return their raw results.

    The first iteration optionally records an event trace (Fig. 1 style).
    """
    simulator = _simulator_for(config.policy)
    streams = RandomStreams(config.seed)
    rng = streams.stream("montecarlo")
    iterations: List[IterationResult] = []
    trace: Optional[EpisodeTrace] = EpisodeTrace() if config.collect_trace else None
    for index in range(config.n_iterations):
        iteration_trace = trace if (index == 0 and trace is not None) else None
        iterations.append(
            simulator(config.params, config.horizon_hours, rng, trace=iteration_trace)
        )
    return iterations, trace


def run_monte_carlo(config: MonteCarloConfig) -> MonteCarloResult:
    """Run the configured study and return the aggregated result."""
    iterations, _ = run_iterations(config)
    return summarise_iterations(iterations, config)


def run_monte_carlo_with_trace(
    config: MonteCarloConfig,
) -> Tuple[MonteCarloResult, EpisodeTrace]:
    """Run the study and also return the first iteration's event trace."""
    traced_config = (
        config if config.collect_trace else MonteCarloConfig(
            params=config.params,
            policy=config.policy,
            horizon_hours=config.horizon_hours,
            n_iterations=config.n_iterations,
            confidence=config.confidence,
            seed=config.seed,
            collect_trace=True,
        )
    )
    iterations, trace = run_iterations(traced_config)
    assert trace is not None  # collect_trace was forced on above
    return summarise_iterations(iterations, traced_config), trace


def summarise_iterations(
    iterations: List[IterationResult], config: MonteCarloConfig
) -> MonteCarloResult:
    """Aggregate raw iteration results into a :class:`MonteCarloResult`."""
    if len(iterations) < 2:
        raise ConfigurationError("at least two iterations are required to summarise")
    availabilities = np.array([it.availability for it in iterations], dtype=float)
    interval = confidence_interval(availabilities, confidence=config.confidence)
    return MonteCarloResult(
        availability=float(availabilities.mean()),
        interval=interval,
        n_iterations=len(iterations),
        horizon_hours=config.horizon_hours,
        totals=merge_iteration_counters(iterations),
        label=config.label(),
    )


def estimate_availability(
    params: AvailabilityParameters,
    policy: PolicyKind = PolicyKind.CONVENTIONAL,
    n_iterations: int = 20_000,
    horizon_hours: float = 10 * 8760.0,
    seed: Optional[int] = 0,
    confidence: float = 0.99,
) -> MonteCarloResult:
    """One-call convenience wrapper around :func:`run_monte_carlo`."""
    config = MonteCarloConfig(
        params=params,
        policy=policy,
        horizon_hours=horizon_hours,
        n_iterations=n_iterations,
        confidence=confidence,
        seed=seed,
    )
    return run_monte_carlo(config)
