"""Durable shard journal: checkpoint/resume for sharded Monte Carlo runs.

A sharded run is a deterministic function of its master seed: the shard
decomposition, every shard's spawn-indexed stream family, and the plan-order
merge are all derived from configuration alone.  That makes completed shard
summaries *content-addressable* — a shard's record array is fully identified
by (run digest, stream index, flat row range) — which is what this journal
exploits: completed shards are appended to an on-disk JSONL file as they are
collected, and a later run with the same digest skips them, merging the
journaled records in plan order exactly where the live records would have
gone.  A killed 10^8-lifetime sweep therefore restarts where it died and
produces bit-identical final moments, because resumed records *are* the
records the uninterrupted run would have computed.

File format (JSONL, one object per line)
----------------------------------------
The first line is a header::

    {"kind": "header", "version": 1, "digest": "<sha256>",
     "master_entropy": 1234..., "key": {...}}

``digest`` is the SHA-256 of the canonical (sorted-key) JSON of everything
that determines the run's numbers: policy name and redundancy scheme,
parameter reprs, horizon, per-point lifetime counts, master entropy, shard
size, CRN mode, resolved kernel, biasing, and the adaptive controls
(target, ceilings, allocator, confidence).  Execution knobs that provably
do **not** change results — worker count, pool kind, transport — are
excluded, so a journal written by a 4-worker shm run resumes under a
single serial worker (and vice versa).  The one exception is the scalar
path with an unpinned ``shard_size``, whose decomposition derives from the
worker count; there the worker count *is* part of the digest.  ``compiled``
collapses to ``numpy`` in the digest (the backends are bit-identical);
``fused`` stays distinct (it owns its draw discipline).

Every other line is one completed shard::

    {"kind": "shard", "key": [stream_index, start, stop],
     "records": "<base64 of POINT_SUMMARY_DTYPE bytes>"}

``start``/``stop`` are ``-1`` for single-point (scalar-path) shards.  The
key needs all three fields because CRN mode restarts stream indices at
every point boundary — ``stream_index`` alone is not unique there.

Appends are flushed and fsynced per shard, so the journal survives
``SIGKILL`` with at worst one torn trailing line; loading tolerates (and
truncates) a torn tail.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.montecarlo.batch import POINT_SUMMARY_DTYPE, POINT_SUMMARY_TOTAL_FIELDS
from repro.exceptions import ConfigurationError
from repro.simulation.confidence import StreamingMoments

__all__ = [
    "JOURNAL_VERSION",
    "SCALAR_RANGE",
    "ShardJournal",
    "journal_entropy",
    "record_from_summary",
    "run_digest",
    "summary_parts_from_record",
]

#: Format version written to (and required of) every journal header.
JOURNAL_VERSION = 1

#: ``(start, stop)`` sentinel of single-point (scalar-path) shard keys.
SCALAR_RANGE = (-1, -1)

#: A shard's identity inside one run: ``(stream_index, start, stop)``.
ShardKey = Tuple[int, int, int]


def run_digest(
    configs: Sequence,
    policy,
    *,
    master_entropy: int,
    shard_size: Optional[int],
    crn: bool = False,
    kernel: str = "numpy",
    scalar: bool = False,
) -> Tuple[str, Dict[str, object]]:
    """Return ``(digest, key)`` identifying a run's numerical content.

    ``configs`` is the stacked grid (or the one-element list of a scalar
    run), ``policy`` the resolved policy object, ``kernel`` the
    parent-resolved backend.  ``shard_size=None`` on the scalar path pulls
    the worker count into the key (see the module docstring).
    """
    first = configs[0]
    kernel = "numpy" if kernel == "compiled" else str(kernel)
    key: Dict[str, object] = {
        "version": JOURNAL_VERSION,
        "policy": policy.name,
        "scheme": repr(getattr(policy, "scheme", None)),
        "params": [repr(config.params) for config in configs],
        "horizon_hours": float(first.horizon_hours),
        "counts": [int(config.n_iterations) for config in configs],
        "master_entropy": int(master_entropy),
        "shard_size": None if shard_size is None else int(shard_size),
        "crn": bool(crn),
        "kernel": kernel,
        "biasing": None if first.biasing is None else float(first.biasing),
        "confidence": float(first.confidence),
        "target_half_width": (
            None
            if first.target_half_width is None
            else float(first.target_half_width)
        ),
        "scalar": bool(scalar),
    }
    if first.target_half_width is not None:
        key["allocator"] = str(first.allocator)
        key["ceilings"] = [int(config.adaptive_ceiling) for config in configs]
    if scalar and shard_size is None:
        # Unpinned scalar decomposition derives from the worker count.
        key["workers"] = int(first.workers)
    digest = hashlib.sha256(
        json.dumps(key, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return digest, key


def record_from_summary(moments: StreamingMoments, totals: Dict[str, float]) -> np.ndarray:
    """Pack a scalar shard's summary into a one-row point record (point 0).

    The inverse of :func:`summary_parts_from_record`; together they let the
    journal (and the retry layer's bit-identity checks) speak one wire
    format — :data:`~repro.core.montecarlo.batch.POINT_SUMMARY_DTYPE` — for
    both the scalar and the stacked path.
    """
    record = np.zeros(1, dtype=POINT_SUMMARY_DTYPE)
    record["point"] = 0
    record["n"] = moments.n
    record["mean"] = moments.mean
    record["m2"] = moments.m2
    record["w_sum"] = moments.w_sum
    record["w2_sum"] = moments.w2_sum
    for field in POINT_SUMMARY_TOTAL_FIELDS:
        record[field] = float(totals.get(field, 0.0))
    return record


def summary_parts_from_record(
    records: np.ndarray,
) -> Tuple[StreamingMoments, Dict[str, float]]:
    """Unpack a one-row point record back into (moments, totals)."""
    if len(records) != 1:
        raise ConfigurationError(
            f"a scalar shard journals exactly one point record, got {len(records)}"
        )
    record = records[0]
    moments = StreamingMoments(
        n=int(record["n"]),
        mean=float(record["mean"]),
        m2=float(record["m2"]),
        w_sum=float(record["w_sum"]),
        w2_sum=float(record["w2_sum"]),
    )
    totals = {
        field: float(record[field]) for field in POINT_SUMMARY_TOTAL_FIELDS
    }
    return moments, totals


def journal_entropy(path: Union[str, Path]) -> Optional[int]:
    """Return the master entropy recorded in a journal header, if readable.

    Lets ``resume=`` runs omit the seed: the resumed run adopts the
    journaled run's entropy, which the digest check then verifies.
    """
    try:
        with Path(path).open("r", encoding="utf-8") as handle:
            line = handle.readline()
        header = json.loads(line)
        if header.get("kind") != "header":
            return None
        return int(header["master_entropy"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


class ShardJournal:
    """Append-only store of one run's completed shard records.

    Open with :meth:`open`: an existing journal is verified against the
    run digest and its completed shards become resumable; a fresh path
    starts a new journal.  :meth:`records` answers "was this shard already
    completed?", :meth:`append` durably adds a newly completed shard.
    """

    def __init__(
        self,
        path: Path,
        digest: str,
        entries: Dict[ShardKey, np.ndarray],
        handle,
    ) -> None:
        self.path = path
        self.digest = digest
        self._entries = entries
        self._handle = handle

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        digest: str,
        key: Dict[str, object],
        master_entropy: int,
        *,
        require_existing: bool = False,
    ) -> "ShardJournal":
        """Open (resuming) or create the journal at ``path``.

        A populated journal whose digest differs from ``digest`` is an
        error — resuming it would merge another run's numbers.  With
        ``require_existing`` (the ``resume=`` spelling) a missing journal
        is an error too; the ``checkpoint=`` spelling creates it.
        """
        path = Path(path)
        if path.exists() and path.stat().st_size > 0:
            header, entries, good_size = cls._load(path)
            if header.get("digest") != digest:
                raise ConfigurationError(
                    f"journal {str(path)!r} records a different run "
                    f"(digest {header.get('digest')!r} != {digest!r}); "
                    "refusing to resume — pass a fresh checkpoint path or "
                    "match the original policy/params/seed/budget"
                )
            if good_size < path.stat().st_size:
                # Torn trailing line from a mid-write kill: drop it so the
                # next append starts on a clean line boundary.
                with path.open("r+b") as trunc:
                    trunc.truncate(good_size)
            handle = path.open("a", encoding="utf-8")
            return cls(path, digest, entries, handle)
        if require_existing:
            raise ConfigurationError(
                f"resume journal {str(path)!r} does not exist; "
                "use checkpoint= to start one"
            )
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        handle = path.open("w", encoding="utf-8")
        header = {
            "kind": "header",
            "version": JOURNAL_VERSION,
            "digest": digest,
            "master_entropy": int(master_entropy),
            "key": key,
        }
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
        return cls(path, digest, {}, handle)

    @staticmethod
    def _load(path: Path):
        """Parse the journal, tolerating a torn final line."""
        entries: Dict[ShardKey, np.ndarray] = {}
        header: Dict[str, object] = {}
        good_size = 0
        with path.open("rb") as handle:
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break  # torn tail — everything before it is intact
                try:
                    payload = json.loads(raw)
                except ValueError:
                    break
                good_size += len(raw)
                if payload.get("kind") == "header":
                    header = payload
                elif payload.get("kind") == "shard":
                    key = tuple(int(part) for part in payload["key"])
                    data = base64.b64decode(payload["records"])
                    entries[key] = np.frombuffer(data, dtype=POINT_SUMMARY_DTYPE)
        if not header:
            raise ConfigurationError(
                f"journal {str(path)!r} has no readable header"
            )
        return header, entries, good_size

    def __len__(self) -> int:
        return len(self._entries)

    def records(self, key: ShardKey) -> Optional[np.ndarray]:
        """Return the journaled records of ``key``, or ``None``."""
        return self._entries.get((int(key[0]), int(key[1]), int(key[2])))

    def append(self, key: ShardKey, records: np.ndarray) -> None:
        """Durably record one completed shard (flush + fsync)."""
        key = (int(key[0]), int(key[1]), int(key[2]))
        if key in self._entries:
            return
        contiguous = np.ascontiguousarray(records)
        line = json.dumps(
            {
                "kind": "shard",
                "key": list(key),
                "records": base64.b64encode(contiguous.tobytes()).decode("ascii"),
            }
        )
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._entries[key] = contiguous

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._handle is not None:
            try:
                self._handle.flush()
                self._handle.close()
            except ValueError:  # already closed
                pass
            self._handle = None

    def __enter__(self) -> "ShardJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
