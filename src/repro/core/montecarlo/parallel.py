"""Sharded parallel Monte Carlo executor with streaming aggregation.

This is the scale-out layer above the vectorised batch kernels: the
iteration budget is split into fixed-size *shards*, each shard runs on its
own :class:`~repro.simulation.rng.RandomStreams` family (spawned from the
master seed at the shard's index, so streams never collide and never
depend on scheduling order), and shard results come back as constant-size
summaries — Chan–Golub–LeVeque mergeable moments plus event totals —
rather than per-lifetime sample arrays.  Merging is deterministic
(shard-index order) and exact, so

* ``workers=1`` and ``workers=N`` produce bit-identical results for the
  same shard decomposition, and
* memory stays flat no matter how many lifetimes are simulated.

On top of the shard rounds sits **CI-driven adaptive stopping**: with
``MonteCarloConfig.target_half_width`` set, the executor keeps dispatching
rounds — sized by the :func:`~repro.simulation.confidence.required_samples`
planner — until the Student-t interval is tight enough or the configured
iteration ceiling is reached.  ``mc --target-half-width 1e-5`` therefore
replaces guessing ``--iterations``.
"""

from __future__ import annotations

import contextlib
import math
import multiprocessing
import os
import sys
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.montecarlo.batch import (
    POINT_SUMMARY_TOTAL_FIELDS,
    segment_point_records,
)
from repro.core.montecarlo.compiled import kernel_context, resolve_kernel
from repro.core.montecarlo.config import MonteCarloConfig
from repro.core.montecarlo.faults import check_abort, check_fault
from repro.core.montecarlo.fused import run_fused_batch
from repro.core.montecarlo.journal import (
    SCALAR_RANGE,
    ShardJournal,
    journal_entropy,
    record_from_summary,
    run_digest,
    summary_parts_from_record,
)
from repro.core.montecarlo.results import MonteCarloResult, merge_totals
from repro.core.montecarlo.transport import (
    GridPlanesSpec,
    SharedGridPlanes,
    attach_grid_slice,
    attach_segment_cached,
    reap_stale_segments,
    resolve_stacked_transport,
)
from repro.core.policies.base import SimulationPolicy
from repro.core.policies.registry import resolve_policy
from repro.core.policies.stacked import StackedParams, stack_parameter_points
from repro.exceptions import ConfigurationError, SimulationError
from repro.simulation.confidence import (
    ConfidenceInterval,
    StreamingMoments,
    required_samples,
)
from repro.simulation.rng import RandomStreams


#: Ceiling on the *derived* (unpinned) shard size.  Shards stream back
#: constant-size summaries, but each shard materialises per-lifetime
#: arrays inside the batch kernels while it runs — capping the shard size
#: keeps that working set flat even when an adaptive round plans millions
#: of lifetimes.  An explicit ``MonteCarloConfig.shard_size`` overrides it.
DEFAULT_SHARD_CAP = 50_000


@dataclass(frozen=True)
class ShardSummary:
    """Constant-size outcome of one shard of simulated lifetimes.

    Attributes
    ----------
    shard_index:
        Position of the shard in the spawn tree (its ``spawn_child`` index).
    moments:
        Mergeable mean/variance of the shard's per-lifetime availabilities.
    totals:
        Summed event counters of the shard (``MonteCarloResult.totals``
        layout).
    """

    shard_index: int
    moments: StreamingMoments
    totals: Dict[str, float]


def plan_shards(n_iterations: int, shard_size: int) -> List[int]:
    """Split an iteration budget into shard sizes (all full but the last)."""
    if n_iterations < 1:
        raise SimulationError(f"need at least one iteration to shard, got {n_iterations!r}")
    if shard_size < 1:
        raise SimulationError(f"shard size must be at least 1, got {shard_size!r}")
    full, rest = divmod(int(n_iterations), int(shard_size))
    sizes = [int(shard_size)] * full
    if rest:
        sizes.append(rest)
    return sizes


def effective_shard_size(config: MonteCarloConfig, budget: Optional[int] = None) -> int:
    """Return the shard size the config implies for a round of ``budget``.

    An explicit ``shard_size`` pins the decomposition (making results
    independent of ``workers``); otherwise the round is split one shard
    per worker, capped at ``DEFAULT_SHARD_CAP`` lifetimes per shard.
    ``budget`` defaults to the first round, ``config.n_iterations``.
    """
    if config.shard_size is not None:
        return int(config.shard_size)
    budget = config.n_iterations if budget is None else int(budget)
    return min(max(1, math.ceil(budget / int(config.workers))), DEFAULT_SHARD_CAP)


def run_shard(
    config: MonteCarloConfig,
    master_entropy: int,
    shard_index: int,
    shard_size: int,
) -> ShardSummary:
    """Run one shard and summarise it (executed inside worker processes).

    The shard rebuilds its stream family from ``(master_entropy,
    shard_index)`` alone — the parent never ships generator state, so the
    draws are identical whether the shard runs in-process, in a forked
    worker or in a spawned one.
    """
    check_fault(shard_index)
    policy = resolve_policy(config.policy)
    streams = RandomStreams(master_entropy).spawn_child(shard_index)
    if config.kernel == "fused":
        # The fused loop replaces the whole batch kernel; it draws from the
        # shard's own spawn-indexed "fused" stream, so the decomposition
        # stays worker-count-independent exactly like the numpy path.
        batch = run_fused_batch(
            policy,
            config.params,
            config.horizon_hours,
            shard_size,
            streams,
            biasing=config.biasing,
        )
    else:
        # The kernel context is entered *inside* the submitted callable
        # (here), not around the submission: the routing is thread-local, so
        # this is what makes thread-pool shards see the backend.  Parents
        # resolve ``kernel`` to a concrete value first, so the auto-fallback
        # warning never fires inside a worker.
        with kernel_context(config.kernel):
            batch = policy.simulate_shard(
                config.params,
                config.horizon_hours,
                shard_size,
                streams,
                force_scalar=config.executor == "scalar",
                biasing=config.biasing,
            )
    return ShardSummary(
        shard_index=shard_index,
        moments=StreamingMoments.from_samples(
            batch.weighted_availabilities(), weights=batch.weights()
        ),
        totals=batch.totals(),
    )


#: Environment flag the pool initializer sets in every worker — the hook
#: the oversubscription regression test probes for.
WORKER_INIT_ENV = "REPRO_MC_WORKER"

#: Thread-count knobs of the BLAS/OpenMP runtimes numpy may load.
_BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


def _clamp_blas_threadpools() -> None:
    """Best-effort clamp of BLAS pools that are already initialised.

    Forked workers inherit the parent's loaded BLAS with its configured
    thread count, which environment variables can no longer change; poke
    the runtime's setter directly when its symbol is reachable.
    """
    try:
        import ctypes

        lib = ctypes.CDLL(None)
    except Exception:
        return
    for symbol in (
        "openblas_set_num_threads",
        "openblas_set_num_threads64_",
        "MKL_Set_Num_Threads",
        "omp_set_num_threads",
    ):
        setter = getattr(lib, symbol, None)
        if setter is not None:
            try:
                setter(1)
            except Exception:
                pass


def _worker_initializer() -> None:
    """Pin worker-side BLAS/OpenMP pools to one thread.

    Without this, ``workers=N`` forked from a numpy-initialised parent runs
    up to ``N x cores`` BLAS threads — oversubscription that *slows* the
    sweep down.  The env guard respects thread counts an operator pinned
    explicitly: when any of the knobs is already set, both the
    ``setdefault`` and the runtime clamp leave that configuration alone.
    The marker variable lets tests assert the initializer actually ran in
    every worker.
    """
    os.environ[WORKER_INIT_ENV] = "1"
    pinned_explicitly = any(var in os.environ for var in _BLAS_ENV_VARS)
    for var in _BLAS_ENV_VARS:
        os.environ.setdefault(var, "1")
    if not pinned_explicitly:
        # Forked workers inherit already-initialised BLAS pools that env
        # vars can no longer steer — clamp those through the runtime, but
        # only when the operator expressed no preference of their own.
        _clamp_blas_threadpools()


def worker_probe() -> Tuple[int, bool]:
    """Return ``(pid, initializer_ran)`` from inside a pool worker."""
    return os.getpid(), os.environ.get(WORKER_INIT_ENV) == "1"


def _make_pool(workers: int, kind: str = "process") -> Executor:
    """Build the worker pool, preferring cheap ``fork`` workers on Linux.

    Fork is only *safe* on Linux: macOS lists it as available but forking a
    process with framework state initialised (numpy is already imported)
    can crash workers, which is why CPython's default there is spawn.
    Every worker runs :func:`_worker_initializer` before its first shard.

    ``kind="thread"`` builds a :class:`ThreadPoolExecutor` instead: shards
    run in-process, sharing the parent's module state and — on the stacked
    path — the materialised grid planes outright, with no BLAS re-pinning
    needed (the threads inherit the parent's configuration).
    """
    if kind == "thread":
        return ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-mc")
    use_fork = sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if use_fork else None)
    return ProcessPoolExecutor(
        max_workers=workers, mp_context=context, initializer=_worker_initializer
    )


def _crosses_process_boundary(pool: Optional[Executor]) -> bool:
    """Return whether shards submitted to ``pool`` leave this process.

    Thread pools keep shards in-process (their futures see the parent's
    memory directly); anything else pooled is treated as a process boundary,
    which errs on the side of the transports that always work.
    """
    return pool is not None and not isinstance(pool, ThreadPoolExecutor)


@contextlib.contextmanager
def worker_pool(workers: int, kind: str = "process"):
    """Context manager yielding a reusable pool (or ``None`` for 1 worker).

    Sweeps that run many sharded studies (the experiment grids) should
    create one pool here and pass it to each :func:`run_sharded` /
    ``run_monte_carlo`` call, instead of paying pool startup — worker
    process creation, and on spawn platforms a numpy/scipy re-import per
    worker — once per study.

    ``kind`` picks the executor (:data:`repro.core.montecarlo.config.POOLS`):
    ``"serial"`` yields ``None`` regardless of ``workers``, running the
    identical shard plan sequentially in-process — the pool oracle.
    """
    if int(workers) <= 1 or kind == "serial":
        yield None
        return
    pool = _make_pool(int(workers), kind)
    try:
        yield pool
    finally:
        pool.shutdown()


# ----------------------------------------------------------------------
# Fault-tolerant shard execution
# ----------------------------------------------------------------------
@dataclass
class _ShardStats:
    """Mutable per-run provenance counters of the fault-tolerant executor."""

    retried: int = 0
    resumed: int = 0
    completed: int = 0
    interrupted: bool = False


def _terminate_pool_workers(pool: Executor) -> None:
    """Best-effort SIGTERM of a process pool's workers (hung-shard path).

    ``shutdown(cancel_futures=True)`` only drops *queued* work; a worker
    stuck inside a shard never returns to pick up the cancellation, so the
    processes themselves must be terminated before the pool's threads can
    be abandoned.  Reaches into ``ProcessPoolExecutor._processes`` —
    private, but guarded so an implementation change degrades to leaving
    the workers to die with the parent instead of crashing the run.
    Thread pools have nothing to terminate (threads cannot be killed); a
    hung thread is simply abandoned with its executor.
    """
    processes = getattr(pool, "_processes", None)
    if not processes:
        return
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:
            pass


class _PoolSupervisor:
    """Owns the worker pool behind one fault-tolerant run.

    Wraps either an internally created pool (rebuilt on worker loss or
    timeout) or an externally shared one (never rebuilt: its lifecycle —
    and the other studies running on it — belong to the caller, so a
    broken external pool re-raises instead).
    """

    def __init__(self, workers: int, kind: str, pool: Optional[Executor]) -> None:
        self._external = pool is not None
        self.pool = pool
        self._workers = int(workers)
        self._kind = kind

    def ensure(self) -> Optional[Executor]:
        """Create the own pool if the config calls for one; return it."""
        if (
            self.pool is None
            and not self._external
            and self._workers > 1
            and self._kind != "serial"
        ):
            self.pool = _make_pool(self._workers, self._kind)
        return self.pool

    def rebuild(self) -> Optional[Executor]:
        """Replace a failed own pool with a fresh one (``None`` if external).

        The failed pool's queued futures are cancelled and its worker
        processes terminated — a hung worker would otherwise keep its
        stuck shard (and on fork platforms its copy of the planes) alive
        forever.  In-flight shards are the caller's to resubmit.
        """
        if self._external:
            return None
        pool, self.pool = self.pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            _terminate_pool_workers(pool)
        self.pool = _make_pool(self._workers, self._kind)
        return self.pool

    def abort(self) -> None:
        """Tear the own pool down without waiting (failure/interrupt path)."""
        if self._external or self.pool is None:
            return
        pool, self.pool = self.pool, None
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        _terminate_pool_workers(pool)

    def close(self) -> None:
        """Orderly shutdown of the own pool (no-op for external pools)."""
        if self._external or self.pool is None:
            return
        pool, self.pool = self.pool, None
        pool.shutdown()


def _backoff_sleep(backoff: float, attempt: int) -> None:
    """Pause ``backoff * 2**(attempt-1)`` seconds before a resubmission."""
    if backoff > 0.0:
        time.sleep(backoff * (2.0 ** (attempt - 1)))


def _gather_shards(
    items: Sequence,
    run_inline: Callable,
    submit: Callable,
    supervisor: _PoolSupervisor,
    config: MonteCarloConfig,
    stats: _ShardStats,
) -> Iterator:
    """Yield one result per item, in item order, surviving shard failures.

    This is the retry engine both the scalar and the stacked path run on.
    ``items`` are opaque shard descriptors; ``run_inline(item)`` executes
    one in the calling thread, ``submit(pool, item)`` schedules one on the
    pool.  Because every shard recomputes bit-identical records from the
    master entropy and its stream index alone, a resubmission *is* the
    original shard — retries change provenance counters, never numbers.

    Failure handling, per ``config``:

    * an **in-shard exception** resubmits just that shard (exponential
      ``retry_backoff``), up to ``max_shard_retries`` attempts per shard;
    * a **timeout** — the next unfinished shard in plan order took longer
      than ``shard_timeout`` — and a **broken pool** (worker killed) tear
      the own pool down, rebuild it, and resubmit every unfinished shard;
      the triggering shard is charged one retry, innocent-bystander
      resubmissions are free (total rebuilds stay bounded by
      ``shards x max_shard_retries``);
    * on the inline path (no pool) only in-shard exceptions are
      retryable — there is no second thread to enforce a timeout from, and
      a worker loss cannot happen in-process;
    * an externally shared pool is never rebuilt: timeouts and broken
      pools re-raise so the owner decides (in-shard retries still work).

    Pending futures are cancelled on every abnormal exit, including
    generator close (``KeyboardInterrupt`` in the consumer).
    """
    timeout = config.shard_timeout
    max_retries = int(config.max_shard_retries)
    backoff = float(config.retry_backoff)
    pool = supervisor.ensure()
    if pool is None:
        for item in items:
            attempt = 0
            while True:
                try:
                    yield run_inline(item)
                    break
                except Exception:
                    attempt += 1
                    if attempt > max_retries:
                        raise
                    stats.retried += 1
                    _backoff_sleep(backoff, attempt)
        return
    pending = {index: submit(pool, item) for index, item in enumerate(items)}
    attempts = [0] * len(items)
    try:
        # Collect in item (= plan) order so the merge stays deterministic
        # regardless of which worker finishes first.
        for index in range(len(items)):
            while True:
                try:
                    result = pending[index].result(timeout=timeout)
                    del pending[index]
                    yield result
                    break
                except FuturesTimeout:
                    attempts[index] += 1
                    if attempts[index] > max_retries:
                        raise SimulationError(
                            f"shard {index} of {len(items)} did not finish "
                            f"within shard_timeout={timeout}s after "
                            f"{attempts[index]} attempts"
                        )
                    new_pool = supervisor.rebuild()
                    if new_pool is None:
                        raise SimulationError(
                            f"shard {index} timed out after {timeout}s on an "
                            "externally owned pool, which this run cannot "
                            "rebuild; pass an internal pool or raise "
                            "shard_timeout"
                        )
                    pool = new_pool
                    stats.retried += 1
                    _backoff_sleep(backoff, attempts[index])
                    for other in list(pending):
                        pending[other] = submit(pool, items[other])
                except BrokenExecutor:
                    attempts[index] += 1
                    if attempts[index] > max_retries:
                        raise
                    new_pool = supervisor.rebuild()
                    if new_pool is None:
                        raise  # external pool: the owner handles worker loss
                    pool = new_pool
                    stats.retried += 1
                    _backoff_sleep(backoff, attempts[index])
                    for other in list(pending):
                        pending[other] = submit(pool, items[other])
                except Exception:
                    attempts[index] += 1
                    if attempts[index] > max_retries:
                        raise
                    stats.retried += 1
                    _backoff_sleep(backoff, attempts[index])
                    pending[index] = submit(pool, items[index])
    except BaseException:
        # Drop the remaining shards even on a shared pool, so a failure
        # doesn't leave orphan work blocking later studies.  GeneratorExit
        # lands here too, when an interrupted consumer closes the gather.
        for future in pending.values():
            future.cancel()
        raise


def _partial_interval(
    moments: StreamingMoments, confidence: float
) -> ConfidenceInterval:
    """Interval of a possibly-degenerate partial result (interrupt path).

    An interrupted run may have merged fewer than two lifetimes for a
    point; a Student-t interval does not exist there, so the partial
    result carries a NaN-width placeholder instead of refusing to report
    the shards that did finish.
    """
    try:
        return moments.interval(confidence)
    except SimulationError:
        return ConfidenceInterval(
            mean=moments.mean if moments.n else float("nan"),
            half_width=float("nan"),
            confidence=confidence,
            n_samples=moments.n,
            std_error=float("nan"),
        )


def _open_journal(
    configs: Sequence[MonteCarloConfig],
    policy: SimulationPolicy,
    master_entropy: int,
    *,
    shard_size: Optional[int],
    crn: bool = False,
    kernel: str = "numpy",
    scalar: bool = False,
) -> Optional[ShardJournal]:
    """Open the run's checkpoint journal when one is configured."""
    first = configs[0]
    path = first.journal_path
    if path is None:
        return None
    digest, key = run_digest(
        configs,
        policy,
        master_entropy=master_entropy,
        shard_size=shard_size,
        crn=crn,
        kernel=kernel,
        scalar=scalar,
    )
    return ShardJournal.open(
        path, digest, key, master_entropy, require_existing=first.resume is not None
    )


def _resolve_master_entropy(config: MonteCarloConfig) -> int:
    """Resolve the run's master entropy, honouring a resumed journal.

    A ``resume=`` run with ``seed=None`` adopts the journaled run's
    entropy (the digest check then verifies the rest of the key); in every
    other case the entropy derives from the seed exactly as before.
    """
    if config.resume is not None and config.seed is None:
        adopted = journal_entropy(config.resume)
        if adopted is not None:
            return adopted
    return RandomStreams(config.seed).seed_entropy


def run_sharded(
    config: MonteCarloConfig, pool: Optional[Executor] = None
) -> MonteCarloResult:
    """Run the configured study on the sharded executor and summarise it.

    Dispatches shard rounds across ``config.workers`` processes (in-process
    for ``workers=1``), merges the streaming summaries, and — when
    ``config.target_half_width`` is set — keeps adding rounds until the
    interval is tight enough or ``config.adaptive_ceiling`` is hit.

    ``pool`` lets a sweep share one executor across many studies (see
    :func:`worker_pool`); its lifecycle then belongs to the caller.

    Failed shards are retried per ``config.max_shard_retries`` /
    ``shard_timeout`` (see :func:`_gather_shards`); with ``checkpoint=`` /
    ``resume=`` completed shard summaries go to a durable journal and
    already-journaled shards are skipped.  ``KeyboardInterrupt``/SIGTERM
    returns the partial result flagged ``interrupted=True`` instead of
    raising, with the journal flushed so the run can resume.
    """
    policy = resolve_policy(config.policy)  # fail fast on unknown policies
    # Resolve the kernel parent-side so workers receive a concrete backend
    # ("auto" warns/falls back here, exactly once per process, not once per
    # shard or per worker).
    config = replace(config, kernel=resolve_kernel(config.kernel))
    master_entropy = _resolve_master_entropy(config)
    target = config.target_half_width
    ceiling = config.adaptive_ceiling if target is not None else config.n_iterations

    moments = StreamingMoments()
    totals: Dict[str, float] = {}
    next_index = 0
    round_budget = config.n_iterations

    stats = _ShardStats()
    supervisor = _PoolSupervisor(int(config.workers), config.pool, pool)
    journal = _open_journal(
        [config],
        policy,
        master_entropy,
        shard_size=config.shard_size,
        kernel=config.kernel,
        scalar=True,
    )
    try:
        while round_budget > 0:
            # A pinned shard_size fixes the decomposition (bit-identical
            # across worker counts); the default re-splits every round one
            # shard per worker, so smaller adaptive follow-up rounds still
            # fan out instead of idling all but one worker.
            shard_size = effective_shard_size(config, round_budget)
            sizes = plan_shards(round_budget, shard_size)
            plan = [(next_index + offset, size) for offset, size in enumerate(sizes)]
            next_index += len(sizes)
            summaries: List[Optional[ShardSummary]] = [None] * len(plan)
            to_run: List[Tuple[int, int, int]] = []
            for position, (index, size) in enumerate(plan):
                journaled = (
                    journal.records((index,) + SCALAR_RANGE)
                    if journal is not None
                    else None
                )
                if journaled is not None:
                    shard_moments, shard_totals = summary_parts_from_record(journaled)
                    summaries[position] = ShardSummary(index, shard_moments, shard_totals)
                    stats.resumed += 1
                else:
                    to_run.append((position, index, size))
            gathered = _gather_shards(
                [(index, size) for _, index, size in to_run],
                run_inline=lambda item: run_shard(
                    config, master_entropy, item[0], item[1]
                ),
                submit=lambda pool_, item: pool_.submit(
                    run_shard, config, master_entropy, item[0], item[1]
                ),
                supervisor=supervisor,
                config=config,
                stats=stats,
            )
            try:
                for (position, index, _), summary in zip(to_run, gathered):
                    summaries[position] = summary
                    if journal is not None:
                        journal.append(
                            (index,) + SCALAR_RANGE,
                            record_from_summary(summary.moments, summary.totals),
                        )
                    stats.completed += 1
                    check_abort(stats.completed)
            except KeyboardInterrupt:
                stats.interrupted = True
                gathered.close()
                supervisor.abort()
            # Merge the round in shard-index (= plan) order; on an
            # interrupted round only the shards collected before the
            # interrupt contribute (the partial result's honest content).
            merged = [summary for summary in summaries if summary is not None]
            for summary in merged:
                moments.merge(summary.moments)
            totals = merge_totals([totals] + [s.totals for s in merged])
            if stats.interrupted:
                break
            round_budget = _next_round_budget(config, moments, shard_size, ceiling)
    except BaseException:
        # Don't make a failed shard wait for the rest of the round: drop
        # queued work and leave in-flight shards to die with their workers
        # so the error surfaces immediately.  An externally owned pool is
        # left alone — its lifecycle belongs to the caller.
        supervisor.abort()
        raise
    finally:
        supervisor.close()
        if journal is not None:
            journal.close()

    interval = (
        _partial_interval(moments, config.confidence)
        if stats.interrupted
        else moments.interval(config.confidence)
    )
    return MonteCarloResult(
        availability=moments.mean if moments.n else float("nan"),
        interval=interval,
        n_iterations=moments.n,
        horizon_hours=config.horizon_hours,
        totals=totals,
        label=config.label(),
        seed_entropy=master_entropy,
        ess=moments.ess() if config.biasing is not None and moments.n else None,
        retried_shards=stats.retried,
        resumed_shards=stats.resumed,
        interrupted=stats.interrupted,
    )


# ----------------------------------------------------------------------
# Stacked grids: sharding the flattened point x lifetime axis
# ----------------------------------------------------------------------
#: Shard size of a stacked grid when no explicit ``shard_size`` is pinned.
#: Deliberately **independent of the worker count**: the decomposition (and
#: therefore every random draw) is the same for any ``workers``, making
#: ``workers=N`` bit-identical to ``workers=1`` by construction rather than
#: only under a pinned shard size.
DEFAULT_STACKED_SHARD_SIZE = 8192


@dataclass(frozen=True)
class StackedShard:
    """One contiguous range of the flattened ``point x lifetime`` axis.

    Attributes
    ----------
    stream_index:
        Spawn index of the shard's stream family.  Unique per shard on the
        plain stacked path; on the CRN path it is the *within-point* shard
        index, so every point reuses the same family sequence (that reuse
        is the common-random-numbers coupling).
    start / stop:
        Flat row range ``[start, stop)`` covered by the shard.
    point_indices / counts:
        The sweep points the range intersects, and how many of the shard's
        rows belong to each (in point-major order).
    """

    stream_index: int
    start: int
    stop: int
    point_indices: Tuple[int, ...]
    counts: Tuple[int, ...]


def plan_stacked_shards(
    counts: Sequence[int], shard_size: int, crn: bool = False
) -> List[StackedShard]:
    """Cut the flattened grid into shards (point-major, deterministic).

    ``crn=False`` tiles the whole flat axis with fixed-size shards that may
    span several points; ``crn=True`` restarts the tiling (and the stream
    indices) at every point boundary so all points consume identical base
    streams.
    """
    sizes = [int(c) for c in counts]
    if not sizes:
        raise SimulationError("stacked planning requires at least one point")
    if any(size < 1 for size in sizes):
        raise SimulationError("every stacked point needs at least one lifetime")
    if int(shard_size) < 1:
        raise SimulationError(f"shard size must be at least 1, got {shard_size!r}")
    shard_size = int(shard_size)
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    shards: List[StackedShard] = []
    if crn:
        for point, (offset, size) in enumerate(zip(offsets[:-1], sizes)):
            for within, s in enumerate(range(0, size, shard_size)):
                stop = min(s + shard_size, size)
                shards.append(
                    StackedShard(
                        stream_index=within,
                        start=int(offset + s),
                        stop=int(offset + stop),
                        point_indices=(point,),
                        counts=(stop - s,),
                    )
                )
        return shards
    total = int(offsets[-1])
    for index, s in enumerate(range(0, total, shard_size)):
        stop = min(s + shard_size, total)
        point = int(np.searchsorted(offsets, s, side="right") - 1)
        points: List[int] = []
        segment_counts: List[int] = []
        while point < len(sizes) and offsets[point] < stop:
            points.append(point)
            segment_counts.append(
                int(min(offsets[point + 1], stop) - max(offsets[point], s))
            )
            point += 1
        shards.append(
            StackedShard(
                stream_index=index,
                start=s,
                stop=stop,
                point_indices=tuple(points),
                counts=tuple(segment_counts),
            )
        )
    return shards


def _simulate_stacked_shard(
    policy: SimulationPolicy,
    grid_slice: StackedParams,
    horizon_hours: float,
    master_entropy: int,
    shard: StackedShard,
    biasing: Optional[float] = None,
    kernel: str = "numpy",
) -> np.ndarray:
    """Simulate one shard's rows and summarise them as point records.

    Exactly like :func:`run_shard`, the stream family is rebuilt from
    ``(master_entropy, stream_index)`` alone, so the draws are identical
    in-process, forked or spawned — and identical for any worker count and
    any transport, because every transport feeds the kernel value-identical
    parameter rows.  ``kernel`` is the parent-resolved backend; the context
    is entered here, inside the (possibly thread-pooled) callable, because
    the routing is thread-local.
    """
    check_fault(shard.stream_index)
    streams = RandomStreams(master_entropy).spawn_child(shard.stream_index)
    if kernel == "fused":
        batch = run_fused_batch(
            policy, grid_slice, horizon_hours, len(grid_slice), streams, biasing=biasing
        )
    else:
        rng = streams.stream("montecarlo")
        with kernel_context(kernel):
            batch = policy.simulate_stacked(grid_slice, horizon_hours, rng, biasing=biasing)
    return segment_point_records(batch, shard.point_indices, shard.counts)


def run_stacked_shard(
    policy: SimulationPolicy,
    point_params: Sequence,
    horizon_hours: float,
    master_entropy: int,
    shard: StackedShard,
    biasing: Optional[float] = None,
    kernel: str = "numpy",
) -> np.ndarray:
    """Pickle-transport worker entry: rebuild the slice from scalars.

    ``point_params`` holds one scalar parameter point per entry of
    ``shard.point_indices``; the worker expands them into its own
    :class:`StackedParams` slice (``shard.counts`` rows each), so only a
    handful of scalars — never grid-sized arrays — cross the process
    boundary.  This is the fallback for hosts without usable shared memory
    and the bit-identity oracle of the zero-copy transport; the summary
    comes back as one :data:`~repro.core.montecarlo.batch.POINT_SUMMARY_DTYPE`
    record array either way.

    Periodic-scheme policies (the erasure family) re-resolve their scheme
    against each point worker-side, so the rebuilt slice carries the same
    per-row scheme planes the view/shm transports materialise parent-side.
    """
    schemes = (
        [policy.scheme] * len(point_params) if policy.has_periodic_checks else None
    )
    grid_slice = stack_parameter_points(point_params, shard.counts, schemes=schemes)
    return _simulate_stacked_shard(
        policy, grid_slice, horizon_hours, master_entropy, shard,
        biasing=biasing, kernel=kernel,
    )


def run_stacked_shard_shm(
    policy: SimulationPolicy,
    spec: GridPlanesSpec,
    horizon_hours: float,
    master_entropy: int,
    shard: StackedShard,
    biasing: Optional[float] = None,
    kernel: str = "numpy",
) -> np.ndarray:
    """Shared-memory worker entry: attach the planes, view the row range.

    The parent materialised the whole sweep's parameter planes once
    (:class:`~repro.core.montecarlo.transport.SharedGridPlanes`); this
    worker attaches by name and addresses its shard as read-only views of
    rows ``[shard.start, shard.stop)`` — zero copies, and the only pickled
    payload per shard is the tiny spec.
    """
    segment = attach_segment_cached(spec.name)
    grid_slice = attach_grid_slice(spec, segment.buf, shard.start, shard.stop)
    try:
        return _simulate_stacked_shard(
            policy, grid_slice, horizon_hours, master_entropy, shard,
            biasing=biasing, kernel=kernel,
        )
    finally:
        # Drop the buffer views promptly; the cached attachment itself is
        # reused by this worker's next shard and replaced (closed) when a
        # different sweep's segment comes along.
        del grid_slice


def _validate_stacked(
    configs: Sequence[MonteCarloConfig],
) -> Tuple[SimulationPolicy, MonteCarloConfig]:
    """Check that the configs form one coherent stacked grid."""
    if not configs:
        raise ConfigurationError("a stacked run requires at least one config")
    first = configs[0]
    policy = resolve_policy(first.policy)
    if not policy.can_stack:
        raise ConfigurationError(
            f"policy {policy.name!r} has no stacked-capable batch kernel; "
            "run the sweep point by point instead"
        )
    if first.executor == "scalar":
        raise ConfigurationError(
            "the stacked engine is inherently vectorised; use the per-point "
            "path for executor='scalar'"
        )
    for config in configs:
        if resolve_policy(config.policy) != policy:
            raise ConfigurationError("stacked configs must share one policy")
        if config.collect_trace:
            raise ConfigurationError("event traces require the per-point scalar path")
        for attr in (
            "horizon_hours", "confidence", "seed", "executor", "workers",
            "shard_size", "transport", "target_half_width", "biasing",
            "allocator", "kernel", "pool", "shard_timeout",
            "max_shard_retries", "retry_backoff", "checkpoint", "resume",
        ):
            if getattr(config, attr) != getattr(first, attr):
                raise ConfigurationError(
                    f"stacked configs must share {attr!r}: "
                    f"{getattr(config, attr)!r} != {getattr(first, attr)!r}"
                )
    return policy, first


def stacked_shard_size(config: MonteCarloConfig) -> int:
    """Return the stacked decomposition's shard size for a config."""
    if config.shard_size is not None:
        return int(config.shard_size)
    return DEFAULT_STACKED_SHARD_SIZE


def _run_stacked_shards(
    policy: SimulationPolicy,
    configs: Sequence[MonteCarloConfig],
    horizon_hours: float,
    master_entropy: int,
    shards: Sequence[StackedShard],
    supervisor: _PoolSupervisor,
    stats: _ShardStats,
    mode: str = "pickle",
    grid: Optional[StackedParams] = None,
    spec: Optional[GridPlanesSpec] = None,
    biasing: Optional[float] = None,
    kernel: str = "numpy",
) -> Iterator[np.ndarray]:
    """Run the planned shards, yielding summary records in plan order.

    ``mode`` is the resolved transport: ``"pickle"`` ships each shard's
    scalar points and rebuilds the slice worker-side, ``"view"`` slices the
    materialised ``grid`` — in-process when unpooled, per-submission when the
    pool is a thread pool (threads see the parent's planes directly; no
    segment, no pickling, no rebuild) — and ``"shm"`` submits only the
    planes ``spec`` and workers attach the shared segment.  All three feed
    the kernels value-identical rows, so the records — and everything merged
    from them — are byte-identical across transports.

    Execution (plan-order collection, retry/timeout/rebuild semantics)
    delegates to :func:`_gather_shards`; every transport resubmits cleanly
    because a shard's inputs — scalar points, a grid view, or the planes
    spec — are parent-owned and survive any worker's death.
    """

    def _params(shard: StackedShard):
        return [configs[point].params for point in shard.point_indices]

    def _run_inline(shard: StackedShard) -> np.ndarray:
        if mode == "view":
            return _simulate_stacked_shard(
                policy, grid.slice(shard.start, shard.stop),
                horizon_hours, master_entropy, shard, biasing=biasing,
                kernel=kernel,
            )
        return run_stacked_shard(
            policy, _params(shard), horizon_hours, master_entropy, shard,
            biasing=biasing, kernel=kernel,
        )

    def _submit(pool: Executor, shard: StackedShard):
        if mode == "view":
            # Thread-pooled shards share the materialised grid outright:
            # each submission carries a zero-copy row-range view of the
            # parent's planes.  (Process pools never take this branch — the
            # transport resolver only yields "view" when shards stay
            # in-process.)
            return pool.submit(
                _simulate_stacked_shard, policy,
                grid.slice(shard.start, shard.stop),
                horizon_hours, master_entropy, shard, biasing, kernel,
            )
        if mode == "shm":
            return pool.submit(
                run_stacked_shard_shm, policy, spec,
                horizon_hours, master_entropy, shard, biasing, kernel,
            )
        return pool.submit(
            run_stacked_shard, policy, _params(shard),
            horizon_hours, master_entropy, shard, biasing, kernel,
        )

    first = configs[0]
    yield from _gather_shards(
        list(shards),
        run_inline=_run_inline,
        submit=_submit,
        supervisor=supervisor,
        config=first,
        stats=stats,
    )


def _merge_point_records(
    record_parts: Sequence[np.ndarray], n_points: int
) -> Tuple[List[StreamingMoments], List[Dict[str, float]]]:
    """Merge plan-ordered shard records into per-point moments and totals.

    The concatenated records are stably sorted by point, which groups each
    point's rows while preserving plan order within the group; the event
    totals then fall out of one ``np.add.reduceat`` per column, and the
    moments fold together with the same sequential Chan–Golub–LeVeque
    merges (in the same order) as the retired dict-of-floats transport —
    keeping ``workers=N`` bit-identical to ``workers=1`` and the whole
    merge bit-identical to the pre-record path.
    """
    moments = [StreamingMoments() for _ in range(n_points)]
    totals: List[Dict[str, float]] = [{} for _ in range(n_points)]
    parts = [part for part in record_parts if part.size]
    if not parts:
        return moments, totals
    records = np.concatenate(parts)
    records = records[np.argsort(records["point"], kind="stable")]
    points = records["point"]
    offsets = np.concatenate(([0], np.flatnonzero(np.diff(points)) + 1))
    sums = {
        key: np.add.reduceat(records[key], offsets)
        for key in POINT_SUMMARY_TOTAL_FIELDS
    }
    for row, point in enumerate(points[offsets]):
        totals[int(point)] = {
            key: float(sums[key][row]) for key in POINT_SUMMARY_TOTAL_FIELDS
        }
    for record in records:
        moments[int(record["point"])].merge(
            StreamingMoments(
                n=int(record["n"]),
                mean=float(record["mean"]),
                m2=float(record["m2"]),
                w_sum=float(record["w_sum"]),
                w2_sum=float(record["w2_sum"]),
            )
        )
    return moments, totals


def _point_result(
    config: MonteCarloConfig,
    moments: StreamingMoments,
    totals: Dict[str, float],
    horizon_hours: float,
    master_entropy: int,
    stats: Optional[_ShardStats] = None,
    carry_counters: bool = True,
) -> MonteCarloResult:
    """Assemble one point's result from its merged summaries.

    Shared by the grid run and :func:`replay_stacked_point` so the
    bit-identical-replay guarantee can never drift on the assembly side.
    ``stats`` is run-level provenance: the ``interrupted`` flag lands on
    every point (it qualifies each point's numbers), while the
    retry/resume *counters* — which count shards of the whole grid, not of
    any one point — are carried by the first point only
    (``carry_counters``), so summing over a sweep's points totals the run
    instead of multiplying it by the grid size.  An interrupted run
    additionally degrades under-sampled points to NaN-width intervals
    instead of raising.
    """
    interrupted = stats is not None and stats.interrupted
    interval = (
        _partial_interval(moments, config.confidence)
        if interrupted
        else moments.interval(config.confidence)
    )
    return MonteCarloResult(
        availability=moments.mean if moments.n else float("nan"),
        interval=interval,
        n_iterations=moments.n,
        horizon_hours=horizon_hours,
        totals=totals,
        label=config.label(),
        seed_entropy=master_entropy,
        ess=moments.ess() if config.biasing is not None and moments.n else None,
        retried_shards=stats.retried if stats is not None and carry_counters else 0,
        resumed_shards=stats.resumed if stats is not None and carry_counters else 0,
        interrupted=interrupted,
    )


def run_stacked_sharded(
    configs: Sequence[MonteCarloConfig],
    *,
    crn: bool = False,
    pool: Optional[Executor] = None,
) -> List[MonteCarloResult]:
    """Run a whole sweep grid as stacked shards and summarise it per point.

    This is the execution layer behind
    :func:`repro.core.montecarlo.batch.run_stacked` — see there for the API
    contract.  ``pool`` lets a caller share one executor across several
    grids; its lifecycle then belongs to the caller.

    The sweep's parameter planes cross the process boundary once, not once
    per shard: on the default ``transport="auto"`` the grid's broadcast
    arrays are materialised into a context-managed shared-memory segment
    (unlinked on every exit path) and workers attach read-only row-range
    views; shard summaries come back as fixed-width record arrays merged
    with array ops in plan order.  ``transport="pickle"`` retains the
    per-shard scalar rebuild — the spawn-platform fallback and the
    bit-identity oracle the shm path is verified against.
    """
    policy, first = _validate_stacked(configs)
    if first.target_half_width is not None and crn:
        raise ConfigurationError(
            "adaptive allocation re-plans shard rounds from the merged "
            "interval widths; it cannot preserve the common-random-numbers "
            "coupling"
        )
    counts = [int(config.n_iterations) for config in configs]
    shards = plan_stacked_shards(counts, stacked_shard_size(first), crn=crn)
    master_entropy = _resolve_master_entropy(first)
    horizon = float(first.horizon_hours)
    kernel = resolve_kernel(first.kernel)

    stats = _ShardStats()
    supervisor = _PoolSupervisor(int(first.workers), first.pool, pool)
    journal = _open_journal(
        configs,
        policy,
        master_entropy,
        shard_size=stacked_shard_size(first),
        crn=crn,
        kernel=kernel,
    )

    def _run_plan(
        plan: Sequence[StackedShard], mode: str, grid=None, spec=None
    ) -> List[Optional[np.ndarray]]:
        """Run one shard plan: splice journaled records, gather the rest.

        Returns the plan's record parts *in plan order*; entries still
        ``None`` after an interrupt are the shards that never finished.
        Freshly gathered shards are journaled as they are collected.
        """
        parts: List[Optional[np.ndarray]] = [None] * len(plan)
        to_run: List[Tuple[int, StackedShard]] = []
        for position, shard in enumerate(plan):
            key = (shard.stream_index, shard.start, shard.stop)
            journaled = journal.records(key) if journal is not None else None
            if journaled is not None:
                parts[position] = journaled
                stats.resumed += 1
            else:
                to_run.append((position, shard))
        gathered = _run_stacked_shards(
            policy, configs, horizon, master_entropy,
            [shard for _, shard in to_run], supervisor, stats,
            mode=mode, grid=grid, spec=spec, biasing=first.biasing,
            kernel=kernel,
        )
        try:
            for (position, shard), records in zip(to_run, gathered):
                parts[position] = records
                if journal is not None:
                    journal.append(
                        (shard.stream_index, shard.start, shard.stop), records
                    )
                stats.completed += 1
                check_abort(stats.completed)
        except KeyboardInterrupt:
            stats.interrupted = True
            gathered.close()
            supervisor.abort()
        return parts

    record_parts: List[np.ndarray] = []
    planes: Optional[SharedGridPlanes] = None
    try:
        supervisor.ensure()
        # Transport resolution keys on whether shards actually leave the
        # process: a thread pool (own or caller-shared) keeps them here, so
        # it gets the zero-copy "view" planes — the whole point of the
        # thread executor — instead of a shared-memory segment.
        mode = resolve_stacked_transport(
            first.transport, pooled=_crosses_process_boundary(supervisor.pool)
        )
        grid = spec = None
        schemes = (
            [policy.scheme] * len(configs) if policy.has_periodic_checks else None
        )
        if mode == "view":
            # Materialise the whole grid's broadcast planes exactly once
            # per sweep; in-process shards address them as row-range views.
            grid = stack_parameter_points(
                [c.params for c in configs], counts, schemes=schemes
            )
        elif mode == "shm":
            # Recover segments a SIGKILL'd earlier run left behind before
            # creating this sweep's own (atexit-registered) planes.
            reap_stale_segments()
            # Write the planes straight into the shared segment — one pass
            # over the grid bytes, no intermediate full-size arrays.
            planes = SharedGridPlanes.from_points(
                [c.params for c in configs], counts, schemes=schemes
            )
            spec = planes.spec
        record_parts.extend(
            part
            for part in _run_plan(shards, mode, grid=grid, spec=spec)
            if part is not None
        )
        if first.target_half_width is not None and not stats.interrupted:
            # CI-width-driven adaptive allocation: between rounds, merge
            # what every point has so far and dispatch the next round's
            # lifetimes to the points whose intervals are still too wide.
            # Follow-up rounds rebuild their rows from scalars (the pickle
            # transport) because the view/shm planes were laid out for the
            # initial uniform plan only; stream indices continue the global
            # shard sequence, so the whole run — rounds, allocations and
            # draws — is a pure function of the master seed.  Resumed runs
            # replay the identical allocation: journaled shards feed the
            # same merged moments into the same planner, so each round's
            # plan (and the journal keys) line up shard for shard.
            next_index = len(shards)
            while True:
                moments, _ = _merge_point_records(record_parts, len(configs))
                round_counts = _allocator_round_counts(configs, moments, first)
                if not any(round_counts):
                    break
                round_shards = _plan_allocator_shards(
                    round_counts, stacked_shard_size(first), next_index
                )
                next_index += len(round_shards)
                record_parts.extend(
                    part
                    for part in _run_plan(round_shards, "pickle")
                    if part is not None
                )
                if stats.interrupted:
                    break
    except BaseException:
        # Don't make a failed shard wait for the rest of the round: drop
        # queued work and leave in-flight shards to die with their workers
        # so the error surfaces immediately.  An externally owned pool is
        # left alone — its lifecycle belongs to the caller.
        supervisor.abort()
        raise
    finally:
        # The planes outlive every shard but never the sweep: unlink on
        # all exit paths so no /dev/shm segment survives a failure.
        if planes is not None:
            planes.dispose()
        supervisor.close()
        if journal is not None:
            journal.close()

    moments, point_totals = _merge_point_records(record_parts, len(configs))
    return [
        _point_result(
            config, point_moments, totals, horizon, master_entropy, stats,
            carry_counters=index == 0,
        )
        for index, (config, point_moments, totals) in enumerate(
            zip(configs, moments, point_totals)
        )
    ]


def _allocator_round_counts(
    configs: Sequence[MonteCarloConfig],
    moments: Sequence[StreamingMoments],
    first: MonteCarloConfig,
) -> List[int]:
    """Size every point's next adaptive round (0 = the point is done).

    Per point this is the same planning discipline as the single-point
    adaptive loop (:func:`_next_round_budget`): stop at the target or the
    point's ceiling, double through the zero-variance degeneracy, otherwise
    close the point's own ``required_samples`` gap.  The ``"ci_width"``
    allocator dispatches exactly those per-point gaps — wide intervals get
    big rounds, finished points get nothing; the ``"uniform"`` allocator
    levels every unmet point up to the largest gap, the naive
    equal-budget discipline kept as the baseline.
    """
    target = first.target_half_width
    needs: List[int] = []
    for config, point_moments in zip(configs, moments):
        ceiling = config.adaptive_ceiling
        headroom = ceiling - point_moments.n
        if headroom <= 0:
            needs.append(0)
            continue
        if point_moments.m2 == 0.0:
            # Degenerate zero-width interval (no event observed yet): keep
            # sampling, doubling per round, until an event or the ceiling.
            needs.append(int(min(max(point_moments.n, 1), headroom)))
            continue
        if point_moments.interval(config.confidence).half_width <= target:
            needs.append(0)
            continue
        try:
            needed = required_samples(
                point_moments.std(), target, confidence=config.confidence
            )
        except SimulationError:
            needed = ceiling
        needs.append(int(min(max(needed - point_moments.n, 1), headroom)))
    if first.allocator == "uniform" and any(needs):
        biggest = max(needs)
        needs = [
            min(biggest, config.adaptive_ceiling - point_moments.n) if need else 0
            for config, point_moments, need in zip(configs, moments, needs)
        ]
    return needs


def _plan_allocator_shards(
    round_counts: Sequence[int], shard_size: int, first_index: int
) -> List[StackedShard]:
    """Plan one adaptive round over the points with non-zero budgets.

    The round's flat axis covers only those points (remapped back to their
    grid indices), and stream indices continue the run's global shard
    sequence at ``first_index`` — every shard family stays unique, and a
    deterministic allocation replays to the same draws from the master
    seed alone.
    """
    active = [index for index, count in enumerate(round_counts) if count > 0]
    planned = plan_stacked_shards(
        [round_counts[index] for index in active], shard_size
    )
    return [
        StackedShard(
            stream_index=first_index + shard.stream_index,
            start=shard.start,
            stop=shard.stop,
            point_indices=tuple(active[point] for point in shard.point_indices),
            counts=shard.counts,
        )
        for shard in planned
    ]


def replay_stacked_point(
    configs: Sequence[MonteCarloConfig],
    point_index: int,
    *,
    crn: bool = False,
) -> MonteCarloResult:
    """Re-run one sweep point of a stacked grid, bit-identical to the grid.

    Only the shards whose flat ranges intersect the point are executed (the
    decomposition and every shard's stream family are deterministic in the
    master seed), so a single point of a large grid can be audited without
    paying for the rest.  The returned result equals the full grid run's
    entry for that point exactly.
    """
    policy, first = _validate_stacked(configs)
    point = int(point_index)
    if not 0 <= point < len(configs):
        raise ConfigurationError(
            f"point index {point_index!r} outside the grid of {len(configs)} points"
        )
    if first.target_half_width is not None:
        # Adaptive rounds are sized from *all* points' merged interval
        # widths, so one point's shards cannot be derived in isolation.
        # Replay instead re-runs the whole allocation single-process —
        # rounds, allocations and stream indices are deterministic in the
        # master seed, so the result still equals the grid run's entry bit
        # for bit.
        return run_stacked_sharded(configs, crn=crn, pool=None)[point]
    counts = [int(config.n_iterations) for config in configs]
    shards = [
        shard
        for shard in plan_stacked_shards(counts, stacked_shard_size(first), crn=crn)
        if point in shard.point_indices
    ]
    master_entropy = RandomStreams(first.seed).seed_entropy
    horizon = float(first.horizon_hours)
    # Replay always rebuilds the intersecting shards' rows from scalars
    # (the pickle path): it touches only those rows, instead of
    # materialising the whole grid's planes to audit one point.  The
    # transports are value-identical, so the replayed result still equals
    # the grid run's entry bit for bit, whatever transport that run used.
    record_parts = list(
        _run_stacked_shards(
            policy, configs, horizon, master_entropy, shards,
            _PoolSupervisor(1, "serial", None), _ShardStats(),
            mode="pickle", biasing=first.biasing,
            kernel=resolve_kernel(first.kernel),
        )
    )
    moments, totals = _merge_point_records(record_parts, len(configs))
    return _point_result(
        configs[point], moments[point], totals[point], horizon, master_entropy
    )


def _next_round_budget(
    config: MonteCarloConfig,
    moments: StreamingMoments,
    shard_size: int,
    ceiling: int,
) -> int:
    """Return how many more lifetimes the adaptive loop should dispatch.

    Zero means stop: either adaptive mode is off, the interval already
    meets the target, or the ceiling is exhausted.
    """
    target = config.target_half_width
    if target is None:
        return 0
    headroom = ceiling - moments.n
    if headroom <= 0:
        return 0
    if moments.m2 == 0.0:
        # Zero observed variance (e.g. no downtime event in any lifetime at
        # rare-event parameters) makes the interval width 0, which would
        # trivially "meet" any target.  That is degeneracy, not
        # convergence — keep sampling, doubling per round, until either an
        # event produces a real interval or the ceiling decides.
        return min(max(moments.n, shard_size), headroom)
    # The first round merged config.n_iterations >= 2 samples (config
    # validation), so the interval always exists here.
    if moments.interval(config.confidence).half_width <= target:
        return 0
    try:
        needed = required_samples(moments.std(), target, confidence=config.confidence)
    except SimulationError:
        # Planner overflow (pathologically tight target): run out the
        # remaining ceiling instead of giving up.
        needed = ceiling
    # Always make progress by at least one shard; never exceed the ceiling.
    return min(max(needed - moments.n, shard_size), headroom)
