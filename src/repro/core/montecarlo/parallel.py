"""Sharded parallel Monte Carlo executor with streaming aggregation.

This is the scale-out layer above the vectorised batch kernels: the
iteration budget is split into fixed-size *shards*, each shard runs on its
own :class:`~repro.simulation.rng.RandomStreams` family (spawned from the
master seed at the shard's index, so streams never collide and never
depend on scheduling order), and shard results come back as constant-size
summaries — Chan–Golub–LeVeque mergeable moments plus event totals —
rather than per-lifetime sample arrays.  Merging is deterministic
(shard-index order) and exact, so

* ``workers=1`` and ``workers=N`` produce bit-identical results for the
  same shard decomposition, and
* memory stays flat no matter how many lifetimes are simulated.

On top of the shard rounds sits **CI-driven adaptive stopping**: with
``MonteCarloConfig.target_half_width`` set, the executor keeps dispatching
rounds — sized by the :func:`~repro.simulation.confidence.required_samples`
planner — until the Student-t interval is tight enough or the configured
iteration ceiling is reached.  ``mc --target-half-width 1e-5`` therefore
replaces guessing ``--iterations``.
"""

from __future__ import annotations

import contextlib
import math
import multiprocessing
import sys
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.core.montecarlo.config import MonteCarloConfig
from repro.core.montecarlo.results import MonteCarloResult, merge_totals
from repro.core.policies.registry import resolve_policy
from repro.exceptions import SimulationError
from repro.simulation.confidence import StreamingMoments, required_samples
from repro.simulation.rng import RandomStreams


#: Ceiling on the *derived* (unpinned) shard size.  Shards stream back
#: constant-size summaries, but each shard materialises per-lifetime
#: arrays inside the batch kernels while it runs — capping the shard size
#: keeps that working set flat even when an adaptive round plans millions
#: of lifetimes.  An explicit ``MonteCarloConfig.shard_size`` overrides it.
DEFAULT_SHARD_CAP = 50_000


@dataclass(frozen=True)
class ShardSummary:
    """Constant-size outcome of one shard of simulated lifetimes.

    Attributes
    ----------
    shard_index:
        Position of the shard in the spawn tree (its ``spawn_child`` index).
    moments:
        Mergeable mean/variance of the shard's per-lifetime availabilities.
    totals:
        Summed event counters of the shard (``MonteCarloResult.totals``
        layout).
    """

    shard_index: int
    moments: StreamingMoments
    totals: Dict[str, float]


def plan_shards(n_iterations: int, shard_size: int) -> List[int]:
    """Split an iteration budget into shard sizes (all full but the last)."""
    if n_iterations < 1:
        raise SimulationError(f"need at least one iteration to shard, got {n_iterations!r}")
    if shard_size < 1:
        raise SimulationError(f"shard size must be at least 1, got {shard_size!r}")
    full, rest = divmod(int(n_iterations), int(shard_size))
    sizes = [int(shard_size)] * full
    if rest:
        sizes.append(rest)
    return sizes


def effective_shard_size(config: MonteCarloConfig, budget: Optional[int] = None) -> int:
    """Return the shard size the config implies for a round of ``budget``.

    An explicit ``shard_size`` pins the decomposition (making results
    independent of ``workers``); otherwise the round is split one shard
    per worker, capped at ``DEFAULT_SHARD_CAP`` lifetimes per shard.
    ``budget`` defaults to the first round, ``config.n_iterations``.
    """
    if config.shard_size is not None:
        return int(config.shard_size)
    budget = config.n_iterations if budget is None else int(budget)
    return min(max(1, math.ceil(budget / int(config.workers))), DEFAULT_SHARD_CAP)


def run_shard(
    config: MonteCarloConfig,
    master_entropy: int,
    shard_index: int,
    shard_size: int,
) -> ShardSummary:
    """Run one shard and summarise it (executed inside worker processes).

    The shard rebuilds its stream family from ``(master_entropy,
    shard_index)`` alone — the parent never ships generator state, so the
    draws are identical whether the shard runs in-process, in a forked
    worker or in a spawned one.
    """
    policy = resolve_policy(config.policy)
    streams = RandomStreams(master_entropy).spawn_child(shard_index)
    batch = policy.simulate_shard(
        config.params,
        config.horizon_hours,
        shard_size,
        streams,
        force_scalar=config.executor == "scalar",
    )
    return ShardSummary(
        shard_index=shard_index,
        moments=StreamingMoments.from_samples(batch.availabilities()),
        totals=batch.totals(),
    )


def _make_pool(workers: int) -> ProcessPoolExecutor:
    """Build the worker pool, preferring cheap ``fork`` workers on Linux.

    Fork is only *safe* on Linux: macOS lists it as available but forking a
    process with framework state initialised (numpy is already imported)
    can crash workers, which is why CPython's default there is spawn.
    """
    use_fork = sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if use_fork else None)
    return ProcessPoolExecutor(max_workers=workers, mp_context=context)


@contextlib.contextmanager
def worker_pool(workers: int):
    """Context manager yielding a reusable pool (or ``None`` for 1 worker).

    Sweeps that run many sharded studies (the experiment grids) should
    create one pool here and pass it to each :func:`run_sharded` /
    ``run_monte_carlo`` call, instead of paying pool startup — worker
    process creation, and on spawn platforms a numpy/scipy re-import per
    worker — once per study.
    """
    if int(workers) <= 1:
        yield None
        return
    pool = _make_pool(int(workers))
    try:
        yield pool
    finally:
        pool.shutdown()


def _run_round(
    config: MonteCarloConfig,
    master_entropy: int,
    first_index: int,
    sizes: List[int],
    pool: Optional[Executor],
) -> Iterator[ShardSummary]:
    """Run one round of shards, yielding summaries in shard-index order."""
    if pool is None:
        for offset, size in enumerate(sizes):
            yield run_shard(config, master_entropy, first_index + offset, size)
        return
    futures = [
        pool.submit(run_shard, config, master_entropy, first_index + offset, size)
        for offset, size in enumerate(sizes)
    ]
    try:
        # Collect in submission (= shard-index) order so the merge is
        # deterministic regardless of which worker finishes first.
        for future in futures:
            yield future.result()
    except BaseException:
        # Drop the round's remaining shards even on a shared pool, so a
        # failure doesn't leave orphan work blocking later studies.
        for future in futures:
            future.cancel()
        raise


def run_sharded(
    config: MonteCarloConfig, pool: Optional[Executor] = None
) -> MonteCarloResult:
    """Run the configured study on the sharded executor and summarise it.

    Dispatches shard rounds across ``config.workers`` processes (in-process
    for ``workers=1``), merges the streaming summaries, and — when
    ``config.target_half_width`` is set — keeps adding rounds until the
    interval is tight enough or ``config.adaptive_ceiling`` is hit.

    ``pool`` lets a sweep share one executor across many studies (see
    :func:`worker_pool`); its lifecycle then belongs to the caller.
    """
    resolve_policy(config.policy)  # fail fast on unknown policies
    master = RandomStreams(config.seed)
    master_entropy = master.seed_entropy
    target = config.target_half_width
    ceiling = config.adaptive_ceiling if target is not None else config.n_iterations

    moments = StreamingMoments()
    totals: Dict[str, float] = {}
    next_index = 0
    round_budget = config.n_iterations

    workers = int(config.workers)
    own_pool: Optional[ProcessPoolExecutor] = None
    try:
        if pool is None and workers > 1:
            pool = own_pool = _make_pool(workers)
        while round_budget > 0:
            # A pinned shard_size fixes the decomposition (bit-identical
            # across worker counts); the default re-splits every round one
            # shard per worker, so smaller adaptive follow-up rounds still
            # fan out instead of idling all but one worker.
            shard_size = effective_shard_size(config, round_budget)
            sizes = plan_shards(round_budget, shard_size)
            summaries = list(
                _run_round(config, master_entropy, next_index, sizes, pool)
            )
            next_index += len(sizes)
            for summary in summaries:
                moments.merge(summary.moments)
            totals = merge_totals([totals] + [s.totals for s in summaries])
            round_budget = _next_round_budget(config, moments, shard_size, ceiling)
    except BaseException:
        # Don't make a failed shard wait for the rest of the round: drop
        # queued work and leave in-flight shards to die with their workers
        # so the error surfaces immediately.  An externally owned pool is
        # left alone — its lifecycle belongs to the caller.
        if own_pool is not None:
            own_pool.shutdown(wait=False, cancel_futures=True)
            own_pool = None
        raise
    finally:
        if own_pool is not None:
            own_pool.shutdown()

    return MonteCarloResult(
        availability=moments.mean,
        interval=moments.interval(config.confidence),
        n_iterations=moments.n,
        horizon_hours=config.horizon_hours,
        totals=totals,
        label=config.label(),
        seed_entropy=master_entropy,
    )


def _next_round_budget(
    config: MonteCarloConfig,
    moments: StreamingMoments,
    shard_size: int,
    ceiling: int,
) -> int:
    """Return how many more lifetimes the adaptive loop should dispatch.

    Zero means stop: either adaptive mode is off, the interval already
    meets the target, or the ceiling is exhausted.
    """
    target = config.target_half_width
    if target is None:
        return 0
    headroom = ceiling - moments.n
    if headroom <= 0:
        return 0
    if moments.m2 == 0.0:
        # Zero observed variance (e.g. no downtime event in any lifetime at
        # rare-event parameters) makes the interval width 0, which would
        # trivially "meet" any target.  That is degeneracy, not
        # convergence — keep sampling, doubling per round, until either an
        # event produces a real interval or the ceiling decides.
        return min(max(moments.n, shard_size), headroom)
    # The first round merged config.n_iterations >= 2 samples (config
    # validation), so the interval always exists here.
    if moments.interval(config.confidence).half_width <= target:
        return 0
    try:
        needed = required_samples(moments.std(), target, confidence=config.confidence)
    except SimulationError:
        # Planner overflow (pathologically tight target): run out the
        # remaining ceiling instead of giving up.
        needed = ceiling
    # Always make progress by at least one shard; never exceed the ceiling.
    return min(max(needed - moments.n, shard_size), headroom)
