"""Reproduce the paper's Fig. 1 style event trace.

Fig. 1 of the paper walks through a single Monte Carlo run of a RAID5(3+1)
array with a 10-hour rebuild time, showing disk failures, rebuilds, two
wrong disk replacements (DU episodes) and two double-disk-failure data
losses followed by tape recoveries.  :func:`generate_example_trace` produces
an equivalent trace from the simulator, and :func:`render_timeline` renders
it as text suitable for the quickstart example and documentation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.montecarlo.results import EpisodeTrace
from repro.core.montecarlo.simulator import simulate_conventional
from repro.core.parameters import AvailabilityParameters, paper_parameters
from repro.simulation.rng import RandomStreams
from repro.storage.raid import RaidGeometry


def generate_example_trace(
    params: Optional[AvailabilityParameters] = None,
    horizon_hours: float = 1000.0,
    seed: int = 7,
    require_events: bool = True,
    max_attempts: int = 200,
) -> EpisodeTrace:
    """Return a single-run trace containing at least one notable event.

    The paper's illustrative figure uses an exaggerated failure rate so that
    failures, human errors and data losses all appear within a 1000-hour
    window; the default parameters here do the same (``lambda = 1e-3`` per
    hour, ``hep = 0.1``) and are not meant to be realistic.

    Parameters
    ----------
    params:
        Override of the scenario parameters.
    horizon_hours:
        Length of the illustrated window.
    seed:
        Seed of the first attempt; subsequent attempts increment it.
    require_events:
        When ``True``, re-run with a new seed until the trace contains at
        least one human error or data loss (up to ``max_attempts``).
    """
    scenario = params or replace(
        paper_parameters(geometry=RaidGeometry.raid5(3)),
        disk_failure_rate=1e-3,
        hep=0.1,
    )
    attempt_seed = int(seed)
    last_trace = EpisodeTrace()
    for _ in range(max(1, int(max_attempts))):
        streams = RandomStreams(attempt_seed)
        trace = EpisodeTrace()
        simulate_conventional(scenario, horizon_hours, streams.stream("trace"), trace=trace)
        last_trace = trace
        if not require_events:
            return trace
        kinds = set(trace.kinds())
        if "human_error" in kinds or "data_loss" in kinds:
            return trace
        attempt_seed += 1
    return last_trace


def render_timeline(trace: EpisodeTrace, width: int = 72) -> str:
    """Render a trace as an indented text timeline.

    Down-time causing events are flagged with ``**`` so the reader can spot
    the DU/DL episodes the paper's figure highlights.
    """
    down_kinds = {"data_loss", "human_error", "data_unavailable"}
    lines = ["time (h)      event", "-" * min(width, 72)]
    for record in trace:
        marker = "**" if record.kind in down_kinds else "  "
        detail = ", ".join(f"{k}={v}" for k, v in sorted(record.detail.items()))
        suffix = f" [{detail}]" if detail else ""
        lines.append(f"{record.time:10.1f}  {marker} {record.kind}{suffix}")
    return "\n".join(lines)


def summarise_trace(trace: EpisodeTrace) -> dict:
    """Return counts of the notable event kinds in a trace."""
    kinds = trace.kinds()
    return {
        "disk_failures": kinds.count("disk_failure"),
        "human_errors": kinds.count("human_error"),
        "data_losses": kinds.count("data_loss"),
        "rebuilds": kinds.count("rebuild_complete"),
        "backup_restores": kinds.count("backup_restore_complete"),
        "events_total": len(kinds),
    }
