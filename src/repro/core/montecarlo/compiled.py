"""Compiled kernel backend behind the bit-identity oracle pattern.

numba is an *optional* dependency (``pip install .[compiled]``); this module
is the import guard between it and the rest of the engine, mirroring how
``transport.py`` guards :mod:`multiprocessing.shared_memory`:

- :func:`compiled_available` probes ``import numba`` once and caches the
  verdict for the process.
- :func:`resolve_kernel` turns the configured ``kernel`` into a concrete
  backend: ``"compiled"`` without numba is a :class:`ConfigurationError`,
  ``"auto"`` warns once and falls back to the numpy kernels (identical
  results, only slower).
- :func:`kernel_context` activates the backend for the calling thread's
  kernel invocations via :func:`repro.core.policies.vectorized.kernel_ops`.

The RNG-discipline boundary (see DESIGN.md): on ``kernel="compiled"`` all
random draws stay on the spawn-indexed numpy ``Generator`` exactly as on the
numpy path — only the deterministic per-row clock-matrix searches
(``min_and_slot``, ``min_excluding``, ``second_smallest``) are compiled, as
``@njit(parallel=True)`` prange scans.  Those primitives are pure
*selections* (they return elements of the matrix, never recomputed values),
so the compiled backend is bit-identical to numpy by construction — asserted
per policy × geometry × biasing in ``tests/core/test_compiled.py``.

``kernel="fused"`` crosses that boundary: the whole event loop — draws
included — runs inside nopython code (:mod:`repro.core.montecarlo.fused`),
which drops cross-backend equality to the statistically-pinned protocol
(``tests/core/test_fused.py``) in exchange for removing the per-round numpy
overhead entirely.  Within the fused backend determinism is still exact:
``workers=N`` stays bit-identical to ``workers=1``.  This module stays the
single source of kernel-name truth; the fused module owns its loops.
"""

from __future__ import annotations

import contextlib
import functools
import warnings
from typing import Optional

from repro.core.policies import vectorized as _vectorized
from repro.exceptions import ConfigurationError

__all__ = [
    "KERNELS",
    "compiled_available",
    "compiled_ops",
    "fused_available",
    "has_compiled_face",
    "has_fused_face",
    "kernel_context",
    "reset_compiled_state",
    "resolve_kernel",
    "warmup_compiled",
]

#: Accepted kernel backends: "auto" prefers the compiled scans when numba is
#: importable and falls back to numpy with a one-time warning; "numpy",
#: "compiled" and "fused" force their backend ("compiled"/"fused" error
#: without numba).  "auto" never resolves to "fused" — the fused loops own
#: their draw discipline, so trading bit-identity for speed is explicit.
KERNELS = ("auto", "numpy", "compiled", "fused")

#: Cached verdict of the numba import probe (None = not probed yet).
_NUMBA_USABLE: Optional[bool] = None

#: Whether the auto-fallback warning has fired this process.
_AUTO_WARNED = False

#: Lazily built table of compiled primitives (shared process-wide; numba
#: dispatchers are thread-safe, so thread-pool shards reuse one table).
_OPS = None

#: Batch kernels whose hot loops route through the compiled row searches.
#: ``batch_erasure`` is deliberately absent: its flat aggregate-clock kernel
#: uses none of the clock-matrix search primitives, so ``kernel=compiled``
#: runs the identical numpy path for erasure policies (still bit-identical,
#: trivially) — erasure's compiled face is the fused event loop instead
#: (``has_compiled_face`` ORs in ``has_fused_face``).  ``batch_baseline``
#: wraps ``batch_conventional``.
_COMPILED_FACES = frozenset({"batch_conventional", "batch_spare_pool", "batch_baseline"})


def compiled_available() -> bool:
    """Return whether numba is importable, probing once per process."""
    global _NUMBA_USABLE
    if _NUMBA_USABLE is None:
        try:
            import numba  # noqa: F401
        except Exception:
            _NUMBA_USABLE = False
        else:
            _NUMBA_USABLE = True
    return _NUMBA_USABLE


def reset_compiled_state() -> None:
    """Forget the cached probe, warn-once flag and built ops (test hook)."""
    global _NUMBA_USABLE, _AUTO_WARNED, _OPS
    _NUMBA_USABLE = None
    _AUTO_WARNED = False
    _OPS = None


def resolve_kernel(kernel: str) -> str:
    """Resolve a configured kernel to a concrete backend name.

    Returns ``"numpy"``, ``"compiled"`` or ``"fused"``.  Parents resolve
    before dispatching shards so workers receive a concrete value and the
    ``auto`` fallback warning fires at most once, in the parent.
    """
    global _AUTO_WARNED
    if kernel not in KERNELS:
        raise ConfigurationError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    if kernel == "numpy":
        return "numpy"
    if kernel == "fused":
        from repro.core.montecarlo.fused import FUSED_PUREPY_ENV, fused_available

        if not fused_available():
            raise ConfigurationError(
                "kernel='fused' requires numba, which is not importable; "
                "install the optional extra (pip install '.[compiled]'), "
                f"set {FUSED_PUREPY_ENV}=1 to accept the pure-Python "
                "fallback, or use kernel='auto' / 'numpy'"
            )
        return "fused"
    if kernel == "compiled":
        if not compiled_available():
            raise ConfigurationError(
                "kernel='compiled' requires numba, which is not importable; "
                "install the optional extra (pip install '.[compiled]') or "
                "use kernel='auto' / 'numpy'"
            )
        return "compiled"
    # kernel == "auto"
    if compiled_available():
        return "compiled"
    if not _AUTO_WARNED:
        _AUTO_WARNED = True
        warnings.warn(
            "kernel='auto' resolved to the numpy kernels: numba is not "
            "installed (pip install '.[compiled]' enables the compiled "
            "backend); results are identical, only slower",
            RuntimeWarning,
            stacklevel=2,
        )
    return "numpy"


def compiled_ops():
    """Return the process-wide compiled-ops table, building it on first use."""
    global _OPS
    if _OPS is None:
        if not compiled_available():  # pragma: no cover - guarded by callers
            raise ConfigurationError("compiled ops requested but numba is not importable")
        _OPS = _build_ops()
    return _OPS


def warmup_compiled() -> None:
    """Trigger JIT compilation of every compiled primitive and fused loop.

    Benchmarks call this before timing so the one-time nopython compile is
    excluded from the measured window; with ``cache=True`` on every kernel
    the compiles also land in the on-disk numba cache CI restores.
    """
    import numpy as np

    from repro.core.montecarlo.fused import warmup_fused

    ops = compiled_ops()
    clocks = np.array([[2.0, 1.0, 3.0], [np.inf, 5.0, 4.0]])
    exclude = np.array([1, 2])
    ops.min_and_slot(clocks)
    ops.min_excluding(clocks, exclude)
    ops.second_smallest(clocks)
    warmup_fused()


def _build_ops():
    """Compile the three row-search primitives as parallel prange scans.

    Exactness contract with the numpy helpers in ``policies/vectorized.py``
    (asserted in tests, relied on for bit-identity):

    - ``min_and_slot``: ties resolve to the lowest column, matching
      ``np.argmin`` — the scan only moves on strict ``<``.
    - ``min_excluding``: replicates "mask one instance at column
      ``exclude[row]`` to inf, then argmin", including rows whose remaining
      clocks are all inf (slot 0 with value inf when column 0 is excluded
      and the rest are inf, exactly as argmin over an all-inf row gives 0).
    - ``second_smallest``: a two-running-minima scan equals the partition's
      second order statistic, duplicates included; clocks are sampled times
      or inf, never NaN.
    """
    import numba
    import numpy as np

    @numba.njit(parallel=True, cache=True)
    def min_and_slot(clocks):
        m, n = clocks.shape
        slot = np.empty(m, dtype=np.int64)
        best = np.empty(m, dtype=np.float64)
        for i in numba.prange(m):
            s = 0
            b = clocks[i, 0]
            for j in range(1, n):
                v = clocks[i, j]
                if v < b:
                    b = v
                    s = j
            slot[i] = s
            best[i] = b
        return slot, best

    @numba.njit(parallel=True, cache=True)
    def min_excluding(clocks, exclude):
        m, n = clocks.shape
        slot = np.empty(m, dtype=np.int64)
        best = np.empty(m, dtype=np.float64)
        for i in numba.prange(m):
            e = exclude[i]
            s = 0
            b = np.inf if e == 0 else clocks[i, 0]
            for j in range(1, n):
                v = np.inf if j == e else clocks[i, j]
                if v < b:
                    b = v
                    s = j
            slot[i] = s
            best[i] = b
        return slot, best

    @numba.njit(parallel=True, cache=True)
    def second_smallest(clocks):
        m, n = clocks.shape
        second = np.empty(m, dtype=np.float64)
        for i in numba.prange(m):
            m1 = clocks[i, 0]
            m2 = np.inf
            for j in range(1, n):
                v = clocks[i, j]
                if v < m1:
                    m2 = m1
                    m1 = v
                elif v < m2:
                    m2 = v
            second[i] = m2
        return second

    class _CompiledOps:
        """The ops table ``vectorized.kernel_ops`` expects."""

        __slots__ = ()

        min_and_slot = staticmethod(min_and_slot)
        min_excluding = staticmethod(min_excluding)
        second_smallest = staticmethod(second_smallest)

    return _CompiledOps()


@contextlib.contextmanager
def kernel_context(kernel: str):
    """Activate the resolved backend for this thread's kernel invocations.

    Yields the concrete backend name.  ``"numpy"`` is a no-op (the
    primitives' default path); ``"compiled"`` routes the row searches
    through the njit scans for the duration of the block.  Safe to enter
    inside thread-pool workers — the routing is thread-local.  The fused
    backend replaces the whole batch kernel rather than its primitives, so
    it never flows through here — dispatchers branch to
    :func:`repro.core.montecarlo.fused.run_fused_batch` first.
    """
    resolved = resolve_kernel(kernel)
    if resolved == "fused":
        raise ConfigurationError(
            "kernel='fused' replaces the whole batch kernel; dispatch it "
            "via run_fused_batch, not kernel_context"
        )
    if resolved == "compiled":
        with _vectorized.kernel_ops(compiled_ops()):
            yield "compiled"
    else:
        yield "numpy"


def fused_available() -> bool:
    """Return whether ``kernel="fused"`` may be selected (see the fused module)."""
    from repro.core.montecarlo import fused as _fused

    return _fused.fused_available()


def has_fused_face(policy) -> bool:
    """Return whether a policy's batch kernel has a fused event loop."""
    from repro.core.montecarlo import fused as _fused

    return _fused.has_fused_face(policy)


def has_compiled_face(policy) -> bool:
    """Return whether compiled backends accelerate this policy's batch kernel.

    True when the kernel routes through the compiled row searches
    (``kernel="compiled"``) *or* has a fused event loop (``kernel="fused"``
    — how the erasure family gets its compiled face).  Unwraps
    ``functools.partial`` layers (the spare-pool and erasure policies
    register partials) before matching.
    """
    batch = getattr(policy, "batch", None)
    while isinstance(batch, functools.partial):
        batch = batch.func
    if batch is None:
        return False
    if getattr(batch, "__name__", None) in _COMPILED_FACES:
        return True
    return has_fused_face(policy)
