"""Whole-event-loop fused Monte Carlo kernels (``kernel="fused"``).

The numpy batch kernels in :mod:`repro.core.policies.vectorized` simulate a
shard breadth-first: every event round sweeps the full clock matrix, and the
per-round numpy overhead (fancy indexing, boolean compaction, per-branch
gather/scatter) dominates once the per-row arithmetic is this small.  The
sliced compiled backend of PR 8 (:mod:`repro.core.montecarlo.compiled`)
removed the matrix *searches* from that budget but deliberately kept the
draws on the numpy :class:`~numpy.random.Generator`, preserving bit-identity
with the numpy kernels — which capped its win at the search share of the
round.

This module is the other side of that trade: **fused** kernels run each
lifetime's entire event loop — draws included — inside one nopython
function, depth-first over the shard.  The discipline changes:

* **RNG.**  Draws move inside the compiled loop.  Each shard consumes a
  dedicated ``"fused"`` named stream derived from the same spawn-indexed
  entropy lineage as the numpy kernels' ``"montecarlo"`` stream (see
  :mod:`repro.core.montecarlo.rng`), so shard decomposition stays
  worker-count-independent: fused ``workers=N`` is bit-identical to fused
  ``workers=1`` and ``replay_stacked_point`` replays fused grids exactly.
  Only the numpy-vs-fused draw *order* differs, which is why the
  cross-backend bit-identity oracle cannot apply.

* **Draw primitives.**  The kernels consume the stream exclusively through
  ``rng.random()`` (one double per draw) and build every law by inverse
  transform: a standard exponential is ``-log1p(-u)``, an ``Exp(rate)`` is
  the standard draw over the rate, a Weibull(k, scale) is
  ``scale * e**(1/k)``, a uniform slot is ``floor(u * n)``, a Bernoulli is
  ``u < p``.  numba compiles ``Generator.random()`` natively (no object-mode
  bounce), and the pure-Python fallback consumes the identical stream.

* **Validation.**  Cross-backend equality is statistical, not bitwise: the
  fused estimates are pinned by the analytical faces (CI coverage) and by
  fused-vs-numpy confidence-interval overlap per policy x geometry x
  biasing (``tests/core/test_fused.py``), with the exact PR 6 censored
  likelihood-ratio discipline reimplemented in-loop (see
  ``_draw_failure``) and the weighted moments accumulated per lifetime.

When numba is not importable the kernels run as plain Python — identical
semantics, identical stream — which keeps the fused path testable in
numba-free environments.  Because the pure-Python event loop is slower than
the numpy batch kernels, ``fused_available()`` only reports the backend
usable when numba is present or the ``REPRO_FUSED_PUREPY`` environment
variable opts into the fallback explicitly (tests set it; production
configs get a clear error instead of a silent 100x slowdown).
"""
from __future__ import annotations

import functools
import math
import os
from typing import Optional, Tuple, Union

import numpy as np

from repro.core.policies.base import BatchLifetimes
from repro.core.policies.vectorized import (
    _check_lifetimes,
    _erasure_scheme_planes,
    _failure_shape_scale,
    _per_row_or,
)
from repro.exceptions import ConfigurationError, HumanErrorModelError, SimulationError

try:  # pragma: no cover - exercised in the compiled-smoke CI job
    import numba as _numba
except ImportError:  # pragma: no cover - the numba-free default environment
    _numba = None

#: Environment opt-in running the fused loops as plain Python when numba is
#: missing (same semantics, same stream, interpreter speed).
FUSED_PUREPY_ENV = "REPRO_FUSED_PUREPY"

if _numba is not None:
    #: ``cache=True`` persists the compiled loops to the on-disk numba cache
    #: (CI keys it on the kernel source hash); ``nogil=True`` releases the
    #: GIL so ``pool="thread"`` runs fused shards truly in parallel.
    _jit = _numba.njit(cache=True, nogil=True)
else:

    def _jit(func):
        return func


def jit_enabled() -> bool:
    """Return whether the fused loops are numba-compiled in this process."""
    return _numba is not None


def fused_available() -> bool:
    """Return whether ``kernel="fused"`` may be selected.

    True when numba is importable (the loops compile) or when
    ``REPRO_FUSED_PUREPY`` opts into the pure-Python fallback.
    """
    return _numba is not None or bool(os.environ.get(FUSED_PUREPY_ENV))


# ----------------------------------------------------------------------
# nopython draw primitives
# ----------------------------------------------------------------------
@_jit
def _std_exp(rng) -> float:
    """One standard-exponential draw by inverse transform."""
    return -math.log1p(-rng.random())


@_jit
def _clip(start: float, end: float, horizon: float) -> float:
    """Downtime of ``[start, end)`` clipped to the mission horizon."""
    lo = start if start < horizon else horizon
    hi = end if end < horizon else horizon
    d = hi - lo
    return d if d > 0.0 else 0.0


@_jit
def _draw_failure(
    rng, k: float, s: float, b: float, use_bias: bool, horizon: float, born: float
) -> Tuple[float, float]:
    """Draw one (possibly biased) failure clock born at hour ``born``.

    Returns ``(delta_hours, log_weight_contrib)``.  ``k``/``s`` are the
    *unbiased* Weibull shape/scale (shape 1 = exponential) and ``b`` the
    biasing factor; the contribution follows the PR 6 censoring discipline:
    a draw that fires before the horizon contributes the density ratio, a
    draw censored at the horizon contributes the survival ratio at its
    censor point, and a draw born at or past the horizon contributes
    nothing.
    """
    e = _std_exp(rng)
    if k == 1.0:
        t = e * s
    else:
        t = s * e ** (1.0 / k)
    if not use_bias:
        return t, 0.0
    t = t / b
    remaining = horizon - born
    if remaining <= 0.0:
        return t, 0.0
    bk = b**k
    if t < remaining:
        return t, (bk - 1.0) * (t / s) ** k - k * math.log(b)
    return t, (bk - 1.0) * (remaining / s) ** k


@_jit
def _argmin_clock(clocks, n: int) -> Tuple[int, float]:
    """Return ``(slot, time)`` of the earliest clock (ties to lowest slot)."""
    slot = 0
    best = clocks[0]
    for j in range(1, n):
        if clocks[j] < best:
            best = clocks[j]
            slot = j
    return slot, best


@_jit
def _argmin_excluding(clocks, n: int, exclude: int) -> Tuple[int, float]:
    """Return ``(slot, time)`` of the earliest clock outside ``exclude``."""
    slot = -1
    best = np.inf
    for j in range(n):
        if j == exclude:
            continue
        if clocks[j] < best:
            best = clocks[j]
            slot = j
    return slot, best


@_jit
def _uniform_slot(rng, n: int) -> int:
    """One uniform slot index in ``[0, n)``."""
    j = int(rng.random() * n)
    return j if j < n else n - 1


@_jit
def _other_slot(rng, n: int, slot: int) -> int:
    """One uniform slot other than ``slot`` (``slot`` itself when n <= 1)."""
    if n <= 1:
        return slot
    choice = _uniform_slot(rng, n - 1)
    return choice if choice < slot else choice + 1


@_jit
def _race(rng, recovery_rate: float, hep: float, crash_rate: float) -> Tuple[float, bool]:
    """Scalar twin of the vectorized ``_recovery_race``.

    Races each recovery attempt against a crash of the wrongly pulled disk
    and repeats the attempt with probability ``hep``; returns
    ``(total_duration_hours, disk_crashed)``.
    """
    total = 0.0
    for _ in range(1000):
        attempt = _std_exp(rng) / recovery_rate
        if crash_rate > 0.0:
            crash = _std_exp(rng) / crash_rate
        else:
            crash = np.inf
        if crash < attempt:
            return total + crash, True
        total += attempt
        if not (rng.random() < hep):
            return total, False
    raise HumanErrorModelError("error recovery did not terminate within 1000 attempts")


@_jit
def _renew_before(
    rng, clocks, n: int, at: float, horizon: float, k: float, s: float, b: float, use_bias: bool
) -> float:
    """Renew every slot whose clock is at or before ``at``; return the LR sum."""
    w = 0.0
    for j in range(n):
        if clocks[j] <= at:
            t, c = _draw_failure(rng, k, s, b, use_bias, horizon, at)
            clocks[j] = at + t
            w += c
    return w


@_jit
def _renew_slot(
    rng, clocks, slot: int, at: float, horizon: float, k: float, s: float, b: float, use_bias: bool
) -> float:
    """Install a fresh disk in ``slot`` at hour ``at``; return the LR contrib."""
    t, c = _draw_failure(rng, k, s, b, use_bias, horizon, at)
    clocks[slot] = at + t
    return c


# ----------------------------------------------------------------------
# Fused family kernels (one lifetime's whole event loop per iteration)
# ----------------------------------------------------------------------
@_jit
def _fused_conventional(
    rng,
    horizon: float,
    n_cols: int,
    shape_arr,
    scale_arr,
    bias,
    use_bias: bool,
    repair_rate,
    ddf_rate,
    recovery_rate,
    hep_arr,
    crash_arr,
    n_disks_arr,
    downtime,
    du,
    dl,
    df,
    he,
    logw,
):
    """Depth-first conventional-policy loop (semantics of ``batch_conventional``)."""
    m = downtime.shape[0]
    clocks = np.empty(n_cols)
    for i in range(m):
        n = int(n_disks_arr[i])
        k = shape_arr[i]
        s = scale_arr[i]
        b = bias[i]
        mu_rep = repair_rate[i]
        mu_ddf = ddf_rate[i]
        mu_rec = recovery_rate[i]
        h = hep_arr[i]
        cr = crash_arr[i]
        w = 0.0
        for j in range(n):
            t, c = _draw_failure(rng, k, s, b, use_bias, horizon, 0.0)
            clocks[j] = t
            w += c
        now = 0.0
        while True:
            slot, fail = _argmin_clock(clocks, n)
            if fail < now:
                fail = now
            if fail >= horizon:
                break
            df[i] += 1
            repair_done = fail + _std_exp(rng) / mu_rep
            _, second = _argmin_excluding(clocks, n, slot)
            if second < fail:
                second = fail
            if second < repair_done:
                # Double disk failure during the repair: data loss, restore.
                df[i] += 1
                dl[i] += 1
                outage_end = second + _std_exp(rng) / mu_ddf
                downtime[i] += _clip(second, outage_end, horizon)
                w += _renew_before(rng, clocks, n, outage_end, horizon, k, s, b, use_bias)
                now = outage_end
            elif h > 0.0 and rng.random() < h:
                # Wrong disk replacement: unavailable until the error is
                # undone (data loss when the pulled disk crashes first).
                he[i] += 1
                du[i] += 1
                wrong = _other_slot(rng, n, slot)
                duration, crashed = _race(rng, mu_rec, h, cr)
                outage_end = repair_done + duration
                if crashed:
                    dl[i] += 1
                    outage_end += _std_exp(rng) / mu_ddf
                    w += _renew_slot(rng, clocks, wrong, outage_end, horizon, k, s, b, use_bias)
                downtime[i] += _clip(repair_done, outage_end, horizon)
                w += _renew_slot(rng, clocks, slot, outage_end, horizon, k, s, b, use_bias)
                w += _renew_before(rng, clocks, n, outage_end, horizon, k, s, b, use_bias)
                now = outage_end
            else:
                # Successful replacement and rebuild.
                w += _renew_slot(rng, clocks, slot, repair_done, horizon, k, s, b, use_bias)
                now = repair_done
        if use_bias:
            logw[i] += w


@_jit
def _fused_spare_pool(
    rng,
    horizon: float,
    n_cols: int,
    shape_arr,
    scale_arr,
    bias,
    use_bias: bool,
    repair_rate,
    replace_rate,
    ddf_rate,
    recovery_rate,
    hep_arr,
    crash_arr,
    n_disks_arr,
    pool_arr,
    downtime,
    du,
    dl,
    df,
    he,
    logw,
):
    """Depth-first spare-pool loop (semantics of ``batch_spare_pool``)."""
    m = downtime.shape[0]
    clocks = np.empty(n_cols)
    for i in range(m):
        n = int(n_disks_arr[i])
        pool0 = int(pool_arr[i])
        k = shape_arr[i]
        s = scale_arr[i]
        b = bias[i]
        mu_rep = repair_rate[i]
        mu_rpl = replace_rate[i]
        mu_ddf = ddf_rate[i]
        mu_rec = recovery_rate[i]
        h = hep_arr[i]
        cr = crash_arr[i]
        w = 0.0
        for j in range(n):
            t, c = _draw_failure(rng, k, s, b, use_bias, horizon, 0.0)
            clocks[j] = t
            w += c
        now = 0.0
        spares = pool0
        while True:
            slot, fail = _argmin_clock(clocks, n)
            if fail < now:
                fail = now
            if fail >= horizon:
                break
            df[i] += 1

            # One failure event may fall through to the exposed no-spare
            # service from three branches; ``exposed`` carries the handoff.
            exposed = False
            ex_slot = slot
            ex_start = fail

            if spares > 0:
                # On-line rebuild onto a hot spare.
                rebuild_done = fail + _std_exp(rng) / mu_rep
                _, second = _argmin_excluding(clocks, n, slot)
                if second < fail:
                    second = fail
                if second < rebuild_done:
                    # Double failure during the rebuild: data loss; the
                    # restore window lets the technician restock the pool.
                    df[i] += 1
                    dl[i] += 1
                    outage_end = second + _std_exp(rng) / mu_ddf
                    downtime[i] += _clip(second, outage_end, horizon)
                    w += _renew_before(rng, clocks, n, outage_end, horizon, k, s, b, use_bias)
                    spares = pool0
                    now = outage_end
                else:
                    # Rebuild finished; technician visit replaces hardware.
                    w += _renew_slot(rng, clocks, slot, rebuild_done, horizon, k, s, b, use_bias)
                    spares -= 1
                    replace_done = rebuild_done + _std_exp(rng) / mu_rpl
                    _, next_fail = _argmin_clock(clocks, n)
                    if next_fail < rebuild_done:
                        next_fail = rebuild_done
                    if next_fail < replace_done and next_fail < horizon:
                        # A further failure preempts the visit: no restock,
                        # the failure is handled from scratch next round.
                        now = next_fail
                    elif h > 0.0 and rng.random() < h:
                        # Wrong pull during the visit: fully redundant, so
                        # the array only degrades — unless a real failure or
                        # a crash of the pulled disk lands meanwhile.
                        he[i] += 1
                        wrong = _uniform_slot(rng, n)
                        duration, crashed = _race(rng, mu_rec, h, cr)
                        recovery_end = replace_done + duration
                        other, second2 = _argmin_excluding(clocks, n, wrong)
                        if second2 < replace_done:
                            second2 = replace_done
                        fail_during = second2 < recovery_end and second2 < horizon
                        if fail_during and crashed:
                            df[i] += 1
                            du[i] += 1
                            dl[i] += 1
                            outage_end = recovery_end + _std_exp(rng) / mu_ddf
                            downtime[i] += _clip(second2, outage_end, horizon)
                            w += _renew_before(
                                rng, clocks, n, outage_end, horizon, k, s, b, use_bias
                            )
                            spares = pool0
                            now = outage_end
                        elif fail_during:
                            df[i] += 1
                            du[i] += 1
                            downtime[i] += _clip(second2, recovery_end, horizon)
                            exposed = True
                            ex_slot = other
                            ex_start = recovery_end
                        elif crashed:
                            # The pulled disk is now a genuine failed disk.
                            exposed = True
                            ex_slot = wrong
                            ex_start = recovery_end
                        else:
                            spares = pool0
                            now = recovery_end
                    else:
                        spares = pool0
                        now = replace_done
            else:
                exposed = True

            if exposed:
                # Exposed no-spare service: combined rebuild + replacement
                # visit; success restocks the whole pool.
                service_done = ex_start + _std_exp(rng) / (mu_rep + mu_rpl)
                _, second3 = _argmin_excluding(clocks, n, ex_slot)
                if second3 < ex_start:
                    second3 = ex_start
                if second3 < service_done and second3 < horizon:
                    df[i] += 1
                    dl[i] += 1
                    outage_end = second3 + _std_exp(rng) / mu_ddf
                    downtime[i] += _clip(second3, outage_end, horizon)
                    w += _renew_slot(rng, clocks, ex_slot, outage_end, horizon, k, s, b, use_bias)
                    w += _renew_before(rng, clocks, n, outage_end, horizon, k, s, b, use_bias)
                    spares = 0
                    now = outage_end
                elif h > 0.0 and rng.random() < h:
                    he[i] += 1
                    du[i] += 1
                    duration, crashed = _race(rng, mu_rec, h, cr)
                    outage_end = service_done + duration
                    if crashed:
                        dl[i] += 1
                        outage_end += _std_exp(rng) / mu_ddf
                    downtime[i] += _clip(service_done, outage_end, horizon)
                    w += _renew_slot(rng, clocks, ex_slot, outage_end, horizon, k, s, b, use_bias)
                    w += _renew_before(rng, clocks, n, outage_end, horizon, k, s, b, use_bias)
                    spares = 0
                    now = outage_end
                else:
                    w += _renew_slot(rng, clocks, ex_slot, service_done, horizon, k, s, b, use_bias)
                    spares = pool0
                    now = service_done
        if use_bias:
            logw[i] += w


@_jit
def _fused_erasure(
    rng,
    horizon: float,
    lam,
    hep_arr,
    n_arr,
    k_arr,
    r_arr,
    period,
    downtime,
    du,
    dl,
    df,
    he,
):
    """Depth-first erasure checker/repair loop (semantics of ``batch_erasure``)."""
    m = downtime.shape[0]
    for i in range(m):
        n = int(n_arr[i])
        kk = int(k_arr[i])
        r = int(r_arr[i])
        period_t = period[i]
        lam_i = lam[i]
        h = hep_arr[i]
        shares = n
        pending = _std_exp(rng) / (shares * lam_i)
        # Checks fire at T, 2T, ...; every check before the first failure is
        # a no-op, so jump straight to the first check at or after it.
        next_check = period_t * np.ceil(pending / period_t)
        down_since = np.inf
        while True:
            etime = pending if pending < next_check else next_check
            if etime >= horizon:
                if down_since < np.inf:
                    downtime[i] += horizon - down_since
                break
            if pending < next_check:
                # Share failure (strictly before a coincident check).
                df[i] += 1
                shares -= 1
                if shares < kk:
                    # Outage until the next check discovers it; surviving
                    # shares are not simulated while down.
                    dl[i] += 1
                    down_since = pending
                    pending = np.inf
                else:
                    pending = etime + _std_exp(rng) / (shares * lam_i)
            else:
                # Checker visit.
                at = next_check
                is_down = not (pending < np.inf)
                needs_repair = (not is_down) and shares < r
                if is_down or needs_repair:
                    botched = h > 0.0 and rng.random() < h
                    if needs_repair:
                        du[i] += 1
                    if is_down:
                        downtime[i] += at - down_since
                        down_since = np.inf
                    shares = n - 1 if botched else n
                    if botched:
                        he[i] += 1
                    if shares < kk:
                        # A botched restore of a k == N scheme stays down —
                        # a continuing outage, no second dl_event.
                        down_since = at
                    else:
                        pending = etime + _std_exp(rng) / (shares * lam_i)
                next_check = at + period_t
            # Check-skip: at or above the repair threshold every check is a
            # no-op until the next failure, so jump ahead (never backwards).
            if pending < np.inf and shares >= r:
                skip = period_t * np.ceil(pending / period_t)
                if skip > next_check:
                    next_check = skip


# ----------------------------------------------------------------------
# Policy face resolution
# ----------------------------------------------------------------------
_FUSED_FAMILIES = {
    "batch_conventional": "conventional",
    "batch_baseline": "baseline",
    "batch_spare_pool": "spare_pool",
    "batch_erasure": "erasure",
}


def fused_face(policy) -> Optional[Tuple[str, dict]]:
    """Return ``(family, bound_kwargs)`` when ``policy`` has a fused loop.

    Unwraps ``functools.partial`` layers (collecting bound keywords such as
    ``n_spares=`` or ``scheme=``) exactly like
    :func:`repro.core.montecarlo.compiled.has_compiled_face`.
    """
    batch = getattr(policy, "batch", None)
    kwargs: dict = {}
    while isinstance(batch, functools.partial):
        merged = dict(batch.keywords)
        merged.update(kwargs)
        kwargs = merged
        batch = batch.func
    if batch is None:
        return None
    family = _FUSED_FAMILIES.get(getattr(batch, "__name__", ""))
    if family is None:
        return None
    return family, kwargs


def has_fused_face(policy) -> bool:
    """Return whether the policy's batch kernel has a fused event loop."""
    return fused_face(policy) is not None


# ----------------------------------------------------------------------
# Batch wrapper
# ----------------------------------------------------------------------
def _plane(value, m: int, dtype=np.float64) -> np.ndarray:
    """Broadcast a scalar-or-per-row parameter to a contiguous row plane."""
    arr = np.asarray(value, dtype=dtype)
    if arr.ndim == 0:
        return np.full(m, arr[()], dtype=dtype)
    if arr.shape != (m,):
        raise ConfigurationError(
            f"parameter plane shape {arr.shape} does not match {m} lifetimes"
        )
    return np.ascontiguousarray(arr)


def run_fused_batch(
    policy,
    params,
    horizon_hours: float,
    n_lifetimes: int,
    streams,
    biasing: Optional[Union[float, np.ndarray]] = None,
) -> BatchLifetimes:
    """Run one shard through the policy's fused event loop.

    ``streams`` is the shard's :class:`~repro.core.montecarlo.rng.RandomStreams`
    handle (the same spawn-indexed lineage the numpy kernels draw their
    ``"montecarlo"`` stream from); the fused loop consumes its own
    ``"fused"`` named stream, so the two backends never share draws but
    both stay worker-count-independent.
    """
    face = fused_face(policy)
    if face is None:
        raise ConfigurationError(
            f"policy {getattr(policy, 'name', policy)!r} has no fused event "
            "loop; run it with kernel='auto', 'numpy' or 'compiled'"
        )
    if not fused_available():
        raise ConfigurationError(
            "kernel='fused' needs numba (pip install 'repro[compiled]') or "
            f"the explicit pure-Python opt-in {FUSED_PUREPY_ENV}=1"
        )
    if horizon_hours <= 0.0:
        raise SimulationError(f"horizon must be positive, got {horizon_hours!r}")
    family, bound = face
    horizon = float(horizon_hours)
    m = _check_lifetimes(params, n_lifetimes)
    rng = streams.stream("fused")
    batch = BatchLifetimes.zeros(m, horizon)

    if family == "baseline":
        params = params.without_human_error()
        family = "conventional"

    if family == "erasure":
        if biasing is not None:
            raise ConfigurationError(
                "the erasure checker kernel does not support failure biasing; "
                "its aggregate share clocks have no per-draw likelihood ratio"
            )
        if np.any(np.asarray(getattr(params, "failure_shape", 1.0)) != 1.0):
            raise ConfigurationError(
                "the erasure kernel requires exponential share failures "
                "(failure_shape == 1); Weibull share decay is not memoryless"
            )
        n_arr, k_arr, r_arr, period = _erasure_scheme_planes(params, m, bound.get("scheme"))
        _fused_erasure(
            rng,
            horizon,
            _plane(params.disk_failure_rate, m),
            _plane(params.hep, m),
            np.ascontiguousarray(n_arr, dtype=np.int64),
            np.ascontiguousarray(k_arr, dtype=np.int64),
            np.ascontiguousarray(r_arr, dtype=np.int64),
            _plane(period, m),
            batch.downtime_hours,
            batch.du_events,
            batch.dl_events,
            batch.disk_failures,
            batch.human_errors,
        )
        return batch

    use_bias = biasing is not None
    if use_bias:
        bias_arr = np.asarray(biasing, dtype=float)
        if not np.all(np.isfinite(bias_arr)) or np.any(bias_arr <= 0.0):
            raise ConfigurationError(
                f"biasing factor must be positive and finite, got {biasing!r}"
            )
        bias = _plane(bias_arr, m)
        logw = np.zeros(m, dtype=float)
        batch.log_weights = logw
    else:
        bias = np.ones(m, dtype=float)
        logw = np.zeros(0, dtype=float)
    shape, scale = _failure_shape_scale(params.failure_distribution())
    shape_arr = _plane(shape, m)
    scale_arr = _plane(scale, m)
    n_disks_arr = np.ascontiguousarray(
        np.broadcast_to(
            np.asarray(_per_row_or(params, "n_disks_rows", params.n_disks)), (m,)
        ),
        dtype=np.int64,
    )
    n_cols = int(n_disks_arr.max())
    common = (
        _plane(params.disk_repair_rate, m),
        _plane(params.ddf_recovery_rate, m),
        _plane(params.human_error_rate, m),
        _plane(params.hep, m),
        _plane(params.crash_rate, m),
        n_disks_arr,
    )
    outputs = (
        batch.downtime_hours,
        batch.du_events,
        batch.dl_events,
        batch.disk_failures,
        batch.human_errors,
        logw,
    )
    if family == "conventional":
        _fused_conventional(
            rng, horizon, n_cols, shape_arr, scale_arr, bias, use_bias, *common, *outputs
        )
        return batch

    # Spare-pool family: per-row pool planes override the bound scalar.
    pool_rows = _per_row_or(params, "n_spares_rows", None)
    if pool_rows is None:
        n_spares = int(bound.get("n_spares", 1))
        if n_spares < 1:
            raise ConfigurationError(
                f"spare pool needs at least one spare, got {n_spares!r}"
            )
        pool_arr = np.full(m, n_spares, dtype=np.int64)
    else:
        if np.any(np.asarray(pool_rows) < 1):
            raise ConfigurationError("every stacked pool needs at least one spare")
        pool_arr = np.ascontiguousarray(pool_rows, dtype=np.int64)
    repair, ddf, recovery, hep, crash, n_disks_arr = common
    _fused_spare_pool(
        rng,
        horizon,
        n_cols,
        shape_arr,
        scale_arr,
        bias,
        use_bias,
        repair,
        _plane(params.spare_replacement_rate, m),
        ddf,
        recovery,
        hep,
        crash,
        n_disks_arr,
        pool_arr,
        *outputs,
    )
    return batch


def warmup_fused() -> None:
    """Compile (or, pure-Python, exercise) every fused loop on a tiny shard.

    Touches all three family kernels with biasing enabled so benchmark and
    sweep timings never include nopython compilation; with ``cache=True``
    the compiled loops land in the on-disk numba cache that CI restores.
    """
    rng = np.random.default_rng(0)
    m = 2
    f64 = lambda v: np.full(m, float(v))  # noqa: E731 - local literal helper
    i64 = lambda v: np.full(m, int(v), dtype=np.int64)  # noqa: E731
    out = lambda: (  # noqa: E731
        np.zeros(m),
        np.zeros(m, dtype=np.int64),
        np.zeros(m, dtype=np.int64),
        np.zeros(m, dtype=np.int64),
        np.zeros(m, dtype=np.int64),
        np.zeros(m),
    )
    _fused_conventional(
        rng, 100.0, 2, f64(1.0), f64(50.0), f64(2.0), True,
        f64(0.1), f64(0.5), f64(1.0), f64(0.2), f64(0.01), i64(2), *out()
    )
    _fused_spare_pool(
        rng, 100.0, 2, f64(1.0), f64(50.0), f64(2.0), True,
        f64(0.1), f64(0.2), f64(0.5), f64(1.0), f64(0.2), f64(0.01), i64(2), i64(1), *out()
    )
    _fused_erasure(
        rng, 100.0, f64(0.01), f64(0.2), i64(4), i64(2), i64(3), f64(24.0), *out()[:5]
    )


__all__ = [
    "FUSED_PUREPY_ENV",
    "fused_available",
    "fused_face",
    "has_fused_face",
    "jit_enabled",
    "run_fused_batch",
    "warmup_fused",
]
