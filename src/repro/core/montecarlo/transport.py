"""Zero-copy shared-memory transport of stacked parameter planes.

The stacked sweep engine used to re-pickle every shard's parameter points
into the worker processes, where each worker rebuilt its
:class:`~repro.core.policies.stacked.StackedParams` slice from scalars —
per shard, per round.  This module moves a sweep's parameter planes across
the process boundary **once**:

* :class:`SharedGridPlanes` materialises the whole grid's broadcast arrays
  (rates, hep, geometry, spare counts) into one
  :mod:`multiprocessing.shared_memory` segment, laid out field after field
  in :data:`repro.core.policies.stacked.STACKED_PLANE_FIELDS` order;
* workers attach by segment name and address their shard as a **row-range
  view** — no copy, no pickling of grid-sized arrays
  (:func:`attach_grid_slice`);
* the parent unlinks the segment when the sweep leaves the context
  (exception paths included), so no ``/dev/shm`` entries outlive a run.

The segment layout is deliberately trivial — every plane is a contiguous
1-d array of ``n_rows`` items at a deterministic offset — so a spec of
``(segment name, n_rows, has_spares)`` fully describes the attach protocol;
that spec is the only thing pickled per shard.

Transport selection lives in :func:`resolve_stacked_transport`: ``"auto"``
prefers shared memory whenever it is actually usable (probed once, not
assumed from the platform) and falls back to the retained pickle path,
which doubles as the bit-identity oracle — both transports feed the kernels
value-identical parameter rows, so results are byte-identical.
"""

from __future__ import annotations

import atexit
import os
import secrets
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.policies.stacked import (
    OPTIONAL_PLANE_FIELD,
    SCHEME_PLANE_FIELDS,
    STACKED_PLANE_FIELDS,
    StackedParams,
    stacked_from_planes,
)
from repro.exceptions import ConfigurationError

__all__ = [
    "SHM_SEGMENT_PREFIX",
    "TRANSPORTS",
    "GridPlanesSpec",
    "SharedGridPlanes",
    "active_segments",
    "attach_grid_slice",
    "attach_segment",
    "attach_segment_cached",
    "reap_stale_segments",
    "resolve_stacked_transport",
    "shared_memory_available",
]

#: Accepted ``MonteCarloConfig.transport`` values.
TRANSPORTS = ("auto", "shm", "pickle")

#: Name prefix of every segment this module creates — the handle the leak
#: tests (and curious operators, via ``ls /dev/shm``) grep for.
SHM_SEGMENT_PREFIX = "repro-mc-"

#: Cached result of the one-time shared-memory probe.
_SHM_USABLE: Optional[bool] = None


def _segment_name() -> str:
    """Return a fresh collision-free segment name.

    The creator's pid is embedded (in hex) so a later process can tell a
    *stale* segment — creator no longer alive — from a live one without any
    registry file; see :func:`reap_stale_segments`.
    """
    return f"{SHM_SEGMENT_PREFIX}{os.getpid():x}-{secrets.token_hex(4)}"


#: Per-process registry of live :class:`SharedGridPlanes`.  The atexit
#: sweep below disposes whatever is still registered when the interpreter
#: exits — the window this closes is the parent dying (unhandled exception,
#: ``sys.exit``) *between* segment creation and the executor's ``finally``
#: taking ownership.  SIGKILL skips atexit by definition; those segments
#: are recovered by :func:`reap_stale_segments` on the next run instead.
_LIVE_PLANES: "set" = set()
_ATEXIT_REGISTERED = False


def _register_live(planes: "SharedGridPlanes") -> None:
    global _ATEXIT_REGISTERED
    _LIVE_PLANES.add(planes)
    if not _ATEXIT_REGISTERED:
        atexit.register(_dispose_live_planes)
        _ATEXIT_REGISTERED = True


def _dispose_live_planes() -> None:
    """Atexit hook: unlink every segment this process still owns."""
    for planes in list(_LIVE_PLANES):
        planes.dispose()


def _segment_owner_pid(name: str) -> Optional[int]:
    """Parse the creator pid out of a segment name (``None`` if malformed)."""
    stem = name[len(SHM_SEGMENT_PREFIX):]
    head, _, _ = stem.partition("-")
    try:
        return int(head, 16)
    except ValueError:
        return None


def reap_stale_segments() -> List[str]:
    """Unlink repro segments whose creator process is gone; return names.

    A segment is stale when the pid embedded in its name no longer exists
    (``os.kill(pid, 0)`` raises ``ProcessLookupError``) — the SIGKILL'd
    parent that atexit could not cover.  Segments of live pids (including
    this process's own) are left alone: they may still be mid-sweep.  Runs
    automatically at the start of every shm-transport sweep and on demand
    via ``repro mc --reap-shm``.
    """
    reaped: List[str] = []
    for name in active_segments():
        pid = _segment_owner_pid(name)
        if pid is None or pid == os.getpid():
            continue
        try:
            os.kill(pid, 0)
            continue  # creator still alive — not ours to reap
        except ProcessLookupError:
            pass
        except PermissionError:
            continue  # alive, owned by another user
        try:
            segment = attach_segment(name)
            segment.close()
            segment.unlink()
            reaped.append(name)
        except FileNotFoundError:  # pragma: no cover - raced another reaper
            continue
        except Exception:  # pragma: no cover - leave undeletable entries
            continue
    return reaped


def shared_memory_available() -> bool:
    """Return whether POSIX shared memory actually works here (probed once).

    Some minimal containers expose the API but no usable backing mount, so
    the ``auto`` transport trusts a live create/attach round-trip, not the
    platform name.
    """
    global _SHM_USABLE
    if _SHM_USABLE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(
                create=True, size=8, name=_segment_name()
            )
            try:
                probe.buf[0] = 1
            finally:
                probe.close()
                probe.unlink()
            _SHM_USABLE = True
        except Exception:
            _SHM_USABLE = False
    return _SHM_USABLE


def resolve_stacked_transport(transport: str, pooled: bool) -> str:
    """Resolve a config's transport to the concrete execution mode.

    Returns one of ``"shm"`` (planes in a shared segment, workers attach),
    ``"view"`` (single process: shards slice the materialised grid
    directly — the degenerate zero-copy case with no segment at all), or
    ``"pickle"`` (per-shard scalar rebuild, the retained fallback/oracle).

    ``pooled`` says whether shards will cross a process boundary.  An
    explicit ``"shm"`` request on a host without usable shared memory is an
    error rather than a silent fallback; ``"auto"`` degrades to pickle.
    """
    if transport not in TRANSPORTS:
        raise ConfigurationError(
            f"transport must be one of {TRANSPORTS}, got {transport!r}"
        )
    if transport == "pickle":
        return "pickle"
    if not pooled:
        return "view"
    if shared_memory_available():
        return "shm"
    if transport == "shm":
        raise ConfigurationError(
            "transport='shm' was requested but POSIX shared memory is not "
            "usable on this host; use transport='auto' or 'pickle'"
        )
    return "pickle"


def _plane_layout(
    n_rows: int, has_spares: bool, has_schemes: bool = False
) -> Tuple[List[Tuple[str, np.dtype, int]], int]:
    """Return the ``(name, dtype, byte offset)`` of every plane + total size."""
    fields = list(STACKED_PLANE_FIELDS)
    if has_spares:
        fields.append(OPTIONAL_PLANE_FIELD)
    if has_schemes:
        fields.extend(SCHEME_PLANE_FIELDS)
    layout: List[Tuple[str, np.dtype, int]] = []
    offset = 0
    for name, dtype in fields:
        dt = np.dtype(dtype)
        layout.append((name, dt, offset))
        offset += int(n_rows) * dt.itemsize
    return layout, offset


@dataclass(frozen=True)
class GridPlanesSpec:
    """Picklable attach protocol of one sweep's shared parameter planes.

    A few values describe the whole segment: plane order and dtypes are
    fixed by :data:`~repro.core.policies.stacked.STACKED_PLANE_FIELDS` (plus
    the optional spare and scheme planes the two flags announce), so
    offsets are recomputed identically on both sides of the process
    boundary.  This spec — not the planes — is what each shard submission
    pickles.
    """

    name: str
    n_rows: int
    has_spares: bool
    has_schemes: bool = False


#: ``StackedParams`` plane name -> source attribute on a scalar
#: ``AvailabilityParameters`` point (identity unless listed).
_POINT_ATTRS = {"n_disks_rows": "n_disks"}


class SharedGridPlanes:
    """A sweep grid's parameter planes, materialised in shared memory once.

    Context-managed: entering returns the planes object, leaving closes
    *and unlinks* the segment on every exit path (normal completion,
    executor failure, adaptive early-stop), which is what keeps
    ``/dev/shm`` clean after crashed sweeps.  ``dispose`` is idempotent so
    belt-and-braces callers may also unlink from a ``finally``.

    Build with :meth:`from_points` when the grid exists as per-point
    scalars (the sweep case): the planes are then written **directly** into
    the segment, point range by point range — one pass over the grid bytes,
    no intermediate full-size arrays.  The plain constructor copies an
    already-materialised :class:`StackedParams` instead.
    """

    def __init__(self, grid: StackedParams) -> None:
        n_rows = len(grid)
        has_spares = grid.n_spares_rows is not None
        has_schemes = grid.has_schemes
        self._allocate(n_rows, has_spares, has_schemes)
        try:
            for name, dt, offset in _plane_layout(n_rows, has_spares, has_schemes)[0]:
                view = np.ndarray((n_rows,), dtype=dt, buffer=self._shm.buf, offset=offset)
                np.copyto(view, getattr(grid, name))
                del view  # release the buffer export so close() can succeed
        except BaseException:
            self.dispose()
            raise

    @classmethod
    def from_points(cls, points, counts, schemes=None) -> "SharedGridPlanes":
        """Materialise per-point scalars straight into a fresh segment.

        ``points[i]`` contributes ``counts[i]`` consecutive rows, exactly
        like :func:`repro.core.policies.stacked.stack_parameter_points` —
        each plane value is the same float64/int64 scalar either way, so
        the planes are bit-identical to the repack-then-copy construction
        while touching every grid byte exactly once.  ``schemes`` attaches
        one periodic redundancy scheme per point (resolved against that
        point's geometry), adding the three per-row scheme planes.
        """
        sizes = [int(c) for c in counts]
        if len(points) == 0 or len(sizes) != len(points):
            raise ConfigurationError("one lifetime count is required per parameter point")
        if any(size < 1 for size in sizes):
            raise ConfigurationError("every stacked point needs at least one lifetime")
        scheme_values: Dict[str, List[object]] = {}
        if schemes is not None:
            if len(schemes) != len(points):
                raise ConfigurationError("one scheme is required per parameter point")
            resolved = [
                scheme.resolve(point) if hasattr(scheme, "resolve") else scheme
                for scheme, point in zip(schemes, points)
            ]
            if any(not r.is_periodic for r in resolved):
                raise ConfigurationError(
                    "shared scheme planes need periodic schemes (a check period)"
                )
            scheme_values = {
                "k_rows": [r.k for r in resolved],
                "repair_threshold_rows": [r.repair_threshold for r in resolved],
                "check_period_rows": [r.check_period_hours for r in resolved],
            }
        n_rows = sum(sizes)
        planes = cls.__new__(cls)
        planes._allocate(n_rows, has_spares=False, has_schemes=schemes is not None)
        try:
            for name, dt, offset in _plane_layout(n_rows, False, schemes is not None)[0]:
                view = np.ndarray((n_rows,), dtype=dt, buffer=planes._shm.buf, offset=offset)
                if name in scheme_values:
                    values = scheme_values[name]
                    start = 0
                    for value, size in zip(values, sizes):
                        view[start : start + size] = value
                        start += size
                else:
                    attr = _POINT_ATTRS.get(name, name)
                    start = 0
                    for point, size in zip(points, sizes):
                        view[start : start + size] = getattr(point, attr)
                        start += size
                del view
        except BaseException:
            planes.dispose()
            raise
        return planes

    def _allocate(self, n_rows: int, has_spares: bool, has_schemes: bool = False) -> None:
        from multiprocessing import shared_memory

        _, size = _plane_layout(n_rows, has_spares, has_schemes)
        self._shm = shared_memory.SharedMemory(
            create=True, size=size, name=_segment_name()
        )
        self.spec = GridPlanesSpec(
            name=self._shm.name,
            n_rows=n_rows,
            has_spares=has_spares,
            has_schemes=has_schemes,
        )
        self._disposed = False
        # Registered the moment the segment exists: should this process die
        # before the executor's finally-block takes over, the atexit sweep
        # still unlinks it.
        _register_live(self)

    def dispose(self) -> None:
        """Close and unlink the segment (idempotent, never raises)."""
        if getattr(self, "_disposed", False):
            return
        self._disposed = True
        try:
            _LIVE_PLANES.discard(self)
        except Exception:  # pragma: no cover - interpreter teardown
            pass
        try:
            self._shm.close()
        except Exception:
            pass
        try:
            self._shm.unlink()
        except Exception:
            pass

    def __enter__(self) -> "SharedGridPlanes":
        return self

    def __exit__(self, *exc_info) -> None:
        self.dispose()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        self.dispose()


def attach_segment(name: str):
    """Attach an existing segment without taking cleanup ownership.

    On Python 3.13+ ``track=False`` skips resource-tracker registration
    outright.  Older interpreters register every attach — but pool workers
    (forked *and* spawned) share the parent's tracker process, where the
    registry is a per-name set: the worker's registration is an idempotent
    no-op and the parent's ``unlink`` performs the one unregister.  Nothing
    to undo worker-side, and explicitly unregistering there would instead
    strip the parent's entry (spurious tracker ``KeyError`` at unlink, and
    no crash cleanup should the whole tree die before unlinking).
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name, create=False)


#: Single-slot per-process cache of the most recently attached segment.
_ATTACHED: Optional[Tuple[str, object]] = None


def attach_segment_cached(name: str):
    """Return this process's (cached) attachment of segment ``name``.

    A pool worker runs many shards of the same sweep; caching the one live
    segment avoids a ``shm_open``/``mmap`` round-trip per shard.  Attaching
    a *different* name (the next sweep) closes the previous mapping first,
    so a long-lived worker holds at most one segment mapped at any time —
    bounded memory even across many sweeps on a shared pool.
    """
    global _ATTACHED
    if _ATTACHED is not None:
        if _ATTACHED[0] == name:
            return _ATTACHED[1]
        try:
            _ATTACHED[1].close()
        except BufferError:  # pragma: no cover - lingering view; freed at exit
            pass
        _ATTACHED = None
    segment = attach_segment(name)
    _ATTACHED = (name, segment)
    return segment


def attach_grid_slice(spec: GridPlanesSpec, buf, start: int, stop: int) -> StackedParams:
    """Build a worker's grid slice as read-only views of an attached buffer.

    ``buf`` is the attached segment's buffer; the returned
    :class:`StackedParams` holds zero-copy row-range views ``[start, stop)``
    of every plane, marked non-writable so a kernel bug can never corrupt
    the planes other workers are reading.
    """
    if not 0 <= start < stop <= spec.n_rows:
        raise ConfigurationError(
            f"invalid plane slice [{start}, {stop}) of {spec.n_rows} rows"
        )
    layout, _ = _plane_layout(spec.n_rows, spec.has_spares, spec.has_schemes)
    planes: Dict[str, np.ndarray] = {}
    for name, dt, offset in layout:
        view = np.ndarray(
            (stop - start,),
            dtype=dt,
            buffer=buf,
            offset=offset + start * dt.itemsize,
        )
        view.flags.writeable = False
        planes[name] = view
    return stacked_from_planes(planes)


def active_segments() -> List[str]:
    """Return the names of live repro segments (Linux ``/dev/shm`` view).

    Used by the lifecycle tests to assert that no segment outlives its
    sweep; returns an empty list on hosts without a ``/dev/shm`` mount.
    """
    root = Path("/dev/shm")
    if not root.is_dir():
        return []
    return sorted(p.name for p in root.glob(SHM_SEGMENT_PREFIX + "*"))
