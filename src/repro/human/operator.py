"""Operator model: the human agent performing disk replacements.

An :class:`Operator` encapsulates the stochastic behaviour of the technician
in the paper's scenario: when asked to replace a failed disk they succeed
with probability ``1 - hep``, pull a wrong (healthy) disk with probability
``hep``, and take a random amount of time to perform either action.  The
same machinery covers the *recovery* of a previous error (putting the
wrongly pulled disk back), which in the paper's models can itself fail with
the same hep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.distributions import Distribution, Exponential
from repro.exceptions import HumanErrorModelError
from repro.human.hep import HumanErrorProbability


@dataclass(frozen=True)
class ReplacementOutcome:
    """Result of one attempted service action.

    Attributes
    ----------
    success:
        ``True`` when the intended disk was replaced / the error was undone.
    human_error:
        ``True`` when the action itself introduced a new wrong-disk error.
    duration_hours:
        Time the action took (the array stays in its previous state for this
        long before the outcome applies).
    """

    success: bool
    human_error: bool
    duration_hours: float


class Operator:
    """A technician with a given error probability and service-time behaviour.

    Parameters
    ----------
    hep:
        Probability that a replacement (or error-recovery) action goes wrong.
    replacement_time:
        Distribution of the time to perform a disk replacement, in hours.
        The paper's ``mu_DF = 0.1`` corresponds to an exponential with a
        10 hour mean (detection + travel + swap + rebuild).
    error_recovery_time:
        Distribution of the time to detect and undo a wrong replacement
        (``mu_he = 1`` in the paper, i.e. a one hour mean).
    name:
        Cosmetic identifier used in traces.
    """

    def __init__(
        self,
        hep: float,
        replacement_time: Optional[Distribution] = None,
        error_recovery_time: Optional[Distribution] = None,
        name: str = "operator",
    ) -> None:
        self._hep = HumanErrorProbability(value=float(hep), source="operator model")
        self._replacement_time = replacement_time or Exponential(0.1)
        self._recovery_time = error_recovery_time or Exponential(1.0)
        self._name = str(name)
        self._actions = 0
        self._errors = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Return the operator's identifier."""
        return self._name

    @property
    def hep(self) -> float:
        """Return the configured human error probability."""
        return self._hep.value

    @property
    def replacement_time(self) -> Distribution:
        """Return the replacement-duration distribution."""
        return self._replacement_time

    @property
    def error_recovery_time(self) -> Distribution:
        """Return the error-recovery-duration distribution."""
        return self._recovery_time

    @property
    def actions_performed(self) -> int:
        """Return how many service actions this operator has attempted."""
        return self._actions

    @property
    def errors_committed(self) -> int:
        """Return how many of those actions were erroneous."""
        return self._errors

    def observed_error_rate(self) -> float:
        """Return the empirical error fraction over the actions performed."""
        if self._actions == 0:
            return 0.0
        return self._errors / self._actions

    # ------------------------------------------------------------------
    # Stochastic behaviour
    # ------------------------------------------------------------------
    def attempt_replacement(self, rng: np.random.Generator) -> ReplacementOutcome:
        """Attempt to replace the failed disk of a degraded array."""
        return self._attempt(rng, self._replacement_time)

    def attempt_error_recovery(self, rng: np.random.Generator) -> ReplacementOutcome:
        """Attempt to undo a previous wrong replacement."""
        return self._attempt(rng, self._recovery_time)

    def sample_replacement_hours(self, rng: np.random.Generator) -> float:
        """Draw only the duration of a replacement action."""
        return float(self._replacement_time.sample(1, rng)[0])

    def sample_recovery_hours(self, rng: np.random.Generator) -> float:
        """Draw only the duration of an error-recovery action."""
        return float(self._recovery_time.sample(1, rng)[0])

    def _attempt(self, rng: np.random.Generator, duration: Distribution) -> ReplacementOutcome:
        if not isinstance(rng, np.random.Generator):
            raise HumanErrorModelError("an numpy Generator is required for operator sampling")
        self._actions += 1
        erred = bool(rng.random() < self._hep.value)
        if erred:
            self._errors += 1
        return ReplacementOutcome(
            success=not erred,
            human_error=erred,
            duration_hours=float(duration.sample(1, rng)[0]),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Operator(name={self._name!r}, hep={self._hep.value:.4g})"
