"""Human-error recovery model.

Once a wrong disk replacement happens, the error remains outstanding until
someone notices that the array went offline (or that the wrong slot LED is
lit) and puts the wrongly pulled disk back.  Two further things can happen
while the error is outstanding:

* the recovery attempt itself goes wrong (another human error), and
* the wrongly pulled disk — which is being handled, carried around and
  re-seated — suffers a mechanical crash, converting the unavailability into
  a real data loss that only the backup can fix (rate ``lambda_crash``,
  0.01/h in the paper).

:class:`HumanErrorRecoveryModel` packages those three ingredients so both the
Monte Carlo simulator and documentation examples use identical semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.distributions import Distribution, Exponential
from repro.exceptions import HumanErrorModelError


@dataclass(frozen=True)
class RecoveryAttemptResult:
    """Outcome of one attempt to undo a wrong disk replacement.

    Attributes
    ----------
    recovered:
        ``True`` when the wrongly pulled disk was re-inserted successfully.
    repeated_error:
        ``True`` when the recovery attempt itself was botched (the error
        stays outstanding and a new attempt will follow).
    disk_crashed:
        ``True`` when the wrongly pulled disk crashed before the recovery
        completed, escalating the event to data loss.
    duration_hours:
        Time consumed by this attempt (or until the crash).
    """

    recovered: bool
    repeated_error: bool
    disk_crashed: bool
    duration_hours: float


class HumanErrorRecoveryModel:
    """Stochastic model of undoing a wrong disk replacement."""

    def __init__(
        self,
        hep: float,
        recovery_time: Optional[Distribution] = None,
        crash_rate_per_hour: float = 0.01,
    ) -> None:
        if not 0.0 <= hep <= 1.0:
            raise HumanErrorModelError(f"hep must lie in [0, 1], got {hep!r}")
        if crash_rate_per_hour < 0.0:
            raise HumanErrorModelError(
                f"crash rate must be non-negative, got {crash_rate_per_hour!r}"
            )
        self._hep = float(hep)
        self._recovery_time = recovery_time or Exponential(1.0)
        self._crash_rate = float(crash_rate_per_hour)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def hep(self) -> float:
        """Return the probability that a recovery attempt is itself erroneous."""
        return self._hep

    @property
    def crash_rate_per_hour(self) -> float:
        """Return the crash rate of the wrongly pulled disk (per hour)."""
        return self._crash_rate

    @property
    def recovery_time(self) -> Distribution:
        """Return the distribution of recovery-attempt durations."""
        return self._recovery_time

    def mean_recovery_hours(self) -> float:
        """Return the mean duration of a single recovery attempt."""
        return self._recovery_time.mean()

    def expected_outstanding_hours(self) -> float:
        """Return the expected total outstanding time of a wrong replacement.

        With each attempt failing independently with probability ``hep`` the
        number of attempts is geometric, so the expectation is
        ``mean_attempt / (1 - hep)`` (infinite when ``hep == 1``).  The crash
        path truncates this in simulation but is ignored here.
        """
        if self._hep >= 1.0:
            return float("inf")
        return self.mean_recovery_hours() / (1.0 - self._hep)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_attempt(self, rng: np.random.Generator) -> RecoveryAttemptResult:
        """Draw the outcome of one recovery attempt.

        The attempt duration and the crash time race: if the crash happens
        first the attempt is moot and the event escalates to data loss.
        """
        attempt_hours = float(self._recovery_time.sample(1, rng)[0])
        crash_hours = self.sample_crash_time(rng)
        if crash_hours is not None and crash_hours < attempt_hours:
            return RecoveryAttemptResult(
                recovered=False,
                repeated_error=False,
                disk_crashed=True,
                duration_hours=crash_hours,
            )
        repeated = bool(rng.random() < self._hep)
        return RecoveryAttemptResult(
            recovered=not repeated,
            repeated_error=repeated,
            disk_crashed=False,
            duration_hours=attempt_hours,
        )

    def sample_crash_time(self, rng: np.random.Generator) -> Optional[float]:
        """Draw the time until the wrongly pulled disk crashes (``None`` if never)."""
        if self._crash_rate <= 0.0:
            return None
        return float(rng.exponential(1.0 / self._crash_rate))

    def sample_until_recovered(
        self, rng: np.random.Generator, max_attempts: int = 1000
    ) -> RecoveryAttemptResult:
        """Repeat attempts until the error is recovered or the disk crashes.

        Returns a single aggregated result whose duration is the sum of all
        attempt durations.  ``max_attempts`` guards against hep = 1 loops.
        """
        total_hours = 0.0
        for _ in range(int(max_attempts)):
            attempt = self.sample_attempt(rng)
            total_hours += attempt.duration_hours
            if attempt.disk_crashed:
                return RecoveryAttemptResult(
                    recovered=False,
                    repeated_error=False,
                    disk_crashed=True,
                    duration_hours=total_hours,
                )
            if attempt.recovered:
                return RecoveryAttemptResult(
                    recovered=True,
                    repeated_error=False,
                    disk_crashed=False,
                    duration_hours=total_hours,
                )
        raise HumanErrorModelError(
            f"error recovery did not terminate within {max_attempts} attempts "
            f"(hep={self._hep!r})"
        )
