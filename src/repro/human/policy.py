"""Disk replacement policies.

The paper contrasts two service policies for a RAID group:

* **Conventional replacement** — as soon as a disk fails, a technician swaps
  it for a new disk and starts the rebuild.  The operator touches the array
  while it is *degraded*, so a wrong-disk error immediately takes the data
  offline.
* **Automatic fail-over (delayed replacement)** — the failed disk's contents
  are first rebuilt onto a hot spare with no human involvement; only after
  the on-line rebuild completes does a technician replace the dead hardware
  (to restore the spare).  The operator now touches the array while it is
  *fully redundant*, so a wrong-disk error only degrades it.

These policy objects are consumed by the Monte Carlo simulator
(:mod:`repro.core.montecarlo`) and mirrored analytically by the two Markov
models in :mod:`repro.core.models`.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

from repro.exceptions import HumanErrorModelError


class PolicyKind(enum.Enum):
    """Identifier of the replacement policy variants."""

    CONVENTIONAL = "conventional"
    AUTOMATIC_FAILOVER = "automatic_failover"


@dataclass(frozen=True)
class PolicyDecision:
    """What the policy wants to happen next for a degraded array.

    Attributes
    ----------
    start_human_replacement:
        ``True`` when a technician should be dispatched now.
    start_spare_rebuild:
        ``True`` when an automatic rebuild onto a hot spare should start now.
    rationale:
        Human-readable explanation used in traces.
    """

    start_human_replacement: bool
    start_spare_rebuild: bool
    rationale: str


class ReplacementPolicy(abc.ABC):
    """Strategy deciding how a failed disk is handled."""

    kind: PolicyKind

    @abc.abstractmethod
    def on_disk_failure(self, spares_available: int, rebuild_in_progress: bool) -> PolicyDecision:
        """Return the action to take when a disk has just failed."""

    @abc.abstractmethod
    def allows_replacement_during_rebuild(self) -> bool:
        """Return whether a human may touch the array while a rebuild runs."""

    @property
    def label(self) -> str:
        """Return a display label for reports."""
        return self.kind.value.replace("_", " ")


class ConventionalReplacementPolicy(ReplacementPolicy):
    """Replace the failed disk immediately via a human technician."""

    kind = PolicyKind.CONVENTIONAL

    def on_disk_failure(self, spares_available: int, rebuild_in_progress: bool) -> PolicyDecision:
        return PolicyDecision(
            start_human_replacement=True,
            start_spare_rebuild=False,
            rationale="conventional policy: dispatch technician immediately",
        )

    def allows_replacement_during_rebuild(self) -> bool:
        return True


class AutomaticFailoverPolicy(ReplacementPolicy):
    """Rebuild onto a hot spare first; replace hardware only afterwards.

    Parameters
    ----------
    require_spare:
        When ``True`` (default) the policy falls back to conventional
        replacement if no spare is available, mirroring the paper's model
        where the no-spare states (``OPns``, ``EXPns*``) involve the
        technician again.
    """

    kind = PolicyKind.AUTOMATIC_FAILOVER

    def __init__(self, require_spare: bool = True) -> None:
        self._require_spare = bool(require_spare)

    def on_disk_failure(self, spares_available: int, rebuild_in_progress: bool) -> PolicyDecision:
        if spares_available < 0:
            raise HumanErrorModelError(
                f"spares_available must be non-negative, got {spares_available!r}"
            )
        if spares_available > 0:
            return PolicyDecision(
                start_human_replacement=False,
                start_spare_rebuild=True,
                rationale="automatic fail-over: rebuild onto hot spare, defer replacement",
            )
        if self._require_spare:
            return PolicyDecision(
                start_human_replacement=True,
                start_spare_rebuild=False,
                rationale="no spare available: fall back to technician replacement",
            )
        return PolicyDecision(
            start_human_replacement=False,
            start_spare_rebuild=False,
            rationale="no spare available: wait (strict delayed replacement)",
        )

    def allows_replacement_during_rebuild(self) -> bool:
        return False


def make_policy(kind: PolicyKind) -> ReplacementPolicy:
    """Instantiate the policy matching ``kind``."""
    if kind is PolicyKind.CONVENTIONAL:
        return ConventionalReplacementPolicy()
    if kind is PolicyKind.AUTOMATIC_FAILOVER:
        return AutomaticFailoverPolicy()
    raise HumanErrorModelError(f"unknown policy kind {kind!r}")
