"""Taxonomy of human errors in storage field service.

The paper concentrates on one error — wrong disk replacement — but motivates
it from a broader taxonomy (Haubert's CoRR 2004 case study, Oppenheimer's
configuration-error studies).  Keeping the taxonomy explicit lets the Monte
Carlo simulator attribute downtime to specific error classes and lets the
examples explore "what if wrong-script errors were also modelled".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class HumanErrorType(enum.Enum):
    """Classes of operator error relevant to disk-subsystem service."""

    #: A healthy disk is pulled instead of the failed one (the paper's focus).
    WRONG_DISK_REPLACEMENT = "wrong_disk_replacement"
    #: A recovery script / command is executed with wrong arguments or at the
    #: wrong time (e.g. before the rebuild completed).
    WRONG_SCRIPT_EXECUTION = "wrong_script_execution"
    #: Replacement performed on the wrong array or enclosure entirely.
    WRONG_ARRAY_SELECTED = "wrong_array_selected"
    #: Failure to act (missed alert, replacement postponed indefinitely).
    OMISSION = "omission"
    #: Mis-configuration of the RAID controller / volume manager.
    MISCONFIGURATION = "misconfiguration"


#: Whether an error class makes the array data immediately unavailable when
#: it happens while the array is already degraded (one disk missing).
MAKES_DEGRADED_ARRAY_UNAVAILABLE: Dict[HumanErrorType, bool] = {
    HumanErrorType.WRONG_DISK_REPLACEMENT: True,
    HumanErrorType.WRONG_SCRIPT_EXECUTION: True,
    HumanErrorType.WRONG_ARRAY_SELECTED: False,
    HumanErrorType.OMISSION: False,
    HumanErrorType.MISCONFIGURATION: True,
}


@dataclass
class HumanErrorEvent:
    """A concrete human error occurrence inside a simulation run.

    Attributes
    ----------
    time:
        Simulation time (hours) at which the error happened.
    error_type:
        Error class from :class:`HumanErrorType`.
    array_id:
        Array on which the intervention was performed.
    affected_disk_id:
        Disk wrongly pulled / affected (when applicable).
    recovered_at:
        Time at which the error was detected and undone, or ``None`` while
        outstanding.
    caused_data_unavailability:
        Whether the error made user data unavailable.
    caused_data_loss:
        Whether the wrongly handled disk subsequently crashed, converting the
        unavailability into a data-loss (backup restore) event.
    """

    time: float
    error_type: HumanErrorType
    array_id: str
    affected_disk_id: str = ""
    recovered_at: Optional[float] = None
    caused_data_unavailability: bool = False
    caused_data_loss: bool = False
    detail: Dict[str, object] = field(default_factory=dict)

    @property
    def outstanding(self) -> bool:
        """Return whether the error has not been recovered yet."""
        return self.recovered_at is None

    @property
    def recovery_duration(self) -> Optional[float]:
        """Return how long the error remained outstanding (hours)."""
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.time

    def mark_recovered(self, time: float) -> None:
        """Record that the error was detected and undone at ``time``."""
        if time < self.time:
            raise ValueError(
                f"recovery time {time!r} precedes the error time {self.time!r}"
            )
        self.recovered_at = float(time)


@dataclass
class HumanErrorLog:
    """Accumulates human error events across a simulation run."""

    events: list = field(default_factory=list)

    def record(self, event: HumanErrorEvent) -> HumanErrorEvent:
        """Append an event and return it for further mutation."""
        self.events.append(event)
        return event

    def count(self, error_type: Optional[HumanErrorType] = None) -> int:
        """Return the number of recorded errors (optionally filtered by type)."""
        if error_type is None:
            return len(self.events)
        return sum(1 for event in self.events if event.error_type is error_type)

    def count_causing_unavailability(self) -> int:
        """Return how many errors made data unavailable."""
        return sum(1 for event in self.events if event.caused_data_unavailability)

    def count_causing_data_loss(self) -> int:
        """Return how many errors escalated into data loss."""
        return sum(1 for event in self.events if event.caused_data_loss)

    def outstanding(self) -> list:
        """Return errors that have not been recovered yet."""
        return [event for event in self.events if event.outstanding]

    def by_type(self) -> Dict[str, int]:
        """Return a histogram of error counts keyed by error type value."""
        histogram: Dict[str, int] = {}
        for event in self.events:
            key = event.error_type.value
            histogram[key] = histogram.get(key, 0) + 1
        return histogram
