"""Human Error Probability (hep) data and Human Reliability Assessment helpers.

Section II of the paper surveys HRA sources (NASA HRA, EUROCONTROL, NUREG /
THERP) and concludes that the probability of an error in a routine manual
task falls between 0.001 and 0.1, narrowing to 0.001-0.01 for enterprise and
safety-critical operations with checklists and trained staff.  This module
encodes those reference bands, the performance-shaping-factor adjustment
used by THERP-style assessments, and the specific hep values the paper
sweeps (0, 0.001, 0.01).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.exceptions import HumanErrorModelError

#: hep values swept by the paper's experiments.
PAPER_HEP_VALUES: Tuple[float, ...] = (0.0, 0.001, 0.01)

#: Reference bands collected from HRA literature, as (low, high) hep ranges.
HEP_REFERENCE_BANDS: Dict[str, Tuple[float, float]] = {
    # General manual task probability range quoted in the paper.
    "general_manual_task": (0.001, 0.1),
    # Enterprise / safety-critical operations with procedures and training.
    "enterprise_with_procedures": (0.001, 0.01),
    # Routine, well-rehearsed action with strong feedback (best case in THERP).
    "skill_based_routine": (0.0001, 0.001),
    # Complex diagnosis under time pressure (worst case bands).
    "knowledge_based_under_stress": (0.01, 0.3),
}


@dataclass(frozen=True)
class HumanErrorProbability:
    """A validated human error probability with provenance.

    Attributes
    ----------
    value:
        Probability that a single execution of the task is erroneous.
    source:
        Free-form provenance string ("paper sweep", "NUREG-1278 table 20-7").
    task:
        Short description of the assessed task.
    """

    value: float
    source: str = "unspecified"
    task: str = "disk replacement"

    def __post_init__(self) -> None:
        if not math.isfinite(self.value) or not 0.0 <= self.value <= 1.0:
            raise HumanErrorModelError(
                f"human error probability must lie in [0, 1], got {self.value!r}"
            )

    def complement(self) -> float:
        """Return the success probability ``1 - hep``."""
        return 1.0 - self.value

    def is_within_band(self, band: str) -> bool:
        """Return whether the value falls inside a named reference band."""
        try:
            low, high = HEP_REFERENCE_BANDS[band]
        except KeyError:
            raise HumanErrorModelError(
                f"unknown hep reference band {band!r}; known: {sorted(HEP_REFERENCE_BANDS)}"
            ) from None
        return low <= self.value <= high


def paper_hep_probabilities() -> List[HumanErrorProbability]:
    """Return the three hep values used throughout the paper's evaluation."""
    return [
        HumanErrorProbability(value=v, source="paper sweep", task="wrong disk replacement")
        for v in PAPER_HEP_VALUES
    ]


def adjust_with_performance_shaping_factors(
    base_hep: float, factors: Dict[str, float], cap: float = 1.0
) -> float:
    """Return a THERP-style adjusted hep: base value times shaping factors.

    Performance shaping factors (PSFs) multiply the nominal hep: stress,
    unfamiliarity and poor ergonomics increase it, good procedures and
    independent verification decrease it.  The result is capped at ``cap``.

    Parameters
    ----------
    base_hep:
        Nominal human error probability.
    factors:
        Mapping of factor name to multiplier (must be positive).
    cap:
        Upper bound on the adjusted probability (1.0 by default).
    """
    if not 0.0 <= base_hep <= 1.0:
        raise HumanErrorModelError(f"base hep must lie in [0, 1], got {base_hep!r}")
    if not 0.0 < cap <= 1.0:
        raise HumanErrorModelError(f"cap must lie in (0, 1], got {cap!r}")
    adjusted = base_hep
    for name, multiplier in factors.items():
        if multiplier <= 0.0 or not math.isfinite(multiplier):
            raise HumanErrorModelError(
                f"performance shaping factor {name!r} must be positive, got {multiplier!r}"
            )
        adjusted *= multiplier
    return min(adjusted, cap)


def hep_from_observations(error_count: int, opportunity_count: int) -> HumanErrorProbability:
    """Return the empirical hep ``errors / opportunities`` (the HRA definition)."""
    if opportunity_count <= 0:
        raise HumanErrorModelError(
            f"opportunity count must be positive, got {opportunity_count!r}"
        )
    if error_count < 0 or error_count > opportunity_count:
        raise HumanErrorModelError(
            f"error count {error_count!r} must lie in [0, {opportunity_count}]"
        )
    return HumanErrorProbability(
        value=error_count / opportunity_count,
        source="field observation",
        task="observed task",
    )


def expected_errors_per_year(
    hep: float, interventions_per_year: float
) -> float:
    """Return the expected number of human errors per year of operation.

    ``interventions_per_year`` is typically the expected number of disk
    replacements, which at data-centre scale (the paper's exa-byte example
    implies > 8760 failures/year) turns even a small hep into daily errors.
    """
    if not 0.0 <= hep <= 1.0:
        raise HumanErrorModelError(f"hep must lie in [0, 1], got {hep!r}")
    if interventions_per_year < 0.0:
        raise HumanErrorModelError(
            f"interventions per year must be non-negative, got {interventions_per_year!r}"
        )
    return hep * interventions_per_year
