"""Human-error substrate: hep data, error taxonomy, operators, policies."""

from repro.human.errors import (
    MAKES_DEGRADED_ARRAY_UNAVAILABLE,
    HumanErrorEvent,
    HumanErrorLog,
    HumanErrorType,
)
from repro.human.hep import (
    HEP_REFERENCE_BANDS,
    PAPER_HEP_VALUES,
    HumanErrorProbability,
    adjust_with_performance_shaping_factors,
    expected_errors_per_year,
    hep_from_observations,
    paper_hep_probabilities,
)
from repro.human.operator import Operator, ReplacementOutcome
from repro.human.policy import (
    AutomaticFailoverPolicy,
    ConventionalReplacementPolicy,
    PolicyDecision,
    PolicyKind,
    ReplacementPolicy,
    make_policy,
)
from repro.human.recovery import HumanErrorRecoveryModel, RecoveryAttemptResult

__all__ = [
    "AutomaticFailoverPolicy",
    "ConventionalReplacementPolicy",
    "HEP_REFERENCE_BANDS",
    "HumanErrorEvent",
    "HumanErrorLog",
    "HumanErrorProbability",
    "HumanErrorRecoveryModel",
    "HumanErrorType",
    "MAKES_DEGRADED_ARRAY_UNAVAILABLE",
    "Operator",
    "PAPER_HEP_VALUES",
    "PolicyDecision",
    "PolicyKind",
    "RecoveryAttemptResult",
    "ReplacementOutcome",
    "ReplacementPolicy",
    "adjust_with_performance_shaping_factors",
    "expected_errors_per_year",
    "hep_from_observations",
    "make_policy",
    "paper_hep_probabilities",
]
