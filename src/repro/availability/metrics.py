"""Availability arithmetic: nines, downtime, MTTF/MTTR identities.

The paper reports availability as a "number of nines":
``nines = -log10(1 - A)``.  This module centralises the conversions between
availability, unavailability, nines, downtime-per-year and the classic
``A = MTTF / (MTTF + MTTR)`` identity so that the Markov, Monte Carlo and
comparison layers all agree on the arithmetic.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.exceptions import ConfigurationError

#: Hours in a (non-leap) year; the constant used by the storage industry when
#: quoting downtime minutes per year.
HOURS_PER_YEAR = 8760.0

#: Cap applied when converting a perfect availability of 1.0 to nines, so
#: that reports stay finite. 300 nines is far beyond any physical meaning.
MAX_NINES = 300.0


def validate_probability(value: float, label: str = "probability") -> float:
    """Return ``value`` after checking it lies in ``[0, 1]``."""
    value = float(value)
    if not math.isfinite(value) or value < 0.0 or value > 1.0:
        raise ConfigurationError(f"{label} must lie in [0, 1], got {value!r}")
    return value


def availability_to_nines(availability: float) -> float:
    """Convert an availability in ``[0, 1]`` to a number of nines.

    ``0.999`` maps to ``3.0``; an availability of exactly one maps to
    :data:`MAX_NINES` rather than infinity so tables stay printable.
    """
    availability = validate_probability(availability, "availability")
    unavailability = 1.0 - availability
    if unavailability <= 0.0:
        return MAX_NINES
    return -math.log10(unavailability)


def nines_to_availability(nines: float) -> float:
    """Convert a number of nines back to an availability."""
    nines = float(nines)
    if not math.isfinite(nines) or nines < 0.0:
        raise ConfigurationError(f"nines must be a non-negative finite number, got {nines!r}")
    return 1.0 - 10.0 ** (-nines)


def unavailability_to_nines(unavailability: float) -> float:
    """Convert an unavailability in ``[0, 1]`` to a number of nines."""
    unavailability = validate_probability(unavailability, "unavailability")
    if unavailability <= 0.0:
        return MAX_NINES
    return -math.log10(unavailability)


def downtime_hours_per_year(availability: float) -> float:
    """Return expected downtime hours accumulated per year of operation."""
    availability = validate_probability(availability, "availability")
    return (1.0 - availability) * HOURS_PER_YEAR


def downtime_minutes_per_year(availability: float) -> float:
    """Return expected downtime minutes accumulated per year of operation."""
    return downtime_hours_per_year(availability) * 60.0


def downtime_to_availability(downtime_hours: float, period_hours: float = HOURS_PER_YEAR) -> float:
    """Return the availability implied by ``downtime_hours`` per ``period_hours``."""
    downtime_hours = float(downtime_hours)
    period_hours = float(period_hours)
    if period_hours <= 0.0:
        raise ConfigurationError(f"period must be positive, got {period_hours!r}")
    if downtime_hours < 0.0 or downtime_hours > period_hours:
        raise ConfigurationError(
            f"downtime {downtime_hours!r} must lie in [0, {period_hours!r}]"
        )
    return 1.0 - downtime_hours / period_hours


def availability_from_mttf_mttr(mttf_hours: float, mttr_hours: float) -> float:
    """Return the classic two-state availability ``MTTF / (MTTF + MTTR)``."""
    mttf_hours = float(mttf_hours)
    mttr_hours = float(mttr_hours)
    if mttf_hours <= 0.0:
        raise ConfigurationError(f"MTTF must be positive, got {mttf_hours!r}")
    if mttr_hours < 0.0:
        raise ConfigurationError(f"MTTR must be non-negative, got {mttr_hours!r}")
    return mttf_hours / (mttf_hours + mttr_hours)


def unavailability_ratio(unavailability_a: float, unavailability_b: float) -> float:
    """Return ``unavailability_a / unavailability_b`` with guard rails.

    Used to express "model A predicts N times more downtime than model B" —
    the form of the paper's 263X underestimation claim.  A zero denominator
    yields ``inf``.
    """
    ua = validate_probability(unavailability_a, "unavailability_a")
    ub = validate_probability(unavailability_b, "unavailability_b")
    if ub <= 0.0:
        return float("inf")
    return ua / ub


def series_availability(availabilities: Iterable[float]) -> float:
    """Return the availability of components that must all be up (series).

    A storage subsystem made of multiple independent RAID groups is modelled
    as a series system: the subsystem is available only when every group is
    available.  This is how the equal-usable-capacity comparison aggregates
    per-array availabilities.
    """
    product = 1.0
    count = 0
    for value in availabilities:
        product *= validate_probability(value, "availability")
        count += 1
    if count == 0:
        raise ConfigurationError("series_availability requires at least one component")
    return product


def parallel_availability(availabilities: Iterable[float]) -> float:
    """Return the availability of redundant components (any one suffices)."""
    product = 1.0
    count = 0
    for value in availabilities:
        product *= 1.0 - validate_probability(value, "availability")
        count += 1
    if count == 0:
        raise ConfigurationError("parallel_availability requires at least one component")
    return 1.0 - product


def k_out_of_n_availability(component_availability: float, k: int, n: int) -> float:
    """Return the availability of a k-out-of-n system of identical components.

    A RAID5 group of ``n`` disks tolerates a single missing disk, i.e. it is
    an ``(n-1)``-out-of-``n`` structure at the *instantaneous* level.  This
    combinatorial form ignores repair dynamics and is provided for
    back-of-envelope cross-checks of the Markov results.
    """
    p = validate_probability(component_availability, "component availability")
    k = int(k)
    n = int(n)
    if n <= 0 or k <= 0 or k > n:
        raise ConfigurationError(f"invalid k-out-of-n structure: k={k}, n={n}")
    total = 0.0
    for i in range(k, n + 1):
        total += math.comb(n, i) * p ** i * (1.0 - p) ** (n - i)
    return total


def aggregate_nines(nines_values: Sequence[float]) -> float:
    """Return the nines of a series system given per-component nines."""
    availabilities = [nines_to_availability(v) for v in nines_values]
    return availability_to_nines(series_availability(availabilities))
