"""Effective Replication Factor (ERF) and equal-capacity sizing.

The paper explains the RAID-ranking inversion through the Effective
Replication Factor — the ratio of physical to usable (logical) capacity
(the term comes from Facebook's f4 paper).  A RAID1 mirror has ERF 2, a
RAID5 ``(k+1)`` group has ERF ``(k+1)/k``.  At equal usable capacity a
higher ERF means more physical disks, hence more failures and more operator
interventions, hence more opportunities for human error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.exceptions import RaidConfigurationError


@dataclass(frozen=True)
class CapacityPlan:
    """Physical layout required to provide a given usable capacity.

    Attributes
    ----------
    usable_disks:
        Usable (logical) capacity expressed in units of one disk.
    arrays:
        Number of RAID groups required.
    disks_per_array:
        Physical disks per group.
    total_disks:
        Total physical disks (``arrays * disks_per_array``).
    erf:
        Effective replication factor of the layout.
    """

    usable_disks: int
    arrays: int
    disks_per_array: int
    total_disks: int
    erf: float


def erf_raid1(mirrors: int = 2) -> float:
    """Return the ERF of an ``mirrors``-way mirror (2.0 for RAID1 1+1)."""
    mirrors = int(mirrors)
    if mirrors < 2:
        raise RaidConfigurationError(f"a mirror needs at least two copies, got {mirrors!r}")
    return float(mirrors)


def erf_raid5(data_disks: int) -> float:
    """Return the ERF of a RAID5 group with ``data_disks`` data disks."""
    data_disks = int(data_disks)
    if data_disks < 2:
        raise RaidConfigurationError(
            f"RAID5 needs at least two data disks, got {data_disks!r}"
        )
    return (data_disks + 1) / data_disks


def erf_raid6(data_disks: int) -> float:
    """Return the ERF of a RAID6 group with ``data_disks`` data disks."""
    data_disks = int(data_disks)
    if data_disks < 2:
        raise RaidConfigurationError(
            f"RAID6 needs at least two data disks, got {data_disks!r}"
        )
    return (data_disks + 2) / data_disks


def erf_for_geometry(data_disks: int, parity_disks: int, copies: int = 1) -> float:
    """Return the ERF of a generic ``data + parity`` geometry with replication."""
    data_disks = int(data_disks)
    parity_disks = int(parity_disks)
    copies = int(copies)
    if data_disks < 1 or parity_disks < 0 or copies < 1:
        raise RaidConfigurationError(
            f"invalid geometry: data={data_disks}, parity={parity_disks}, copies={copies}"
        )
    return copies * (data_disks + parity_disks) / data_disks


def plan_equal_usable_capacity(
    usable_disks: int, data_disks_per_array: int, disks_per_array: int
) -> CapacityPlan:
    """Return the layout providing ``usable_disks`` of logical capacity.

    Parameters
    ----------
    usable_disks:
        Required logical capacity in disk units; must be divisible by
        ``data_disks_per_array`` so the comparison is exact (the paper uses
        capacities divisible by 1, 3 and 7 simultaneously, e.g. 21).
    data_disks_per_array:
        Data (non-redundant) disks per RAID group: 1 for RAID1(1+1), 3 for
        RAID5(3+1), 7 for RAID5(7+1).
    disks_per_array:
        Physical disks per RAID group: 2, 4 and 8 respectively.
    """
    usable_disks = int(usable_disks)
    data_disks_per_array = int(data_disks_per_array)
    disks_per_array = int(disks_per_array)
    if usable_disks < 1:
        raise RaidConfigurationError(f"usable capacity must be positive, got {usable_disks!r}")
    if data_disks_per_array < 1 or disks_per_array <= data_disks_per_array - 1:
        raise RaidConfigurationError(
            "disks_per_array must exceed or equal data_disks_per_array"
        )
    if usable_disks % data_disks_per_array != 0:
        raise RaidConfigurationError(
            f"usable capacity {usable_disks} is not divisible by "
            f"{data_disks_per_array} data disks per array"
        )
    arrays = usable_disks // data_disks_per_array
    total = arrays * disks_per_array
    return CapacityPlan(
        usable_disks=usable_disks,
        arrays=arrays,
        disks_per_array=disks_per_array,
        total_disks=total,
        erf=total / usable_disks,
    )


def smallest_common_usable_capacity(*data_disk_counts: int) -> int:
    """Return the least usable capacity divisible by every group's data disks."""
    if not data_disk_counts:
        raise RaidConfigurationError("at least one data-disk count is required")
    result = 1
    for count in data_disk_counts:
        count = int(count)
        if count < 1:
            raise RaidConfigurationError(f"data disk count must be positive, got {count!r}")
        result = result * count // math.gcd(result, count)
    return result


def erf_table() -> Dict[str, float]:
    """Return the ERF values quoted in the paper for its three configurations."""
    return {
        "RAID1(1+1)": erf_raid1(2),
        "RAID5(3+1)": erf_raid5(3),
        "RAID5(7+1)": erf_raid5(7),
    }
