"""Plain-text table rendering for availability results.

The benchmark harness prints the same rows/series the paper's figures show.
This module renders those series as aligned ASCII tables so the benches and
examples read like the paper's tables without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]
Cell = Union[str, Number]


@dataclass
class Table:
    """A simple column-oriented table with a title and aligned rendering.

    Attributes
    ----------
    title:
        Heading printed above the table.
    columns:
        Ordered column names.
    rows:
        List of row mappings; missing cells render as ``"-"``.
    notes:
        Free-form footnotes printed below the table.
    """

    title: str
    columns: List[str]
    rows: List[Dict[str, Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **cells: Cell) -> "Table":
        """Append a row given as keyword arguments keyed by column name."""
        unknown = set(cells) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}; table has {self.columns}")
        self.rows.append(dict(cells))
        return self

    def add_note(self, note: str) -> "Table":
        """Append a footnote."""
        self.notes.append(str(note))
        return self

    def column(self, name: str) -> List[Cell]:
        """Return the values of one column in row order."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row.get(name, "-") for row in self.rows]

    def render(self, float_format: str = "{:.4g}") -> str:
        """Return the table as aligned plain text."""
        header = list(self.columns)
        body: List[List[str]] = []
        for row in self.rows:
            rendered: List[str] = []
            for col in header:
                value = row.get(col, "-")
                rendered.append(_format_cell(value, float_format))
            body.append(rendered)
        widths = [len(col) for col in header]
        for rendered in body:
            for i, cell in enumerate(rendered):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * max(len(self.title), 1)]
        lines.append("  ".join(col.ljust(widths[i]) for i, col in enumerate(header)))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for rendered in body:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(rendered)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_dicts(self) -> List[Dict[str, Cell]]:
        """Return a copy of the rows as plain dictionaries."""
        return [dict(row) for row in self.rows]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _format_cell(value: Cell, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int,)):
        return str(value)
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def table_from_series(
    title: str,
    x_name: str,
    x_values: Sequence[Number],
    series: Mapping[str, Sequence[Number]],
    notes: Optional[Iterable[str]] = None,
) -> Table:
    """Build a table with one x column and one column per named series.

    This is the shape of every figure in the paper: an x axis (failure rate
    or human error probability) against several availability curves.
    """
    columns = [x_name] + list(series.keys())
    table = Table(title=title, columns=columns)
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points but x has {len(x_values)}"
            )
    for i, x in enumerate(x_values):
        row: Dict[str, Cell] = {x_name: x}
        for name, values in series.items():
            row[name] = values[i]
        table.rows.append(row)
    for note in notes or ():
        table.add_note(note)
    return table


def format_nines(nines: float) -> str:
    """Render a number of nines with two decimals, e.g. ``'7.23 nines'``."""
    return f"{nines:.2f} nines"


def format_availability(availability: float) -> str:
    """Render an availability with enough digits to show the nines."""
    return f"{availability:.12f}"
