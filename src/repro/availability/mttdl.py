"""Mean Time To Data Loss (MTTDL) estimators for RAID groups.

MTTDL is the traditional reliability headline for disk arrays (Greenan et
al., HotStorage'10 discuss its limitations, which the paper echoes).  These
closed-form estimators serve two purposes here:

* sanity bounds for the Markov chain MTTF computations (the classic
  formulas are the ``hep = 0`` limit of the chain-based numbers), and
* inputs to the documentation-style reports comparing "what the datasheet
  math says" against "what the human-error-aware model says".

All formulas assume exponential failure (rate ``lam`` per disk-hour) and
repair (rate ``mu`` per hour), independent disks and a backed-up system so
data loss means unavailability, not permanent loss.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.exceptions import ConfigurationError


def _check_rates(lam: float, mu: float) -> None:
    if lam <= 0.0 or not math.isfinite(lam):
        raise ConfigurationError(f"disk failure rate must be positive, got {lam!r}")
    if mu <= 0.0 or not math.isfinite(mu):
        raise ConfigurationError(f"repair rate must be positive, got {mu!r}")


def mttdl_raid0(n_disks: int, disk_failure_rate: float) -> float:
    """Return the MTTDL (hours) of an unprotected stripe of ``n_disks``.

    Any single failure loses data, so the MTTDL is ``1 / (n * lam)``.
    """
    n = int(n_disks)
    if n < 1:
        raise ConfigurationError(f"RAID0 requires at least one disk, got {n!r}")
    _check_rates(disk_failure_rate, 1.0)
    return 1.0 / (n * disk_failure_rate)


def mttdl_raid5(n_disks: int, disk_failure_rate: float, repair_rate: float) -> float:
    """Return the classic RAID5 MTTDL: ``mu / (n (n-1) lam^2)`` (approx).

    The exact two-state birth-death result is
    ``(2n - 1) lam + mu) / (n (n-1) lam^2)``; the approximation drops the
    ``(2n-1) lam`` term which is negligible when repairs are much faster
    than failures.  The exact value is returned.
    """
    n = int(n_disks)
    if n < 2:
        raise ConfigurationError(f"RAID5 requires at least two disks, got {n!r}")
    lam = float(disk_failure_rate)
    mu = float(repair_rate)
    _check_rates(lam, mu)
    return ((2 * n - 1) * lam + mu) / (n * (n - 1) * lam * lam)


def mttdl_raid1(disk_failure_rate: float, repair_rate: float, mirrors: int = 2) -> float:
    """Return the MTTDL of an ``mirrors``-way mirror (default two-way).

    For a two-way mirror this coincides with :func:`mttdl_raid5` evaluated at
    ``n = 2``.  Deeper mirrors use the standard birth-death recursion.
    """
    m = int(mirrors)
    if m < 2:
        raise ConfigurationError(f"a mirror requires at least two copies, got {m!r}")
    lam = float(disk_failure_rate)
    mu = float(repair_rate)
    _check_rates(lam, mu)
    if m == 2:
        return mttdl_raid5(2, lam, mu)
    # Birth-death chain with states = number of failed copies, absorbing at m.
    # Mean absorption times h satisfy the tridiagonal system Q_TT h = -1.
    import numpy as np

    size = m  # transient states 0..m-1
    a = np.zeros((size, size))
    b = -np.ones(size)
    for k in range(size):
        fail_rate = (m - k) * lam
        repair = mu if k > 0 else 0.0
        a[k, k] = -(fail_rate + repair)
        if k + 1 < size:
            a[k, k + 1] = fail_rate
        if k > 0:
            a[k, k - 1] = repair
    sol = np.linalg.solve(a, b)
    return float(sol[0])


def mttdl_raid6(n_disks: int, disk_failure_rate: float, repair_rate: float) -> float:
    """Return the classic RAID6 (double-parity) MTTDL.

    Exact mean absorption time of the three-up-states birth-death chain
    (0, 1, 2 failed disks transient; 3 failed disks absorbing).
    """
    n = int(n_disks)
    if n < 3:
        raise ConfigurationError(f"RAID6 requires at least three disks, got {n!r}")
    lam = float(disk_failure_rate)
    mu = float(repair_rate)
    _check_rates(lam, mu)
    import numpy as np

    a = np.array(
        [
            [-(n * lam), n * lam, 0.0],
            [mu, -(mu + (n - 1) * lam), (n - 1) * lam],
            [0.0, mu, -(mu + (n - 2) * lam)],
        ]
    )
    b = -np.ones(3)
    sol = np.linalg.solve(a, b)
    return float(sol[0])


def mttdl_summary(
    n_disks: int, disk_failure_rate: float, repair_rate: float
) -> Dict[str, float]:
    """Return a dictionary of MTTDL values for the common RAID levels."""
    return {
        "raid0": mttdl_raid0(n_disks, disk_failure_rate),
        "raid1": mttdl_raid1(disk_failure_rate, repair_rate),
        "raid5": mttdl_raid5(n_disks, disk_failure_rate, repair_rate),
        "raid6": mttdl_raid6(max(n_disks, 3), disk_failure_rate, repair_rate),
    }
