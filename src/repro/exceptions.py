"""Exception hierarchy for the :mod:`repro` package.

Every exception raised deliberately by the library derives from
:class:`ReproError` so that callers can catch library errors without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class DistributionError(ReproError):
    """Raised when a probability distribution is mis-parameterised or misused."""


class MarkovChainError(ReproError):
    """Raised when a Markov chain is structurally invalid or cannot be solved."""


class StateError(MarkovChainError):
    """Raised when a state name is unknown, duplicated or otherwise invalid."""


class TransitionError(MarkovChainError):
    """Raised when a transition is invalid (negative rate, self loop, ...)."""


class SolverError(MarkovChainError):
    """Raised when a steady-state or transient solver fails to converge."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulation engine is misused."""


class StorageModelError(ReproError):
    """Raised when a storage-subsystem model is mis-configured."""


class RaidConfigurationError(StorageModelError):
    """Raised when a RAID geometry is invalid (e.g. RAID5 with one disk)."""


class HumanErrorModelError(ReproError):
    """Raised when a human-error model is mis-configured."""


class ExperimentError(ReproError):
    """Raised when an experiment definition or its parameters are invalid."""


class ConfigurationError(ReproError):
    """Raised when user-supplied configuration values are out of range."""
