"""Deterministic (fixed-delay) pseudo-distribution.

Fixed rebuild times appear in the paper's Fig. 1 example ("rebuild time =
10 h").  A deterministic delay is represented here as a degenerate
distribution so that the Monte Carlo simulator can mix fixed and random
delays through one interface.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import ArrayLike, Distribution
from repro.exceptions import DistributionError


class Deterministic(Distribution):
    """Degenerate distribution concentrated on a single positive value."""

    name = "deterministic"

    def __init__(self, value_hours: float) -> None:
        self._value = self._require_positive(value_hours, "value_hours")

    @property
    def value(self) -> float:
        """Return the fixed delay in hours."""
        return self._value

    def mean(self) -> float:
        return self._value

    def variance(self) -> float:
        return 0.0

    def pdf(self, t: ArrayLike) -> np.ndarray:
        # The density is a Dirac delta; return 0 everywhere except the atom,
        # where we return +inf so that plots make the atom visible.
        t = self._as_array(t)
        return np.where(np.isclose(t, self._value), np.inf, 0.0)

    def cdf(self, t: ArrayLike) -> np.ndarray:
        t = self._as_array(t)
        return np.where(t >= self._value, 1.0, 0.0)

    def percentile(self, q: float, upper: float = 1e12, tol: float = 1e-9) -> float:
        if not 0.0 < q < 1.0:
            raise DistributionError(f"percentile requires 0 < q < 1, got {q!r}")
        return self._value

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(size, self._value, dtype=float)

    def __repr__(self) -> str:
        return f"Deterministic(value_hours={self._value:.6g})"
