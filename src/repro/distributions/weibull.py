"""Weibull time-to-failure distribution.

Field studies (Schroeder & Gibson, FAST'07; Elerath & Pecht, TC'09) show that
real disk time-to-failure is better captured by a Weibull distribution with a
shape parameter slightly above one (infant mortality burnt in, gradual wear
out) than by the memoryless exponential.  The paper's Fig. 5 quotes four
``(failure rate, beta)`` pairs taken from such field data; the Monte Carlo
simulator uses them directly while the Markov model uses the rate of the
exponential with the same mean.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import ArrayLike, Distribution
from repro.exceptions import DistributionError


class Weibull(Distribution):
    """Two-parameter Weibull distribution.

    Parameters
    ----------
    shape:
        Shape (``beta``).  ``beta == 1`` degenerates to the exponential,
        ``beta > 1`` models wear-out, ``beta < 1`` models infant mortality.
    scale:
        Scale (``eta``) in hours; the characteristic life at which 63.2 % of
        the population has failed.
    """

    name = "weibull"

    def __init__(self, shape: float, scale: float) -> None:
        self._shape = self._require_positive(shape, "shape")
        self._scale = self._require_positive(scale, "scale")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_mean_and_shape(cls, mean_hours: float, shape: float) -> "Weibull":
        """Build a Weibull with the given mean and shape.

        The scale is recovered from ``mean = scale * Gamma(1 + 1/shape)``.
        """
        mean_hours = float(mean_hours)
        shape = float(shape)
        if mean_hours <= 0.0:
            raise DistributionError(f"mean must be positive, got {mean_hours!r}")
        if shape <= 0.0:
            raise DistributionError(f"shape must be positive, got {shape!r}")
        scale = mean_hours / math.gamma(1.0 + 1.0 / shape)
        return cls(shape=shape, scale=scale)

    @classmethod
    def from_rate_and_shape(cls, rate_per_hour: float, shape: float) -> "Weibull":
        """Build a Weibull whose *mean* matches ``1 / rate_per_hour``.

        This is the mapping used throughout the paper: a quoted "failure
        rate" of ``1.25e-6`` with ``beta = 1.09`` means a Weibull whose mean
        time to failure equals ``1 / 1.25e-6`` hours and whose shape is 1.09.
        """
        rate_per_hour = float(rate_per_hour)
        if rate_per_hour <= 0.0:
            raise DistributionError(f"rate must be positive, got {rate_per_hour!r}")
        return cls.from_mean_and_shape(1.0 / rate_per_hour, shape)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def shape(self) -> float:
        """Return the shape parameter ``beta``."""
        return self._shape

    @property
    def scale(self) -> float:
        """Return the scale parameter ``eta`` in hours."""
        return self._scale

    # ------------------------------------------------------------------
    # Distribution interface
    # ------------------------------------------------------------------
    def mean(self) -> float:
        return self._scale * math.gamma(1.0 + 1.0 / self._shape)

    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self._shape)
        g2 = math.gamma(1.0 + 2.0 / self._shape)
        return self._scale ** 2 * (g2 - g1 * g1)

    def pdf(self, t: ArrayLike) -> np.ndarray:
        t = self._as_array(t)
        k, lam = self._shape, self._scale
        safe_t = np.maximum(t, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            z = safe_t / lam
            out = (k / lam) * np.power(z, k - 1.0) * np.exp(-np.power(z, k))
        out = np.where(t < 0.0, 0.0, out)
        # At t == 0 the density is 0 for k > 1, k/lam for k == 1 and +inf for k < 1.
        if np.any(t == 0.0):
            if self._shape > 1.0:
                at_zero = 0.0
            elif self._shape == 1.0:
                at_zero = k / lam
            else:
                at_zero = np.inf
            out = np.where(t == 0.0, at_zero, out)
        return out

    def cdf(self, t: ArrayLike) -> np.ndarray:
        t = self._as_array(t)
        z = np.maximum(t, 0.0) / self._scale
        return np.where(t < 0.0, 0.0, 1.0 - np.exp(-np.power(z, self._shape)))

    def survival(self, t: ArrayLike) -> np.ndarray:
        t = self._as_array(t)
        z = np.maximum(t, 0.0) / self._scale
        return np.where(t < 0.0, 1.0, np.exp(-np.power(z, self._shape)))

    def hazard(self, t: ArrayLike) -> np.ndarray:
        t = self._as_array(t)
        k, lam = self._shape, self._scale
        with np.errstate(divide="ignore", invalid="ignore"):
            out = (k / lam) * np.power(np.maximum(t, 0.0) / lam, k - 1.0)
        return np.where(t < 0.0, 0.0, out)

    def percentile(self, q: float, upper: float = 1e12, tol: float = 1e-9) -> float:
        if not 0.0 < q < 1.0:
            raise DistributionError(f"percentile requires 0 < q < 1, got {q!r}")
        return self._scale * (-math.log1p(-q)) ** (1.0 / self._shape)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return self._scale * rng.weibull(self._shape, size=size)

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Weibull):
            return NotImplemented
        return math.isclose(self._shape, other._shape, rel_tol=1e-12) and math.isclose(
            self._scale, other._scale, rel_tol=1e-12
        )

    def __hash__(self) -> int:
        return hash(("weibull", round(self._shape, 15), round(self._scale, 15)))

    def __repr__(self) -> str:
        return f"Weibull(shape={self._shape:.6g}, scale={self._scale:.6g})"
