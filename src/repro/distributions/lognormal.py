"""Lognormal time-to-event distribution.

Lognormal repair times are a common choice in human reliability analysis
(THERP uses lognormal error factors) and in service-time modelling of manual
operations: most replacements are quick, a minority take much longer.  The
Monte Carlo simulator accepts lognormal repair and replacement times as an
extension beyond the paper's exponential/Weibull baseline.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from repro.distributions.base import ArrayLike, Distribution
from repro.exceptions import DistributionError


class LogNormal(Distribution):
    """Lognormal distribution with log-space parameters ``mu`` and ``sigma``.

    If ``T`` is lognormal then ``ln(T)`` is normal with mean ``mu`` and
    standard deviation ``sigma``.
    """

    name = "lognormal"

    def __init__(self, mu: float, sigma: float) -> None:
        self._mu = float(mu)
        if not math.isfinite(self._mu):
            raise DistributionError(f"mu must be finite, got {mu!r}")
        self._sigma = self._require_positive(sigma, "sigma")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_mean_and_error_factor(cls, median_hours: float, error_factor: float) -> "LogNormal":
        """Build from a median and THERP-style error factor.

        The error factor ``EF`` is the ratio of the 95th percentile to the
        median; hence ``sigma = ln(EF) / 1.645``.
        """
        median_hours = float(median_hours)
        error_factor = float(error_factor)
        if median_hours <= 0.0:
            raise DistributionError(f"median must be positive, got {median_hours!r}")
        if error_factor <= 1.0:
            raise DistributionError(f"error factor must exceed 1, got {error_factor!r}")
        z95 = 1.6448536269514722
        sigma = math.log(error_factor) / z95
        return cls(mu=math.log(median_hours), sigma=sigma)

    @classmethod
    def from_mean_and_cv(cls, mean_hours: float, cv: float) -> "LogNormal":
        """Build from a mean and coefficient of variation ``cv = std / mean``."""
        mean_hours = float(mean_hours)
        cv = float(cv)
        if mean_hours <= 0.0:
            raise DistributionError(f"mean must be positive, got {mean_hours!r}")
        if cv <= 0.0:
            raise DistributionError(f"cv must be positive, got {cv!r}")
        sigma2 = math.log1p(cv * cv)
        mu = math.log(mean_hours) - 0.5 * sigma2
        return cls(mu=mu, sigma=math.sqrt(sigma2))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def mu(self) -> float:
        """Return the log-space mean."""
        return self._mu

    @property
    def sigma(self) -> float:
        """Return the log-space standard deviation."""
        return self._sigma

    # ------------------------------------------------------------------
    # Distribution interface
    # ------------------------------------------------------------------
    def mean(self) -> float:
        return math.exp(self._mu + 0.5 * self._sigma ** 2)

    def variance(self) -> float:
        s2 = self._sigma ** 2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self._mu + s2)

    def median(self) -> float:
        return math.exp(self._mu)

    def pdf(self, t: ArrayLike) -> np.ndarray:
        t = self._as_array(t)
        out = np.zeros_like(t, dtype=float)
        pos = t > 0.0
        tp = t[pos]
        z = (np.log(tp) - self._mu) / self._sigma
        out[pos] = np.exp(-0.5 * z * z) / (tp * self._sigma * math.sqrt(2.0 * math.pi))
        return out

    def cdf(self, t: ArrayLike) -> np.ndarray:
        t = self._as_array(t)
        out = np.zeros_like(t, dtype=float)
        pos = t > 0.0
        z = (np.log(t[pos]) - self._mu) / self._sigma
        out[pos] = 0.5 * (1.0 + special.erf(z / math.sqrt(2.0)))
        return out

    def percentile(self, q: float, upper: float = 1e12, tol: float = 1e-9) -> float:
        if not 0.0 < q < 1.0:
            raise DistributionError(f"percentile requires 0 < q < 1, got {q!r}")
        z = math.sqrt(2.0) * special.erfinv(2.0 * q - 1.0)
        return math.exp(self._mu + self._sigma * z)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return rng.lognormal(mean=self._mu, sigma=self._sigma, size=size)

    def __repr__(self) -> str:
        return f"LogNormal(mu={self._mu:.6g}, sigma={self._sigma:.6g})"
