"""Exponential time-to-event distribution.

The exponential distribution is the backbone of the Markov models: every
transition rate in a continuous-time Markov chain corresponds to an
exponentially distributed sojourn time.  The paper uses exponential failure
and repair distributions for the Markov analysis and validates them against
Monte Carlo runs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import ArrayLike, Distribution
from repro.exceptions import DistributionError


class Exponential(Distribution):
    """Exponential distribution parameterised by its rate (per hour).

    Parameters
    ----------
    rate:
        Event rate ``lambda`` in events per hour.  The mean time to event is
        ``1 / rate`` hours.
    """

    name = "exponential"

    def __init__(self, rate: float) -> None:
        self._rate = self._require_positive(rate, "rate")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_mean(cls, mean_hours: float) -> "Exponential":
        """Build an exponential distribution with the given mean (hours)."""
        mean_hours = float(mean_hours)
        if mean_hours <= 0.0:
            raise DistributionError(f"mean must be positive, got {mean_hours!r}")
        return cls(1.0 / mean_hours)

    @classmethod
    def from_mttf(cls, mttf_hours: float) -> "Exponential":
        """Alias of :meth:`from_mean` using reliability terminology."""
        return cls.from_mean(mttf_hours)

    @classmethod
    def from_afr(cls, annual_failure_rate: float, hours_per_year: float = 8760.0) -> "Exponential":
        """Build from an Annual Failure Rate (fraction of disks failing per year).

        The AFR is converted to an hourly rate assuming failures are rare
        within a year: ``rate = -ln(1 - AFR) / hours_per_year``, which reduces
        to ``AFR / hours_per_year`` for small AFR.
        """
        afr = float(annual_failure_rate)
        if not 0.0 < afr < 1.0:
            raise DistributionError(f"AFR must lie in (0, 1), got {afr!r}")
        rate = -math.log1p(-afr) / float(hours_per_year)
        return cls(rate)

    # ------------------------------------------------------------------
    # Distribution interface
    # ------------------------------------------------------------------
    @property
    def rate_parameter(self) -> float:
        """Return the rate parameter ``lambda`` (per hour)."""
        return self._rate

    def rate(self) -> float:
        return self._rate

    def mean(self) -> float:
        return 1.0 / self._rate

    def variance(self) -> float:
        return 1.0 / (self._rate * self._rate)

    def pdf(self, t: ArrayLike) -> np.ndarray:
        t = self._as_array(t)
        out = np.where(t < 0.0, 0.0, self._rate * np.exp(-self._rate * np.maximum(t, 0.0)))
        return out

    def cdf(self, t: ArrayLike) -> np.ndarray:
        t = self._as_array(t)
        return np.where(t < 0.0, 0.0, 1.0 - np.exp(-self._rate * np.maximum(t, 0.0)))

    def survival(self, t: ArrayLike) -> np.ndarray:
        t = self._as_array(t)
        return np.where(t < 0.0, 1.0, np.exp(-self._rate * np.maximum(t, 0.0)))

    def hazard(self, t: ArrayLike) -> np.ndarray:
        t = self._as_array(t)
        return np.full_like(t, self._rate, dtype=float)

    def percentile(self, q: float, upper: float = 1e12, tol: float = 1e-9) -> float:
        if not 0.0 < q < 1.0:
            raise DistributionError(f"percentile requires 0 < q < 1, got {q!r}")
        return -math.log1p(-q) / self._rate

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return rng.exponential(scale=1.0 / self._rate, size=size)

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Exponential):
            return NotImplemented
        return math.isclose(self._rate, other._rate, rel_tol=1e-12)

    def __hash__(self) -> int:
        return hash(("exponential", round(self._rate, 15)))

    def __repr__(self) -> str:
        return f"Exponential(rate={self._rate:.6g})"
