"""Declarative construction of distributions from plain dictionaries.

Experiment configurations (see :mod:`repro.experiments.config`) describe
failure and repair behaviour as small dictionaries such as::

    {"kind": "weibull", "rate": 1.25e-6, "shape": 1.09}

so that parameter sweeps can be serialised, logged and compared.  The factory
turns those dictionaries into :class:`~repro.distributions.base.Distribution`
instances.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.distributions.base import Distribution
from repro.distributions.deterministic import Deterministic
from repro.distributions.empirical import Empirical
from repro.distributions.exponential import Exponential
from repro.distributions.gamma import Gamma
from repro.distributions.lognormal import LogNormal
from repro.distributions.weibull import Weibull
from repro.exceptions import DistributionError

_KINDS = ("exponential", "weibull", "lognormal", "gamma", "deterministic", "empirical")


def make_distribution(spec: Mapping[str, Any]) -> Distribution:
    """Build a distribution from a specification mapping.

    The mapping must contain a ``kind`` key naming one of the supported
    distributions plus the keys required by that kind:

    ``exponential``
        ``rate`` (per hour) *or* ``mean`` (hours).
    ``weibull``
        ``shape`` plus either ``scale``, ``mean`` or ``rate``.
    ``lognormal``
        ``mu``/``sigma``, or ``median``/``error_factor``, or ``mean``/``cv``.
    ``gamma``
        ``shape`` plus either ``scale`` or ``mean``.
    ``deterministic``
        ``value`` (hours).
    ``empirical``
        ``samples`` (sequence of hours) and optional ``interpolate``.
    """
    if "kind" not in spec:
        raise DistributionError(f"distribution spec {dict(spec)!r} is missing 'kind'")
    kind = str(spec["kind"]).lower()
    if kind not in _KINDS:
        raise DistributionError(
            f"unknown distribution kind {kind!r}; expected one of {_KINDS}"
        )
    builder = {
        "exponential": _build_exponential,
        "weibull": _build_weibull,
        "lognormal": _build_lognormal,
        "gamma": _build_gamma,
        "deterministic": _build_deterministic,
        "empirical": _build_empirical,
    }[kind]
    return builder(dict(spec))


def describe_distribution(dist: Distribution) -> Dict[str, Any]:
    """Return a serialisable description of ``dist`` (inverse of the factory).

    The returned mapping can be fed back to :func:`make_distribution` to
    reconstruct an equivalent distribution.
    """
    if isinstance(dist, Exponential):
        return {"kind": "exponential", "rate": dist.rate_parameter}
    if isinstance(dist, Weibull):
        return {"kind": "weibull", "shape": dist.shape, "scale": dist.scale}
    if isinstance(dist, LogNormal):
        return {"kind": "lognormal", "mu": dist.mu, "sigma": dist.sigma}
    if isinstance(dist, Gamma):
        return {"kind": "gamma", "shape": dist.shape, "scale": dist.scale}
    if isinstance(dist, Deterministic):
        return {"kind": "deterministic", "value": dist.value}
    if isinstance(dist, Empirical):
        return {"kind": "empirical", "samples": dist.samples.tolist()}
    raise DistributionError(f"cannot describe distribution of type {type(dist)!r}")


# ----------------------------------------------------------------------
# Individual builders
# ----------------------------------------------------------------------
def _build_exponential(spec: Dict[str, Any]) -> Exponential:
    if "rate" in spec:
        return Exponential(float(spec["rate"]))
    if "mean" in spec:
        return Exponential.from_mean(float(spec["mean"]))
    raise DistributionError("exponential spec requires 'rate' or 'mean'")


def _build_weibull(spec: Dict[str, Any]) -> Weibull:
    if "shape" not in spec:
        raise DistributionError("weibull spec requires 'shape'")
    shape = float(spec["shape"])
    if "scale" in spec:
        return Weibull(shape=shape, scale=float(spec["scale"]))
    if "mean" in spec:
        return Weibull.from_mean_and_shape(float(spec["mean"]), shape)
    if "rate" in spec:
        return Weibull.from_rate_and_shape(float(spec["rate"]), shape)
    raise DistributionError("weibull spec requires one of 'scale', 'mean' or 'rate'")


def _build_lognormal(spec: Dict[str, Any]) -> LogNormal:
    if "mu" in spec and "sigma" in spec:
        return LogNormal(mu=float(spec["mu"]), sigma=float(spec["sigma"]))
    if "median" in spec and "error_factor" in spec:
        return LogNormal.from_mean_and_error_factor(
            float(spec["median"]), float(spec["error_factor"])
        )
    if "mean" in spec and "cv" in spec:
        return LogNormal.from_mean_and_cv(float(spec["mean"]), float(spec["cv"]))
    raise DistributionError(
        "lognormal spec requires ('mu','sigma'), ('median','error_factor') or ('mean','cv')"
    )


def _build_gamma(spec: Dict[str, Any]) -> Gamma:
    if "shape" not in spec:
        raise DistributionError("gamma spec requires 'shape'")
    shape = float(spec["shape"])
    if "scale" in spec:
        return Gamma(shape=shape, scale=float(spec["scale"]))
    if "mean" in spec:
        return Gamma.from_mean_and_shape(float(spec["mean"]), shape)
    raise DistributionError("gamma spec requires 'scale' or 'mean'")


def _build_deterministic(spec: Dict[str, Any]) -> Deterministic:
    if "value" not in spec:
        raise DistributionError("deterministic spec requires 'value'")
    return Deterministic(float(spec["value"]))


def _build_empirical(spec: Dict[str, Any]) -> Empirical:
    if "samples" not in spec:
        raise DistributionError("empirical spec requires 'samples'")
    return Empirical(spec["samples"], interpolate=bool(spec.get("interpolate", True)))
