"""Time-to-event distributions used by the availability models.

The Markov models require exponential sojourn times; the Monte Carlo
simulator additionally supports Weibull (field-accurate disk failure times),
lognormal and gamma repair times, deterministic delays and empirical traces.
"""

from repro.distributions.base import Distribution, ensure_rng
from repro.distributions.deterministic import Deterministic
from repro.distributions.empirical import Empirical
from repro.distributions.exponential import Exponential
from repro.distributions.factory import describe_distribution, make_distribution
from repro.distributions.gamma import Gamma
from repro.distributions.lognormal import LogNormal
from repro.distributions.weibull import Weibull

__all__ = [
    "Distribution",
    "Deterministic",
    "Empirical",
    "Exponential",
    "Gamma",
    "LogNormal",
    "Weibull",
    "ensure_rng",
    "make_distribution",
    "describe_distribution",
]
