"""Abstract interface shared by all time-to-event distributions.

The availability models in this package are driven by *time-to-event*
distributions: time to disk failure, time to finish a rebuild, time for an
operator to replace a disk, time to restore an array from backup.  The
analytical (Markov) models require exponential distributions; the Monte Carlo
simulator accepts any distribution implementing :class:`Distribution`.

All times are expressed in **hours**, matching the paper's parameterisation
(e.g. a disk failure rate of ``1e-6`` per hour).
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Sequence, Union

import numpy as np

from repro.exceptions import DistributionError

ArrayLike = Union[float, Sequence[float], np.ndarray]


class Distribution(abc.ABC):
    """A non-negative continuous random variable describing a time-to-event.

    Subclasses implement the probability density, cumulative distribution,
    survival and hazard functions plus random sampling.  Convenience methods
    (``rate``, ``percentile`` ...) are provided here in terms of those
    primitives.
    """

    #: Human readable name used in reports and ``repr``.
    name: str = "distribution"

    # ------------------------------------------------------------------
    # Primitive interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def mean(self) -> float:
        """Return the expected value of the distribution in hours."""

    @abc.abstractmethod
    def variance(self) -> float:
        """Return the variance of the distribution in hours squared."""

    @abc.abstractmethod
    def pdf(self, t: ArrayLike) -> np.ndarray:
        """Return the probability density function evaluated at ``t``."""

    @abc.abstractmethod
    def cdf(self, t: ArrayLike) -> np.ndarray:
        """Return ``P(T <= t)`` evaluated element-wise at ``t``."""

    @abc.abstractmethod
    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` independent samples using ``rng``."""

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def std(self) -> float:
        """Return the standard deviation in hours."""
        return math.sqrt(self.variance())

    def survival(self, t: ArrayLike) -> np.ndarray:
        """Return the survival function ``P(T > t)``."""
        return 1.0 - self.cdf(t)

    def hazard(self, t: ArrayLike) -> np.ndarray:
        """Return the hazard (instantaneous failure) rate at ``t``.

        The hazard is ``pdf(t) / survival(t)``.  Points where the survival
        function is zero yield ``inf``.
        """
        t = np.asarray(t, dtype=float)
        surv = self.survival(t)
        pdf = self.pdf(t)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(surv > 0.0, pdf / surv, np.inf)
        return out

    def rate(self) -> float:
        """Return the equivalent constant rate ``1 / mean`` (per hour).

        For the exponential distribution this is the true rate parameter.
        For other distributions it is the rate of the exponential with the
        same mean, which is how the paper maps Weibull field data onto its
        Markov models.
        """
        mean = self.mean()
        if mean <= 0.0:
            raise DistributionError(f"{self.name} has non-positive mean {mean!r}")
        return 1.0 / mean

    def percentile(self, q: float, upper: float = 1e12, tol: float = 1e-9) -> float:
        """Return the ``q``-quantile by bisection on the CDF.

        Subclasses with a closed-form inverse CDF override this.  ``q`` must
        lie strictly in ``(0, 1)``.
        """
        if not 0.0 < q < 1.0:
            raise DistributionError(f"percentile requires 0 < q < 1, got {q!r}")
        lo, hi = 0.0, float(upper)
        if float(self.cdf(hi)) < q:
            raise DistributionError(
                f"percentile search bound {upper!r} too small for q={q!r}"
            )
        while hi - lo > tol * max(1.0, hi):
            mid = 0.5 * (lo + hi)
            if float(self.cdf(mid)) < q:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def median(self) -> float:
        """Return the median (0.5 quantile) in hours."""
        return self.percentile(0.5)

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def _as_array(t: ArrayLike) -> np.ndarray:
        arr = np.asarray(t, dtype=float)
        return arr

    @staticmethod
    def _require_positive(value: float, label: str) -> float:
        value = float(value)
        if not math.isfinite(value) or value <= 0.0:
            raise DistributionError(f"{label} must be a positive finite number, got {value!r}")
        return value

    @staticmethod
    def _require_non_negative(value: float, label: str) -> float:
        value = float(value)
        if not math.isfinite(value) or value < 0.0:
            raise DistributionError(
                f"{label} must be a non-negative finite number, got {value!r}"
            )
        return value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.__class__.__name__}(mean={self.mean():.6g})"


def ensure_rng(rng: Optional[Union[int, np.random.Generator]]) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from ``rng``.

    ``rng`` may be ``None`` (fresh default generator), an integer seed, or an
    existing generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise DistributionError(f"cannot interpret {rng!r} as a random generator or seed")
