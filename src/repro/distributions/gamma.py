"""Gamma (Erlang) time-to-event distribution.

Gamma distributions model multi-stage repair processes: a rebuild that
proceeds through ``k`` sequential exponential phases has an Erlang (integer
shape) distribution.  They are used by the Monte Carlo simulator as an
alternative repair-time model and by the phase-type expansion utilities in
:mod:`repro.markov`.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special, stats

from repro.distributions.base import ArrayLike, Distribution
from repro.exceptions import DistributionError


class Gamma(Distribution):
    """Gamma distribution with ``shape`` (k) and ``scale`` (theta, hours)."""

    name = "gamma"

    def __init__(self, shape: float, scale: float) -> None:
        self._shape = self._require_positive(shape, "shape")
        self._scale = self._require_positive(scale, "scale")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_mean_and_shape(cls, mean_hours: float, shape: float) -> "Gamma":
        """Build a gamma distribution with the given mean and shape."""
        mean_hours = float(mean_hours)
        shape = float(shape)
        if mean_hours <= 0.0 or shape <= 0.0:
            raise DistributionError("mean and shape must be positive")
        return cls(shape=shape, scale=mean_hours / shape)

    @classmethod
    def erlang(cls, stages: int, stage_rate: float) -> "Gamma":
        """Build an Erlang distribution of ``stages`` exponential phases.

        Each phase has rate ``stage_rate`` per hour.
        """
        stages = int(stages)
        if stages < 1:
            raise DistributionError(f"stages must be >= 1, got {stages!r}")
        stage_rate = float(stage_rate)
        if stage_rate <= 0.0:
            raise DistributionError(f"stage_rate must be positive, got {stage_rate!r}")
        return cls(shape=float(stages), scale=1.0 / stage_rate)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def shape(self) -> float:
        """Return the shape parameter ``k``."""
        return self._shape

    @property
    def scale(self) -> float:
        """Return the scale parameter ``theta`` in hours."""
        return self._scale

    # ------------------------------------------------------------------
    # Distribution interface
    # ------------------------------------------------------------------
    def mean(self) -> float:
        return self._shape * self._scale

    def variance(self) -> float:
        return self._shape * self._scale ** 2

    def pdf(self, t: ArrayLike) -> np.ndarray:
        t = self._as_array(t)
        out = np.zeros_like(t, dtype=float)
        pos = t > 0.0
        tp = t[pos]
        k, theta = self._shape, self._scale
        log_pdf = (
            (k - 1.0) * np.log(tp)
            - tp / theta
            - k * math.log(theta)
            - math.lgamma(k)
        )
        out[pos] = np.exp(log_pdf)
        if np.any(t == 0.0):
            if k > 1.0:
                at_zero = 0.0
            elif k == 1.0:
                at_zero = 1.0 / theta
            else:
                at_zero = np.inf
            out = np.where(t == 0.0, at_zero, out)
        return out

    def cdf(self, t: ArrayLike) -> np.ndarray:
        t = self._as_array(t)
        z = np.maximum(t, 0.0) / self._scale
        return np.where(t < 0.0, 0.0, special.gammainc(self._shape, z))

    def percentile(self, q: float, upper: float = 1e12, tol: float = 1e-9) -> float:
        if not 0.0 < q < 1.0:
            raise DistributionError(f"percentile requires 0 < q < 1, got {q!r}")
        return float(stats.gamma.ppf(q, a=self._shape, scale=self._scale))

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return rng.gamma(shape=self._shape, scale=self._scale, size=size)

    def __repr__(self) -> str:
        return f"Gamma(shape={self._shape:.6g}, scale={self._scale:.6g})"
