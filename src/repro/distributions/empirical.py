"""Empirical distribution built from observed samples.

Field traces of time-between-replacements (e.g. the Schroeder & Gibson
FAST'07 data) can be replayed by the Monte Carlo simulator through this
class: it resamples from the observed values (bootstrap) or from the linearly
interpolated empirical CDF.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distributions.base import ArrayLike, Distribution
from repro.exceptions import DistributionError


class Empirical(Distribution):
    """Distribution defined by a set of observed non-negative samples.

    Parameters
    ----------
    samples:
        Observed times in hours.  Must be non-empty and non-negative.
    interpolate:
        If ``True`` (default) sampling draws from the piecewise-linear
        empirical CDF; if ``False`` sampling bootstraps the raw values.
    """

    name = "empirical"

    def __init__(self, samples: Sequence[float], interpolate: bool = True) -> None:
        data = np.asarray(list(samples), dtype=float)
        if data.size == 0:
            raise DistributionError("empirical distribution requires at least one sample")
        if np.any(~np.isfinite(data)) or np.any(data < 0.0):
            raise DistributionError("empirical samples must be finite and non-negative")
        self._data = np.sort(data)
        self._interpolate = bool(interpolate)

    @property
    def samples(self) -> np.ndarray:
        """Return the sorted sample array (copy)."""
        return self._data.copy()

    @property
    def n_samples(self) -> int:
        """Return the number of underlying observations."""
        return int(self._data.size)

    def mean(self) -> float:
        return float(np.mean(self._data))

    def variance(self) -> float:
        if self._data.size < 2:
            return 0.0
        return float(np.var(self._data, ddof=1))

    def pdf(self, t: ArrayLike) -> np.ndarray:
        # Approximate the density with a histogram-based estimate.
        t = self._as_array(t)
        if self._data.size < 2 or self._data[0] == self._data[-1]:
            return np.where(np.isclose(t, self._data[0]), np.inf, 0.0)
        n_bins = max(int(np.sqrt(self._data.size)), 1)
        hist, edges = np.histogram(self._data, bins=n_bins, density=True)
        idx = np.clip(np.searchsorted(edges, t, side="right") - 1, 0, n_bins - 1)
        inside = (t >= edges[0]) & (t <= edges[-1])
        return np.where(inside, hist[idx], 0.0)

    def cdf(self, t: ArrayLike) -> np.ndarray:
        t = self._as_array(t)
        ranks = np.searchsorted(self._data, t, side="right")
        return ranks / float(self._data.size)

    def percentile(self, q: float, upper: float = 1e12, tol: float = 1e-9) -> float:
        if not 0.0 < q < 1.0:
            raise DistributionError(f"percentile requires 0 < q < 1, got {q!r}")
        return float(np.quantile(self._data, q))

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        if not self._interpolate or self._data.size == 1:
            return rng.choice(self._data, size=size, replace=True)
        u = rng.uniform(0.0, 1.0, size=size)
        probs = np.linspace(0.0, 1.0, self._data.size)
        return np.interp(u, probs, self._data)

    def __repr__(self) -> str:
        return (
            f"Empirical(n={self._data.size}, mean={self.mean():.6g}, "
            f"interpolate={self._interpolate})"
        )
