"""Experiment EXP-T1 — the downtime-underestimation headline (up to ~263X).

The paper's abstract claims that overlooking incorrect disk replacement can
underestimate unavailability by up to three orders of magnitude (263X in the
introduction).  This experiment sweeps the disk failure rate and the hep
values used in the paper and reports the underestimation factor
``unavailability(hep) / unavailability(hep = 0)`` at every point plus its
maximum over the grid.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.availability.report import Table
from repro.core.parameters import paper_parameters
from repro.core.underestimation import (
    UnderestimationPoint,
    maximum_underestimation,
    underestimation_sweep,
)
from repro.storage.raid import RaidGeometry

#: Failure-rate grid of the headline sweep: the paper's Fig. 4 range extended
#: down to the small rates where the underestimation factor peaks.
HEADLINE_FAILURE_RATES: tuple = tuple(np.geomspace(5e-8, 5.5e-6, 12))

#: hep values considered for the headline.
HEADLINE_HEP_VALUES: tuple = (0.001, 0.01)


def run_underestimation_study(
    failure_rates: Optional[Sequence[float]] = None,
    hep_values: Sequence[float] = HEADLINE_HEP_VALUES,
    data_disks: int = 3,
) -> Dict[float, List[UnderestimationPoint]]:
    """Return one underestimation sweep per hep value."""
    rates = list(failure_rates) if failure_rates is not None else list(HEADLINE_FAILURE_RATES)
    base = paper_parameters(geometry=RaidGeometry.raid5(data_disks))
    return {
        float(hep): underestimation_sweep(base, rates, hep=hep)
        for hep in hep_values
        if hep > 0.0
    }


def headline_factor(
    failure_rates: Optional[Sequence[float]] = None,
    hep_values: Sequence[float] = HEADLINE_HEP_VALUES,
    data_disks: int = 3,
) -> UnderestimationPoint:
    """Return the maximum underestimation over the grid (the "up to" number)."""
    rates = list(failure_rates) if failure_rates is not None else list(HEADLINE_FAILURE_RATES)
    base = paper_parameters(geometry=RaidGeometry.raid5(data_disks))
    return maximum_underestimation(base, rates, hep_values=hep_values)


def underestimation_table(study: Dict[float, List[UnderestimationPoint]]) -> Table:
    """Render the underestimation study as a table."""
    table = Table(
        title="Downtime underestimation when human error is ignored (RAID5 3+1)",
        columns=["failure_rate", "hep", "unavail_with_hep", "unavail_without_hep", "factor"],
    )
    for hep in sorted(study):
        for point in study[hep]:
            table.add_row(
                failure_rate=point.disk_failure_rate,
                hep=point.hep,
                unavail_with_hep=point.unavailability_with_hep,
                unavail_without_hep=point.unavailability_without_hep,
                factor=point.factor,
            )
    table.add_note("paper: underestimation of up to 263X (2-3 orders of magnitude)")
    return table
