"""Experiment EXP-SCRUB — scrub-interval study for the erasure family.

How often should an erasure-coded store run its checker?  The paper's
policies repair continuously; a k-of-N store instead discovers lost shares
only when the periodic check ("scrub") fires, so the check period is the
operator's main availability knob.  This experiment sweeps the period from
daily to annual for one pinned scheme and reports both faces side by side:

* **analytical** — the checker-cycle solver of :mod:`repro.markov.checker`
  (share-count decay chain composed with the check/repair matrix), one tiny
  solve per period;
* **Monte Carlo** — one *single* stacked kernel invocation covering every
  period: the per-row ``check_period_rows`` scheme plane lets lifetimes
  with different scrub intervals ride the same
  :func:`~repro.core.policies.vectorized.batch_erasure` call.

Short periods push the availability above what a fixed lifetime budget can
resolve (zero observed downtime); those rows are reported as consistent by
construction and the analytical column carries the information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.availability.report import Table
from repro.core.evaluation import analytical_result
from repro.core.parameters import paper_parameters
from repro.core.policies import RedundancyScheme, erasure_policy
from repro.core.policies.stacked import stack_parameter_points
from repro.core.policies.vectorized import batch_erasure
from repro.experiments.config import DEFAULTS
from repro.simulation.confidence import confidence_interval
from repro.simulation.rng import RandomStreams
from repro.storage.raid import RaidGeometry

#: Scrub periods from daily to annual (hours).
SCRUB_PERIODS_HOURS = (24.0, 168.0, 730.0, 2190.0, 4380.0, 8760.0)

#: Operating point: a pinned 3-of-10 scheme that only repairs once fewer
#: than 7 shares survive, on a disk fleet stressed to lambda = 1e-4/h with
#: error-prone repair crews — event-rich enough that the monthly-and-slower
#: rows resolve within a few thousand lifetimes.
SCRUB_K = 3
SCRUB_N = 10
SCRUB_REPAIR_THRESHOLD = 7
SCRUB_FAILURE_RATE = 1e-4
SCRUB_HEP = 0.1


@dataclass(frozen=True)
class ScrubIntervalPoint:
    """Both-face outcome of one check period."""

    check_period_hours: float
    analytical_availability: float
    analytical_nines: float
    mc_availability: float
    mc_ci_low: float
    mc_ci_high: float
    n_iterations: int
    consistent: bool

    def as_dict(self) -> Dict[str, object]:
        """Return a serialisable row."""
        return {
            "check_period_hours": self.check_period_hours,
            "analytical_availability": self.analytical_availability,
            "analytical_nines": self.analytical_nines,
            "mc_availability": self.mc_availability,
            "mc_ci_low": self.mc_ci_low,
            "mc_ci_high": self.mc_ci_high,
            "n_iterations": self.n_iterations,
            "consistent": self.consistent,
        }


def run_scrub_interval_study(
    periods_hours: Sequence[float] = SCRUB_PERIODS_HOURS,
    k: int = SCRUB_K,
    n: int = SCRUB_N,
    repair_threshold: int = SCRUB_REPAIR_THRESHOLD,
    disk_failure_rate: float = SCRUB_FAILURE_RATE,
    hep: float = SCRUB_HEP,
    mc_iterations: Optional[int] = None,
    mc_horizon_hours: float = DEFAULTS.mc_horizon_hours,
    confidence: float = DEFAULTS.mc_confidence,
    seed: int = DEFAULTS.seed,
) -> List[ScrubIntervalPoint]:
    """Sweep the check period for one pinned k-of-N scheme, both faces.

    The Monte Carlo side runs all periods as one stacked grid: the point
    parameters are identical, only the ``check_period_rows`` scheme plane
    varies per row.
    """
    iterations = mc_iterations if mc_iterations is not None else DEFAULTS.mc_iterations
    params = paper_parameters(
        geometry=RaidGeometry.erasure(k, n),
        disk_failure_rate=disk_failure_rate,
        hep=hep,
    )

    schemes = [
        RedundancyScheme(
            n_shares=n, k=k, repair_threshold=repair_threshold, check_period_hours=p
        )
        for p in periods_hours
    ]
    stacked = stack_parameter_points(
        [params] * len(schemes), [iterations] * len(schemes), schemes=schemes
    )
    rng = RandomStreams(seed).stream("montecarlo")
    batch = batch_erasure(stacked, mc_horizon_hours, len(schemes) * iterations, rng)
    availabilities = batch.availabilities()

    points: List[ScrubIntervalPoint] = []
    for index, period in enumerate(periods_hours):
        policy = erasure_policy(
            k, n, repair_threshold=repair_threshold, check_period_hours=float(period)
        )
        analytical = analytical_result(params, policy)
        segment = availabilities[index * iterations : (index + 1) * iterations]
        interval = confidence_interval(segment, confidence=confidence)
        mc_availability = float(np.mean(segment))
        ci_low = interval.mean - interval.half_width
        ci_high = interval.mean + interval.half_width
        # A segment with zero observed downtime yields the degenerate
        # interval [1, 1]; the analytical value cannot fall inside it, but
        # zero events is exactly what a sub-resolution availability
        # predicts, so such rows count as consistent rather than failed.
        degenerate = mc_availability == 1.0 and interval.half_width == 0.0
        consistent = degenerate or (
            ci_low <= analytical.availability <= ci_high
        )
        points.append(
            ScrubIntervalPoint(
                check_period_hours=float(period),
                analytical_availability=analytical.availability,
                analytical_nines=analytical.nines,
                mc_availability=mc_availability,
                mc_ci_low=ci_low,
                mc_ci_high=ci_high,
                n_iterations=iterations,
                consistent=consistent,
            )
        )
    return points


def scrub_interval_table(points: Sequence[ScrubIntervalPoint]) -> Table:
    """Render the scrub-interval study as a report table."""
    table = Table(
        title=(
            f"EXP-SCRUB — scrub-interval study, {SCRUB_K}-of-{SCRUB_N} erasure "
            f"(repair below {SCRUB_REPAIR_THRESHOLD}, lambda={SCRUB_FAILURE_RATE:g}/h, "
            f"hep={SCRUB_HEP:g})"
        ),
        columns=[
            "check_period_h",
            "analytical_nines",
            "mc_availability",
            "mc_ci_low",
            "mc_ci_high",
            "consistent",
        ],
    )
    for point in points:
        table.add_row(
            check_period_h=point.check_period_hours,
            analytical_nines=point.analytical_nines,
            mc_availability=point.mc_availability,
            mc_ci_low=point.mc_ci_low,
            mc_ci_high=point.mc_ci_high,
            consistent=str(point.consistent),
        )
    table.add_note(
        "one stacked kernel invocation covers every period via the "
        "check_period_rows scheme plane; rows with zero observed downtime "
        "([1, 1] intervals) are below Monte Carlo resolution and count as "
        "consistent — read the analytical column there"
    )
    return table


def degradation_factor(points: Sequence[ScrubIntervalPoint]) -> float:
    """Unavailability ratio of the longest over the shortest scrub period.

    The headline number of the study: how much availability the operator
    gives up by scrubbing at the slowest cadence instead of the fastest.
    """
    if len(points) < 2:
        return 1.0
    ordered = sorted(points, key=lambda p: p.check_period_hours)
    shortest = 1.0 - ordered[0].analytical_availability
    longest = 1.0 - ordered[-1].analytical_availability
    if shortest <= 0.0:
        return float("inf") if longest > 0.0 else 1.0
    return longest / shortest
