"""Experiment EXP-XV — cross-backend validation of every dual-face policy.

The paper's central methodological claim is that its Markov chains and its
Monte Carlo simulator describe the *same* system: Fig. 4 demonstrates it for
the conventional policy only.  With every registered policy now carrying
both an analytical face and a simulation face behind one evaluation API,
this experiment generalises the check: **for each policy that has both
faces, the analytical steady-state availability must fall inside the Monte
Carlo confidence interval** at the evaluated operating point.

The Monte Carlo side runs on the sharded executor (so the experiment also
exercises the PR 2 merge path), and the experiment doubles as the CI smoke
job via ``python -m repro crossval --iterations <small>``.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.availability.report import Table
from repro.core.evaluation import analytical_policies, evaluate
from repro.core.montecarlo.config import PolicyRef
from repro.core.montecarlo.parallel import worker_pool
from repro.core.parameters import AvailabilityParameters, paper_parameters
from repro.core.policies.registry import resolve_policy
from repro.experiments.config import DEFAULTS
from repro.storage.raid import RaidGeometry


@dataclass(frozen=True)
class CrossValidationRow:
    """Analytical-vs-Monte-Carlo agreement for one policy."""

    policy: str
    analytical_availability: float
    analytical_nines: float
    mc_availability: float
    mc_ci_low: float
    mc_ci_high: float
    mc_half_width: float
    n_iterations: int
    within_ci: bool

    def as_dict(self) -> Dict[str, object]:
        """Return a serialisable row."""
        return {
            "policy": self.policy,
            "analytical_availability": self.analytical_availability,
            "analytical_nines": self.analytical_nines,
            "mc_availability": self.mc_availability,
            "mc_ci_low": self.mc_ci_low,
            "mc_ci_high": self.mc_ci_high,
            "mc_half_width": self.mc_half_width,
            "n_iterations": self.n_iterations,
            "within_ci": self.within_ci,
        }


def run_cross_validation(
    params: Optional[AvailabilityParameters] = None,
    policies: Optional[Sequence[PolicyRef]] = None,
    mc_iterations: int = DEFAULTS.mc_iterations,
    mc_horizon_hours: float = DEFAULTS.mc_horizon_hours,
    confidence: float = DEFAULTS.mc_confidence,
    seed: Optional[int] = DEFAULTS.seed,
    workers: int = 1,
    kernel: str = "auto",
    pool_kind: str = "process",
    pool=None,
) -> List[CrossValidationRow]:
    """Validate analytical against Monte Carlo for every dual-face policy.

    Parameters
    ----------
    params:
        Operating point; defaults to the paper's Section V-B rates at an
        elevated failure rate (1e-4/h) and ``hep = 0.01`` so the Monte Carlo
        interval is informative at moderate iteration counts.
    policies:
        Policies to validate; defaults to every registered policy with an
        analytical face *except* periodic-scheme (checker-cycle) policies,
        whose sparse repair events would make the default smoke job flaky.
    mc_iterations, mc_horizon_hours, confidence, seed:
        Monte Carlo configuration shared by all policies (``seed=None``
        draws fresh entropy per policy).
    workers / pool:
        Sharded-executor fan-out; a single pool is shared across policies.
    kernel / pool_kind:
        Kernel backend and shard-executor pool of the Monte Carlo face
        (``MonteCarloConfig.kernel`` / ``.pool``); ``pool_kind`` is so
        named because ``pool`` is the shared-executor argument above.
    """
    if params is None:
        params = paper_parameters(
            geometry=RaidGeometry.raid5(3), disk_failure_rate=1e-4, hep=0.01
        )
    if policies is None:
        # Periodic-scheme policies (the erasure family) are excluded from the
        # default set: at sparse operating points the monthly checker sees so
        # few repair events that the Monte Carlo interval degenerates to
        # [1, 1] for a large fraction of seeds, making the smoke job flaky.
        # Validate them explicitly — ``policies=["erasure"]`` or the CLI's
        # ``crossval --policy erasure`` — at an event-rich operating point.
        chosen = [
            p
            for p in (resolve_policy(name) for name in analytical_policies())
            if not p.has_periodic_checks
        ]
    else:
        chosen = [resolve_policy(p) for p in policies]
    rows: List[CrossValidationRow] = []
    context = nullcontext(pool) if pool is not None else worker_pool(workers, pool_kind)
    with context as shared_pool:
        for policy in chosen:
            analytical = evaluate(params, policy=policy, backend="analytical")
            mc = evaluate(
                params,
                policy=policy,
                backend="monte_carlo",
                n_iterations=mc_iterations,
                horizon_hours=mc_horizon_hours,
                confidence=confidence,
                seed=seed,
                workers=workers,
                # Pinning the shard size keeps the drawn lifetimes identical
                # across --workers values, so the smoke job is reproducible
                # on any machine.
                shard_size=max(1, mc_iterations // 4),
                kernel=kernel,
                pool_kind=pool_kind,
                pool=shared_pool,
            )
            rows.append(
                CrossValidationRow(
                    policy=policy.name,
                    analytical_availability=analytical.availability,
                    analytical_nines=analytical.nines,
                    mc_availability=mc.availability,
                    mc_ci_low=mc.ci_lower,
                    mc_ci_high=mc.ci_upper,
                    mc_half_width=mc.half_width,
                    n_iterations=mc.n_iterations,
                    within_ci=mc.contains(analytical.availability),
                )
            )
    return rows


def cross_validation_table(rows: Sequence[CrossValidationRow]) -> Table:
    """Render the cross-backend validation as a report table."""
    table = Table(
        title="EXP-XV — analytical vs Monte Carlo, every dual-face policy",
        columns=[
            "policy",
            "analytical_nines",
            "mc_availability",
            "mc_ci_low",
            "mc_ci_high",
            "within_ci",
        ],
    )
    for row in rows:
        table.add_row(
            policy=row.policy,
            analytical_nines=row.analytical_nines,
            mc_availability=row.mc_availability,
            mc_ci_low=row.mc_ci_low,
            mc_ci_high=row.mc_ci_high,
            within_ci=str(row.within_ci),
        )
    table.add_note(
        "acceptance: the analytical steady-state availability lies inside the "
        "sharded Monte Carlo confidence interval for every policy"
    )
    return table


def all_within_ci(rows: Sequence[CrossValidationRow]) -> bool:
    """Return whether every policy's analytical value fell inside its CI."""
    return bool(rows) and all(row.within_ci for row in rows)
