"""Experiment EXP-F6 — Fig. 6: RAID configurations at equal usable capacity.

Fig. 6 compares RAID1(1+1), RAID5(3+1) and RAID5(7+1) holding the usable
capacity constant, for disk failure rates 1e-5 (a), 1e-6 (b) and 1e-7 (c) and
``hep ∈ {0, 0.001, 0.01}``.  The paper's observation: without human error
the mirror wins; with human error the ranking flattens and then inverts,
because the mirror's ERF of 2 means more disks, more failures and more
operator touch points per unit of stored data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.availability.report import Table
from repro.core.comparison import compare_equal_capacity, ranking
from repro.core.parameters import paper_parameters
from repro.experiments.config import (
    FIG6_FAILURE_RATES,
    FIG6_USABLE_DISKS,
    HEP_SWEEP,
    fig6_configurations,
)


@dataclass(frozen=True)
class ComparisonCell:
    """Subsystem nines of one configuration at one (rate, hep) point."""

    disk_failure_rate: float
    hep: float
    configuration: str
    subsystem_nines: float
    subsystem_availability: float
    total_disks: int


def run_fig6_comparison(
    failure_rates: Sequence[float] = FIG6_FAILURE_RATES,
    hep_values: Sequence[float] = HEP_SWEEP,
    usable_disks: int = FIG6_USABLE_DISKS,
) -> List[ComparisonCell]:
    """Run the full Fig. 6 grid and return one cell per (rate, hep, config)."""
    cells: List[ComparisonCell] = []
    geometries = fig6_configurations()
    for rate in failure_rates:
        for hep in hep_values:
            base = paper_parameters(disk_failure_rate=rate, hep=hep)
            model = "baseline" if hep == 0.0 else "conventional"
            comparisons = compare_equal_capacity(
                base, geometries=geometries, usable_disks=usable_disks, model=model
            )
            for entry in comparisons:
                cells.append(
                    ComparisonCell(
                        disk_failure_rate=float(rate),
                        hep=float(hep),
                        configuration=entry.geometry_label,
                        subsystem_nines=entry.subsystem_nines,
                        subsystem_availability=entry.subsystem_availability,
                        total_disks=entry.total_disks,
                    )
                )
    return cells


def fig6_tables(cells: Sequence[ComparisonCell]) -> List[Table]:
    """Render one table per failure rate (the paper's subplots a, b, c)."""
    tables: List[Table] = []
    rates = sorted({cell.disk_failure_rate for cell in cells}, reverse=True)
    configurations = sorted({cell.configuration for cell in cells})
    for rate in rates:
        hep_values = sorted({c.hep for c in cells if c.disk_failure_rate == rate})
        table = Table(
            title=f"Fig. 6 — availability (nines) at equal usable capacity, lambda={rate:g}",
            columns=["hep"] + configurations,
        )
        for hep in hep_values:
            row: Dict[str, object] = {"hep": hep}
            for config in configurations:
                matches = [
                    c.subsystem_nines
                    for c in cells
                    if c.disk_failure_rate == rate and c.hep == hep and c.configuration == config
                ]
                row[config] = matches[0] if matches else "-"
            table.rows.append(row)
        table.add_note(
            "paper: RAID1(1+1) leads at hep=0 but loses its lead once human errors are modelled"
        )
        tables.append(table)
    return tables


def rankings_by_point(cells: Sequence[ComparisonCell]) -> Dict[str, List[str]]:
    """Return the availability ranking at each (rate, hep) grid point.

    Keys look like ``"lambda=1e-06 hep=0.01"``; values list configuration
    labels from most to least available.
    """
    result: Dict[str, List[str]] = {}
    points = sorted({(c.disk_failure_rate, c.hep) for c in cells})
    for rate, hep in points:
        subset = [c for c in cells if c.disk_failure_rate == rate and c.hep == hep]
        ordered = sorted(subset, key=lambda c: c.subsystem_availability, reverse=True)
        result[f"lambda={rate:g} hep={hep:g}"] = [c.configuration for c in ordered]
    return result


def raid1_loses_lead(cells: Sequence[ComparisonCell], failure_rate: float, hep: float) -> bool:
    """Return whether RAID1(1+1) is no longer the single best option at a point."""
    subset = [c for c in cells if c.disk_failure_rate == failure_rate and c.hep == hep]
    if not subset:
        raise ValueError(f"no cells at lambda={failure_rate!r}, hep={hep!r}")
    best = max(subset, key=lambda c: c.subsystem_availability)
    return best.configuration != "RAID1(1+1)"
