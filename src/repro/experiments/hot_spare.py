"""Experiment EXP-S1 — hot-spare-pool study (beyond the paper).

The paper stops at one hot spare (automatic fail-over).  This experiment
uses the policy registry and the vectorised batch executor to ask the next
operational question: *how much further does a pool of k spares help?*  For
each policy — conventional, fail-over, and hot-spare pools of increasing
size — it runs a Monte Carlo study at a stress parameter point (exaggerated
failure rate so the differences are resolvable at moderate iteration
counts) and reports availability, nines and the unavailability improvement
over the conventional baseline.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.availability.metrics import unavailability_ratio
from repro.availability.report import Table
from repro.core.montecarlo.config import MonteCarloConfig
from repro.core.montecarlo.parallel import worker_pool
from repro.core.montecarlo.runner import run_monte_carlo
from repro.core.parameters import paper_parameters
from repro.core.policies import hot_spare_policy
from repro.core.policies.registry import resolve_policy
from repro.experiments.config import DEFAULTS, HOT_SPARE_POOL_SIZES
from repro.storage.raid import RaidGeometry

#: Stress point at which the pool sizes separate within a few thousand
#: lifetimes: a disk fleet two orders of magnitude less reliable than the
#: paper's default, serviced by error-prone operators whose hardware
#: restocking visits are slow (think remote sites) — slow restocking is what
#: makes spares beyond the first earn their keep, because further failures
#: land while a replacement visit is still pending.
STRESS_FAILURE_RATE = 1e-4
STRESS_HEP = 0.01
STRESS_SPARE_REPLACEMENT_RATE = 0.005


@dataclass(frozen=True)
class HotSparePoint:
    """Monte Carlo outcome of one policy in the hot-spare study."""

    policy: str
    n_spares: int
    availability: float
    nines: float
    ci_low: float
    ci_high: float
    improvement_over_conventional: float

    def as_dict(self) -> Dict[str, object]:
        """Return a serialisable row."""
        return {
            "policy": self.policy,
            "n_spares": self.n_spares,
            "availability": self.availability,
            "nines": self.nines,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "improvement_over_conventional": self.improvement_over_conventional,
        }


def run_hot_spare_study(
    pool_sizes: Sequence[int] = HOT_SPARE_POOL_SIZES,
    disk_failure_rate: float = STRESS_FAILURE_RATE,
    hep: float = STRESS_HEP,
    spare_replacement_rate: float = STRESS_SPARE_REPLACEMENT_RATE,
    mc_iterations: Optional[int] = None,
    mc_horizon_hours: float = DEFAULTS.mc_horizon_hours,
    seed: int = DEFAULTS.seed,
    workers: int = 1,
    pool=None,
) -> List[HotSparePoint]:
    """Run the policy ladder and return one point per policy.

    ``workers > 1`` runs each policy's study on the sharded multi-process
    executor; ``pool`` optionally shares a caller-owned executor.
    """
    iterations = mc_iterations if mc_iterations is not None else DEFAULTS.mc_iterations
    params = replace(
        paper_parameters(
            geometry=RaidGeometry.raid5(3), disk_failure_rate=disk_failure_rate, hep=hep
        ),
        spare_replacement_rate=spare_replacement_rate,
    )
    ladder = [("conventional", 0), ("automatic_failover", 1)]
    ladder.extend((f"hot_spare_pool_k{k}", k) for k in pool_sizes)

    points: List[HotSparePoint] = []
    baseline_unavailability: Optional[float] = None
    # One pool for the whole ladder: pool startup is paid once, not per policy.
    context = nullcontext(pool) if pool is not None else worker_pool(workers)
    with context as ladder_pool:
        for name, n_spares in ladder:
            policy = hot_spare_policy(n_spares) if name.startswith("hot_spare_pool") else resolve_policy(name)
            result = run_monte_carlo(
                MonteCarloConfig(
                    params=params,
                    policy=policy,
                    horizon_hours=mc_horizon_hours,
                    n_iterations=iterations,
                    confidence=DEFAULTS.mc_confidence,
                    seed=seed,
                    workers=workers,
                ),
                pool=ladder_pool,
            )
            if baseline_unavailability is None:
                baseline_unavailability = result.unavailability
            points.append(
                HotSparePoint(
                    policy=policy.name,
                    n_spares=n_spares,
                    availability=result.availability,
                    nines=result.nines,
                    ci_low=result.interval.lower,
                    ci_high=result.interval.upper,
                    improvement_over_conventional=unavailability_ratio(
                        baseline_unavailability, result.unavailability
                    ),
                )
            )
    return points


def hot_spare_table(points: Sequence[HotSparePoint]) -> Table:
    """Render the policy ladder as a table."""
    table = Table(
        title=(
            "EXP-S1 — hot-spare pool study, RAID5(3+1) "
            f"(lambda={STRESS_FAILURE_RATE:g}/h, hep={STRESS_HEP:g}, "
            f"mu_s={STRESS_SPARE_REPLACEMENT_RATE:g}/h, Monte Carlo)"
        ),
        columns=["policy", "n_spares", "nines", "ci_low", "ci_high", "improvement"],
    )
    for point in points:
        table.add_row(
            policy=point.policy,
            n_spares=point.n_spares,
            nines=point.nines,
            ci_low=point.ci_low,
            ci_high=point.ci_high,
            improvement=point.improvement_over_conventional,
        )
    table.add_note(
        "improvement = conventional unavailability / policy unavailability; "
        "spares beyond the first absorb failures that arrive while a slow "
        "restocking visit is pending — gains stay modest because double-"
        "failure data losses during rebuilds dominate and no spare prevents those"
    )
    return table


def best_pool_size(points: Sequence[HotSparePoint]) -> int:
    """Return the spare count with the highest availability."""
    if not points:
        return 0
    return max(points, key=lambda p: p.availability).n_spares
