"""Parameter sets of the paper's evaluation section.

Every experiment module reads its workload from here, so the numbers the
paper quotes live in exactly one place:

* Section V-B rates: ``mu_DF = 0.1``, ``mu_DDF = 0.03``, ``mu_s = mu_he = 1``,
  ``lambda_crash = 0.01``.
* Fig. 4 failure-rate sweep: 0 ... 5.5e-6 per hour (we start the sweep at a
  small positive value because a zero failure rate has trivially perfect
  availability).
* Fig. 5 field failure-rate / Weibull-shape pairs (from the public disk
  field studies the paper cites).
* Fig. 6 failure rates (1e-5, 1e-6, 1e-7) and configurations
  (RAID1(1+1), RAID5(3+1), RAID5(7+1)).
* The hep sweep {0, 0.001, 0.01} shared by Figs. 5-7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.parameters import AvailabilityParameters, paper_parameters
from repro.storage.raid import RaidGeometry

#: Human error probabilities swept by the paper (x axes of Figs. 5-7).
HEP_SWEEP: Tuple[float, ...] = (0.0, 0.001, 0.01)

#: Disk failure rates of the Fig. 6 subplots (a), (b) and (c).
FIG6_FAILURE_RATES: Tuple[float, ...] = (1e-5, 1e-6, 1e-7)

#: Field (failure rate, Weibull shape) pairs quoted in Fig. 5.
FIG5_FIELD_RATES: Tuple[Tuple[float, float], ...] = (
    (1.25e-6, 1.09),
    (2.17e-6, 1.12),
    (7.96e-6, 1.21),
    (2.00e-5, 1.48),
)

#: hep values for which the Fig. 4 validation is run.
FIG4_HEP_VALUES: Tuple[float, ...] = (0.001, 0.01)

#: Spare-pool sizes explored by the hot-spare study (EXP-S1, beyond the
#: paper); the conventional and fail-over policies are always included as
#: the 0- and 1-spare rungs of the ladder.
HOT_SPARE_POOL_SIZES: Tuple[int, ...] = (2, 3)

#: Usable capacity (in disk units) of the Fig. 6 equal-capacity comparison:
#: the least common multiple of 1, 3 and 7 data disks.
FIG6_USABLE_DISKS: int = 21


@dataclass(frozen=True)
class ExperimentDefaults:
    """Tunable knobs shared by the experiment runners.

    Attributes
    ----------
    mc_iterations:
        Monte Carlo iterations used by the experiment modules.  The paper
        uses 1e6; the default here keeps a full reproduction run in the
        minutes range on a laptop.  Benchmarks use an even smaller count.
    mc_horizon_hours:
        Mission time of each simulated lifetime.
    mc_confidence:
        Confidence level of the Monte Carlo intervals (0.99 in the paper).
    seed:
        Master seed used by all experiments for reproducibility.
    """

    mc_iterations: int = 40_000
    mc_horizon_hours: float = 10 * 8760.0
    mc_confidence: float = 0.99
    seed: int = 2017


DEFAULTS = ExperimentDefaults()


def fig4_failure_rates(n_points: int = 11, maximum: float = 5.5e-6) -> List[float]:
    """Return the Fig. 4 failure-rate grid.

    The paper's x axis spans 0 to 5.5e-6 per hour; the grid here starts at
    ``maximum / n_points`` because a literal zero failure rate gives perfect
    availability in both models and adds nothing to the validation.
    """
    if n_points < 2:
        raise ValueError(f"need at least two grid points, got {n_points!r}")
    if maximum <= 0.0:
        raise ValueError(f"maximum failure rate must be positive, got {maximum!r}")
    return list(np.linspace(maximum / n_points, maximum, n_points))


def raid5_3_1_parameters(hep: float = 0.001, failure_rate: float = 1e-6) -> AvailabilityParameters:
    """Return the paper's default RAID5(3+1) parameter set."""
    return paper_parameters(
        geometry=RaidGeometry.raid5(3), disk_failure_rate=failure_rate, hep=hep
    )


def fig6_configurations() -> List[RaidGeometry]:
    """Return the three configurations compared in Fig. 6."""
    return [RaidGeometry.raid1(2), RaidGeometry.raid5(3), RaidGeometry.raid5(7)]


def fig5_parameter_sets(hep: float) -> Dict[str, AvailabilityParameters]:
    """Return one RAID5(3+1) parameter set per Fig. 5 field failure rate.

    Keys are human-readable labels like ``"lambda=1.25e-06 (beta=1.09)"``.
    The Weibull shape is carried on the parameter set so the Monte Carlo
    path can use the field-accurate distribution while the Markov path uses
    the matching exponential rate.
    """
    sets: Dict[str, AvailabilityParameters] = {}
    for rate, shape in FIG5_FIELD_RATES:
        label = f"lambda={rate:.3g} (beta={shape:g})"
        sets[label] = paper_parameters(
            geometry=RaidGeometry.raid5(3),
            disk_failure_rate=rate,
            hep=hep,
            failure_shape=shape,
        )
    return sets
