"""Experiment EXP-F4 — Fig. 4: validation of the Markov model against Monte Carlo.

The paper's Fig. 4 plots availability (in nines) versus disk failure rate
for ``hep = 0.001`` and ``hep = 0.01``, showing that the Markov prediction
falls inside the Monte Carlo confidence interval at every point.  This
module reruns that validation through the backend-agnostic evaluation API:
each (failure rate, hep) grid point is evaluated **twice through the same
front door** — once on the ``"analytical"`` backend (the conventional
policy's Fig. 2 chain) and once on the ``"monte_carlo"`` backend — and the
report records both values, the Monte Carlo interval and whether the
analytical value is inside it.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.availability.report import Table
from repro.core.evaluation import evaluate
from repro.core.montecarlo.parallel import worker_pool
from repro.core.parameters import paper_parameters
from repro.experiments.config import DEFAULTS, FIG4_HEP_VALUES, fig4_failure_rates
from repro.storage.raid import RaidGeometry


@dataclass(frozen=True)
class ValidationPoint:
    """One grid point of the Fig. 4 validation."""

    disk_failure_rate: float
    hep: float
    markov_availability: float
    markov_nines: float
    mc_availability: float
    mc_nines: float
    mc_ci_low: float
    mc_ci_high: float
    markov_within_ci: bool

    def as_dict(self) -> Dict[str, object]:
        """Return a serialisable row."""
        return {
            "disk_failure_rate": self.disk_failure_rate,
            "hep": self.hep,
            "markov_availability": self.markov_availability,
            "markov_nines": self.markov_nines,
            "mc_availability": self.mc_availability,
            "mc_nines": self.mc_nines,
            "mc_ci_low": self.mc_ci_low,
            "mc_ci_high": self.mc_ci_high,
            "markov_within_ci": self.markov_within_ci,
        }


def run_fig4_validation(
    failure_rates: Optional[Sequence[float]] = None,
    hep_values: Sequence[float] = FIG4_HEP_VALUES,
    mc_iterations: int = DEFAULTS.mc_iterations,
    mc_horizon_hours: float = DEFAULTS.mc_horizon_hours,
    seed: int = DEFAULTS.seed,
    executor: str = "auto",
    workers: int = 1,
    pool=None,
) -> List[ValidationPoint]:
    """Run the validation grid and return one point per (rate, hep) pair.

    ``executor`` selects the Monte Carlo execution path; the default lets
    the runner vectorise through the policy's batch kernel.  ``workers > 1``
    fans each grid point's iteration budget out over the sharded
    multi-process executor; ``pool`` optionally shares a caller-owned
    executor (e.g. across several experiments).
    """
    rates = list(failure_rates) if failure_rates is not None else fig4_failure_rates()
    points: List[ValidationPoint] = []
    # One pool for the whole grid: pool startup is paid once, not per point.
    context = nullcontext(pool) if pool is not None else worker_pool(workers)
    with context as grid_pool:
        for hep in hep_values:
            for rate in rates:
                points.append(
                    _validate_point(
                        rate, hep, mc_iterations, mc_horizon_hours, seed,
                        executor, workers, grid_pool,
                    )
                )
    return points


def _validate_point(
    rate: float,
    hep: float,
    mc_iterations: int,
    mc_horizon_hours: float,
    seed: int,
    executor: str,
    workers: int,
    pool,
) -> ValidationPoint:
    """Run one (rate, hep) grid point of the validation."""
    params = paper_parameters(
        geometry=RaidGeometry.raid5(3), disk_failure_rate=rate, hep=hep
    )
    markov = evaluate(params, policy="conventional", backend="analytical")
    mc = evaluate(
        params,
        policy="conventional",
        backend="monte_carlo",
        horizon_hours=mc_horizon_hours,
        n_iterations=mc_iterations,
        confidence=DEFAULTS.mc_confidence,
        seed=seed,
        executor=executor,
        workers=workers,
        pool=pool,
    )
    return ValidationPoint(
        disk_failure_rate=rate,
        hep=hep,
        markov_availability=markov.availability,
        markov_nines=markov.nines,
        mc_availability=mc.availability,
        mc_nines=mc.nines,
        mc_ci_low=mc.ci_lower,
        mc_ci_high=mc.ci_upper,
        markov_within_ci=mc.contains(markov.availability),
    )


def fig4_table(points: Sequence[ValidationPoint]) -> Table:
    """Render the validation grid as the Fig. 4 series table."""
    table = Table(
        title="Fig. 4 — Markov vs Monte Carlo validation (RAID5 3+1)",
        columns=[
            "failure_rate",
            "hep",
            "markov_nines",
            "mc_nines",
            "mc_ci_low",
            "mc_ci_high",
            "markov_within_ci",
        ],
    )
    for point in points:
        table.add_row(
            failure_rate=point.disk_failure_rate,
            hep=point.hep,
            markov_nines=point.markov_nines,
            mc_nines=point.mc_nines,
            mc_ci_low=point.mc_ci_low,
            mc_ci_high=point.mc_ci_high,
            markov_within_ci=str(point.markov_within_ci),
        )
    table.add_note(
        "paper: Markov availability lies within the MC 99% interval for hep=0.001 and 0.01"
    )
    return table


def agreement_fraction(points: Sequence[ValidationPoint]) -> float:
    """Return the fraction of grid points where Markov falls inside the MC CI."""
    if not points:
        return 0.0
    return sum(1 for p in points if p.markov_within_ci) / len(points)
