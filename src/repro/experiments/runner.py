"""Run every experiment of the paper and print its tables.

This is the "regenerate the evaluation section" entry point used by
``examples/reproduce_paper.py`` and by EXPERIMENTS.md.  Each experiment can
also be run individually through its own module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.availability.report import Table
from repro.core.montecarlo.parallel import worker_pool
from repro.experiments import cross_validation, fig4_validation, fig5_hep_sweep
from repro.experiments import fig6_raid_comparison, fig7_failover, hot_spare
from repro.experiments import scrub_interval, underestimation
from repro.experiments.config import DEFAULTS


@dataclass
class ExperimentReport:
    """Tables and headline numbers produced by a full reproduction run."""

    tables: List[Table] = field(default_factory=list)
    headline: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """Return all tables and headlines as one text report."""
        sections = [table.render() for table in self.tables]
        if self.headline:
            lines = ["Headline numbers", "================"]
            for key in sorted(self.headline):
                lines.append(f"{key}: {self.headline[key]:.6g}")
            sections.append("\n".join(lines))
        return "\n\n".join(sections)


def run_all_experiments(
    mc_iterations: Optional[int] = None,
    include_monte_carlo: bool = True,
    seed: int = DEFAULTS.seed,
    workers: int = 1,
) -> ExperimentReport:
    """Run EXP-F4 ... EXP-F7 and EXP-T1 and collect their tables.

    Parameters
    ----------
    mc_iterations:
        Monte Carlo iteration count for the validation experiment; ``None``
        uses the experiment default.  Pass a smaller number for a quick
        smoke run.
    include_monte_carlo:
        When ``False`` the Fig. 4 validation is skipped entirely (the other
        experiments are purely analytical and fast).
    seed:
        Master seed forwarded to the Monte Carlo runs.
    workers:
        Worker processes for the Monte Carlo studies; ``> 1`` runs them on
        the sharded parallel executor.
    """
    report = ExperimentReport()
    iterations = mc_iterations if mc_iterations is not None else DEFAULTS.mc_iterations

    if include_monte_carlo:
        # One pool shared across every Monte Carlo study of the run, so
        # worker startup is paid once, not per experiment.
        with worker_pool(workers) as pool:
            points = fig4_validation.run_fig4_validation(
                mc_iterations=iterations, seed=seed, workers=workers, pool=pool
            )
            crossval_rows = cross_validation.run_cross_validation(
                mc_iterations=iterations, seed=seed, workers=workers, pool=pool
            )
            spare_points = hot_spare.run_hot_spare_study(
                mc_iterations=iterations, seed=seed, workers=workers, pool=pool
            )
        report.tables.append(fig4_validation.fig4_table(points))
        report.headline["fig4_agreement_fraction"] = fig4_validation.agreement_fraction(points)
        report.tables.append(cross_validation.cross_validation_table(crossval_rows))
        report.headline["crossval_policies_within_ci"] = float(
            sum(1 for row in crossval_rows if row.within_ci)
        )
        report.tables.append(hot_spare.hot_spare_table(spare_points))
        report.headline["hot_spare_best_pool_size"] = float(
            hot_spare.best_pool_size(spare_points)
        )
        # Single-process by design: all scrub periods ride one stacked
        # kernel invocation, so there is nothing to shard.
        scrub_points = scrub_interval.run_scrub_interval_study(
            mc_iterations=iterations, seed=seed
        )
        report.tables.append(scrub_interval.scrub_interval_table(scrub_points))
        report.headline["scrub_degradation_factor"] = scrub_interval.degradation_factor(
            scrub_points
        )

    fig5_series = fig5_hep_sweep.run_fig5_sweep()
    report.tables.append(fig5_hep_sweep.fig5_table(fig5_series))

    fig5_surface = fig5_hep_sweep.run_fig5_surface()
    report.tables.append(fig5_hep_sweep.fig5_surface_table(fig5_surface))

    fig6_cells = fig6_raid_comparison.run_fig6_comparison()
    report.tables.extend(fig6_raid_comparison.fig6_tables(fig6_cells))

    fig7_points = fig7_failover.run_fig7_comparison()
    report.tables.append(fig7_failover.fig7_table(fig7_points))
    report.headline["fig7_improvement_at_hep_0.01"] = fig7_failover.improvement_by_hep(
        fig7_points
    ).get(0.01, float("nan"))

    study = underestimation.run_underestimation_study()
    report.tables.append(underestimation.underestimation_table(study))
    headline_point = underestimation.headline_factor()
    report.headline["max_underestimation_factor"] = headline_point.factor
    report.headline["max_underestimation_failure_rate"] = headline_point.disk_failure_rate

    return report
