"""Reproductions of the paper's evaluation figures and headline numbers."""

from repro.experiments import (
    cross_validation,
    fig4_validation,
    fig5_hep_sweep,
    fig6_raid_comparison,
    fig7_failover,
    hot_spare,
    scrub_interval,
    underestimation,
)
from repro.experiments.config import (
    DEFAULTS,
    FIG4_HEP_VALUES,
    FIG5_FIELD_RATES,
    FIG6_FAILURE_RATES,
    FIG6_USABLE_DISKS,
    HEP_SWEEP,
    HOT_SPARE_POOL_SIZES,
    ExperimentDefaults,
    fig4_failure_rates,
    fig5_parameter_sets,
    fig6_configurations,
    raid5_3_1_parameters,
)
from repro.experiments.runner import ExperimentReport, run_all_experiments

__all__ = [
    "DEFAULTS",
    "ExperimentDefaults",
    "ExperimentReport",
    "cross_validation",
    "FIG4_HEP_VALUES",
    "FIG5_FIELD_RATES",
    "FIG6_FAILURE_RATES",
    "FIG6_USABLE_DISKS",
    "HEP_SWEEP",
    "HOT_SPARE_POOL_SIZES",
    "fig4_failure_rates",
    "fig4_validation",
    "fig5_hep_sweep",
    "fig5_parameter_sets",
    "fig6_configurations",
    "fig6_raid_comparison",
    "fig7_failover",
    "hot_spare",
    "raid5_3_1_parameters",
    "run_all_experiments",
    "scrub_interval",
    "underestimation",
]
