"""Experiment EXP-F5 — Fig. 5: RAID5(3+1) availability versus human error probability.

Fig. 5 plots availability (nines) of a RAID5(3+1) array against
``hep ∈ {0, 0.001, 0.01}`` for four disk failure rates taken from field
studies, each quoted with its Weibull shape.  The analytical series uses the
conventional-replacement Markov model at the matching exponential rate; an
optional Monte Carlo series uses the true Weibull shape, which is how the
paper handles the non-exponential case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.availability.report import Table, table_from_series
from repro.core.evaluation import evaluate
from repro.core.sweep import SweepGrid, sweep_grid, sweep_hep
from repro.experiments.config import DEFAULTS, FIG5_FIELD_RATES, HEP_SWEEP
from repro.core.parameters import paper_parameters
from repro.storage.raid import RaidGeometry


@dataclass(frozen=True)
class HepSweepSeries:
    """One Fig. 5 curve: availability versus hep for a fixed failure rate."""

    disk_failure_rate: float
    weibull_shape: float
    hep_values: List[float]
    markov_nines: List[float]
    mc_nines: Optional[List[float]] = None

    @property
    def label(self) -> str:
        """Return the legend label used by the paper."""
        return f"lambda={self.disk_failure_rate:.3g}, beta={self.weibull_shape:g}"

    def drop_from_baseline(self) -> float:
        """Return the nines lost between hep = 0 and the largest hep."""
        return self.markov_nines[0] - self.markov_nines[-1]


def run_fig5_sweep(
    hep_values: Sequence[float] = HEP_SWEEP,
    field_rates: Sequence = FIG5_FIELD_RATES,
    include_monte_carlo: bool = False,
    mc_iterations: int = DEFAULTS.mc_iterations,
    mc_horizon_hours: float = DEFAULTS.mc_horizon_hours,
    seed: int = DEFAULTS.seed,
) -> List[HepSweepSeries]:
    """Run the Fig. 5 sweep and return one series per field failure rate."""
    series: List[HepSweepSeries] = []
    for rate, shape in field_rates:
        base = paper_parameters(
            geometry=RaidGeometry.raid5(3), disk_failure_rate=rate, hep=0.0
        )
        markov_points = sweep_hep(base, hep_values, model="conventional")
        mc_nines: Optional[List[float]] = None
        if include_monte_carlo:
            mc_nines = []
            for hep in hep_values:
                params = paper_parameters(
                    geometry=RaidGeometry.raid5(3),
                    disk_failure_rate=rate,
                    hep=hep,
                    failure_shape=shape,
                )
                result = evaluate(
                    params,
                    policy="conventional",
                    backend="monte_carlo",
                    horizon_hours=mc_horizon_hours,
                    n_iterations=mc_iterations,
                    confidence=DEFAULTS.mc_confidence,
                    seed=seed,
                )
                mc_nines.append(result.nines)
        series.append(
            HepSweepSeries(
                disk_failure_rate=float(rate),
                weibull_shape=float(shape),
                hep_values=[float(h) for h in hep_values],
                markov_nines=[p.nines for p in markov_points],
                mc_nines=mc_nines,
            )
        )
    return series


def run_fig5_surface(
    hep_values: Sequence[float] = HEP_SWEEP,
    failure_rates: Optional[Sequence[float]] = None,
    backend: str = "analytical",
    mc_iterations: int = DEFAULTS.mc_iterations,
    mc_horizon_hours: float = DEFAULTS.mc_horizon_hours,
    seed: int = DEFAULTS.seed,
    workers: int = 1,
) -> SweepGrid:
    """Run the Fig. 5 hep-versus-lambda availability surface in one call.

    The whole ``failure_rates x hep_values`` sheet is evaluated as a single
    :func:`~repro.core.sweep.sweep_grid`: analytically one batched
    factorization group per chain structure, on the ``monte_carlo`` backend
    one stacked grid (a handful of kernel invocations for every point of
    the surface).  ``failure_rates`` defaults to the field rates the paper
    quotes in Fig. 5.
    """
    rates = (
        [rate for rate, _ in FIG5_FIELD_RATES]
        if failure_rates is None
        else list(failure_rates)
    )
    return sweep_grid(
        paper_parameters(geometry=RaidGeometry.raid5(3), hep=0.0),
        "failure_rate",
        rates,
        "hep",
        list(hep_values),
        policy="conventional",
        backend=backend,
        mc_iterations=mc_iterations,
        mc_horizon_hours=mc_horizon_hours,
        seed=seed,
        workers=workers,
    )


def fig5_surface_table(grid: SweepGrid) -> Table:
    """Render the Fig. 5 surface as a table (one column per failure rate)."""
    columns = {
        f"lambda={rate:.3g}": [point.nines for point in row]
        for rate, row in zip(grid.values1, grid.points)
    }
    return table_from_series(
        title="Fig. 5 surface — RAID5(3+1) nines over the hep x lambda grid",
        x_name="hep",
        x_values=list(grid.values2),
        series=columns,
        notes=[
            "whole surface evaluated in one sweep_grid call "
            f"({len(grid.values1)} x {len(grid.values2)} points)",
        ],
    )


def fig5_table(series: Sequence[HepSweepSeries]) -> Table:
    """Render the Fig. 5 sweep as a table (one column per failure rate)."""
    if not series:
        raise ValueError("at least one series is required")
    hep_values = series[0].hep_values
    columns = {entry.label: entry.markov_nines for entry in series}
    table = table_from_series(
        title="Fig. 5 — RAID5(3+1) availability (nines) vs human error probability",
        x_name="hep",
        x_values=hep_values,
        series=columns,
        notes=[
            "availability is inversely related to hep; the drop from hep=0 to hep=0.01 "
            "grows as the failure rate shrinks",
        ],
    )
    return table


def availability_drops(series: Sequence[HepSweepSeries]) -> Dict[str, float]:
    """Return the nines drop from hep = 0 to the largest hep for each series."""
    return {entry.label: entry.drop_from_baseline() for entry in series}
