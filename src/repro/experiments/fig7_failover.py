"""Experiment EXP-F7 — Fig. 7: conventional versus automatic fail-over policy.

Fig. 7 compares the availability of a RAID5(3+1) array under the
conventional replacement policy against the automatic fail-over (delayed
replacement) policy for ``hep ∈ {0, 0.001, 0.01}``.  The paper's findings,
which this experiment reproduces:

* at ``hep = 0`` the two policies are essentially equivalent;
* the fail-over policy's advantage grows with hep, reaching roughly two
  orders of magnitude of unavailability at ``hep = 0.01``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.availability.metrics import unavailability_ratio
from repro.availability.report import Table, table_from_series
from repro.core.evaluation import evaluate
from repro.core.parameters import paper_parameters
from repro.experiments.config import HEP_SWEEP
from repro.storage.raid import RaidGeometry


@dataclass(frozen=True)
class PolicyComparisonPoint:
    """Availability of both policies at one hep value."""

    hep: float
    conventional_availability: float
    conventional_nines: float
    failover_availability: float
    failover_nines: float

    @property
    def improvement_factor(self) -> float:
        """Return how many times lower the fail-over unavailability is."""
        return unavailability_ratio(
            1.0 - self.conventional_availability, 1.0 - self.failover_availability
        )


def run_fig7_comparison(
    hep_values: Sequence[float] = HEP_SWEEP,
    disk_failure_rate: float = 1e-6,
    data_disks: int = 3,
) -> List[PolicyComparisonPoint]:
    """Run the policy comparison across the hep sweep."""
    points: List[PolicyComparisonPoint] = []
    for hep in hep_values:
        params = paper_parameters(
            geometry=RaidGeometry.raid5(data_disks),
            disk_failure_rate=disk_failure_rate,
            hep=hep,
        )
        conventional_policy = "baseline" if hep == 0.0 else "conventional"
        conventional = evaluate(params, policy=conventional_policy, backend="analytical")
        failover = evaluate(params, policy="automatic_failover", backend="analytical")
        points.append(
            PolicyComparisonPoint(
                hep=float(hep),
                conventional_availability=conventional.availability,
                conventional_nines=conventional.nines,
                failover_availability=failover.availability,
                failover_nines=failover.nines,
            )
        )
    return points


def fig7_table(points: Sequence[PolicyComparisonPoint]) -> Table:
    """Render the policy comparison as the Fig. 7 series table."""
    hep_values = [p.hep for p in points]
    table = table_from_series(
        title="Fig. 7 — availability (nines) of replacement policies, RAID5(3+1)",
        x_name="hep",
        x_values=hep_values,
        series={
            "Conventional-Disk-Replacement": [p.conventional_nines for p in points],
            "Delayed-Disk-Replacement": [p.failover_nines for p in points],
            "improvement_factor": [p.improvement_factor for p in points],
        },
        notes=[
            "paper: automatic fail-over recovers roughly two orders of magnitude of "
            "availability at hep=0.01 and its advantage grows with hep",
        ],
    )
    return table


def improvement_by_hep(points: Sequence[PolicyComparisonPoint]) -> Dict[float, float]:
    """Return ``{hep: unavailability improvement factor}``."""
    return {p.hep: p.improvement_factor for p in points}
