"""Discrete-time Markov chain helpers.

The paper's Fig. 2 annotates self-loop probabilities ``R1..R4`` because the
model is drawn as a discrete-time chain with a one-hour step (rates are small
enough that ``rate * 1h`` is a probability).  This module provides both the
*embedded* jump chain of a CTMC (probabilities of which transition fires
next) and the *step-discretised* chain used by that style of presentation, so
the analytical results can be cross-checked in either formulation.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import SolverError
from repro.markov.chain import MarkovChain


def embedded_jump_matrix(chain: MarkovChain) -> np.ndarray:
    """Return the embedded jump-chain transition matrix.

    Row ``i`` gives the probability that the next jump out of state ``i``
    lands in each state.  Absorbing states (zero exit rate) get a self-loop
    probability of one.
    """
    q = chain.generator_matrix()
    n = chain.n_states
    p = np.zeros_like(q)
    for i in range(n):
        exit_rate = -q[i, i]
        if exit_rate <= 0.0:
            p[i, i] = 1.0
            continue
        for j in range(n):
            if i != j:
                p[i, j] = q[i, j] / exit_rate
    return p


def step_transition_matrix(chain: MarkovChain, step_hours: float = 1.0) -> np.ndarray:
    """Return the first-order discretisation ``P = I + Q * dt``.

    This matches the paper's figure annotations where each state keeps a
    self-loop probability ``R = 1 - sum(outgoing rates) * dt``.  The step must
    be small enough that all probabilities stay in ``[0, 1]``.
    """
    if step_hours <= 0.0:
        raise SolverError(f"step must be positive, got {step_hours!r}")
    q = chain.generator_matrix()
    p = np.eye(chain.n_states) + q * float(step_hours)
    if np.any(p < -1e-12) or np.any(p > 1.0 + 1e-12):
        raise SolverError(
            f"step {step_hours!r} h is too coarse for chain {chain.name!r}: "
            "discretised probabilities leave [0, 1]"
        )
    return np.clip(p, 0.0, 1.0)


def dtmc_stationary_distribution(p: np.ndarray, tol: float = 1e-13) -> np.ndarray:
    """Return the stationary distribution of a row-stochastic matrix.

    Solved as the null space of ``(P^T - I)`` with the normalisation row
    appended; falls back to eigen-decomposition if the direct solve is
    singular.
    """
    p = np.asarray(p, dtype=float)
    if p.ndim != 2 or p.shape[0] != p.shape[1]:
        raise SolverError("transition matrix must be square")
    row_sums = p.sum(axis=1)
    if np.any(np.abs(row_sums - 1.0) > 1e-8):
        raise SolverError("transition matrix rows must sum to one")
    n = p.shape[0]
    a = np.vstack([p.T - np.eye(n), np.ones((1, n))])
    b = np.zeros(n + 1)
    b[-1] = 1.0
    pi, *_ = np.linalg.lstsq(a, b, rcond=None)
    if np.any(pi < -1e-8):
        # Fall back to the dominant left eigenvector.
        values, vectors = np.linalg.eig(p.T)
        idx = int(np.argmin(np.abs(values - 1.0)))
        pi = np.real(vectors[:, idx])
    pi = np.clip(np.real(pi), 0.0, None)
    total = pi.sum()
    if total <= 0.0:
        raise SolverError("DTMC stationary distribution collapsed to zero")
    pi = pi / total
    residual = float(np.max(np.abs(pi @ p - pi)))
    if residual > 1e-6:
        raise SolverError(f"DTMC stationary residual {residual:.3e} too large")
    return pi


def steady_state_via_discretisation(
    chain: MarkovChain, step_hours: float = 1.0
) -> Dict[str, float]:
    """Return the CTMC stationary distribution via the step-discretised DTMC.

    For small steps the stationary distribution of ``I + Q dt`` equals that
    of the CTMC exactly (they share the same null space), so this provides an
    independent check of the continuous-time solvers and reproduces the
    paper's discrete-time presentation.
    """
    p = step_transition_matrix(chain, step_hours)
    pi = dtmc_stationary_distribution(p)
    return dict(zip(chain.state_names, pi.tolist()))


def n_step_distribution(
    p: np.ndarray, initial: np.ndarray, steps: int
) -> np.ndarray:
    """Return the distribution after ``steps`` applications of ``P``."""
    if steps < 0:
        raise SolverError("steps must be non-negative")
    vec = np.asarray(initial, dtype=float).copy()
    if vec.ndim != 1 or vec.size != p.shape[0]:
        raise SolverError("initial distribution has the wrong shape")
    if abs(float(vec.sum()) - 1.0) > 1e-8:
        raise SolverError("initial distribution must sum to one")
    for _ in range(int(steps)):
        vec = vec @ p
    return vec


def occupancy_fraction(
    chain: MarkovChain,
    step_hours: float,
    horizon_hours: float,
    initial_state: Optional[str] = None,
) -> Dict[str, float]:
    """Return the expected fraction of time spent in each state over a horizon.

    Computed by stepping the discretised DTMC and averaging the visited
    distributions — a cheap transient approximation used in tests to bound
    the exact uniformization results.
    """
    if horizon_hours <= 0.0:
        raise SolverError("horizon must be positive")
    p = step_transition_matrix(chain, step_hours)
    steps = max(int(round(horizon_hours / step_hours)), 1)
    vec = np.zeros(chain.n_states)
    vec[chain.index_of(initial_state or chain.state_names[0])] = 1.0
    acc = np.zeros_like(vec)
    for _ in range(steps):
        acc += vec
        vec = vec @ p
    acc /= steps
    return dict(zip(chain.state_names, acc.tolist()))
