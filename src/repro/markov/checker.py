"""Periodic check/repair cycle analysis for erasure-coded schemes.

The paper's RAID policies repair *continuously* — a technician reacts to
every failure, so the availability model is an ergodic CTMC and the
steady-state solvers in :mod:`repro.markov.solver` apply directly.  The
erasure-coded k-of-N family repairs on a *schedule*: shares decay between
checks (a pure-death CTMC over share counts), and every ``T`` hours a
checker inspects the share count and triggers repair below a threshold.
The right object is therefore not a generator matrix but a **cycle
operator**:

``M = expm(Q * T)``
    the share-count distribution transported across one check period, and
``D``
    the discrete check/repair matrix applied at the check instant
    (:func:`check_repair_matrix`).

One cycle maps a check-instant distribution ``phi`` to ``phi @ M @ D``.
The long-run behaviour is the fixed point ``phi = phi M D`` (the cycle-start
stationary distribution), and long-run availability is one minus the
expected fraction of a cycle spent in down states, computed *exactly* from
the occupancy integral ``OCC = integral_0^T expm(Q u) du`` — both blocks of
a single augmented matrix exponential (:func:`cycle_operator`), so no time
grid or quadrature error enters the default path.

``method="uniformization"`` provides an independent reference built from
:func:`repro.markov.transient.transient_distribution_uniformization`
(Jensen's method, the package's robust transient engine): ``M`` by
propagating each basis vector across the period and ``OCC`` by trapezoidal
integration over a fine grid.  The equivalence of the two methods is pinned
by the checker test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import linalg

from repro.exceptions import SolverError, StateError
from repro.markov.chain import MarkovChain
from repro.markov.transient import _trapezoid, transient_distribution_uniformization

#: Name of the absorbing data-down state of an erasure decay chain.
DOWN_STATE = "DOWN"

#: Residual tolerance of the cycle-stationary fixed-point solve.
_RESIDUAL_TOLERANCE = 1e-9


def share_state_name(n_live: int) -> str:
    """Return the state name of ``n_live`` surviving shares."""
    return f"SH{int(n_live)}"


@dataclass(frozen=True)
class CheckCycleResult:
    """Long-run behaviour of a periodic check/repair cycle.

    Attributes
    ----------
    availability:
        Long-run fraction of time spent in up states.
    cycle_start:
        Stationary distribution at the start of a cycle (just after a
        check), in chain state order.
    occupancy_hours:
        Expected hours per cycle spent in each state, in chain state order;
        sums to the check period.
    state_names:
        Column labels of the two vectors.
    """

    availability: float
    cycle_start: np.ndarray
    occupancy_hours: np.ndarray
    state_names: tuple


def check_repair_matrix(
    chain: MarkovChain,
    n_shares: int,
    k: int,
    repair_threshold: int,
    hep: float,
    restore_from_down: bool = True,
) -> np.ndarray:
    """Return the discrete check/repair matrix ``D`` of one check instant.

    Row ``i`` of ``D`` is the distribution the checker leaves behind when it
    finds the system in state ``i``:

    * ``s >= repair_threshold`` live shares — nothing to do, identity row;
    * ``k <= s < repair_threshold`` — repair back to ``N`` shares with
      probability ``1 - hep``; with probability ``hep`` the repair is
      botched by operator error and leaves ``N - 1`` shares (or the down
      state when ``N - 1 < k``);
    * the down state — the check discovers the outage and restores from
      backup with the same ``hep`` botch risk.  ``restore_from_down=False``
      leaves the down row as identity instead, turning the cycle into a
      *reliability* model (absorbing data loss) for survival curves.
    """
    n, k, threshold = int(n_shares), int(k), int(repair_threshold)
    if not 1 <= k <= threshold <= n:
        raise SolverError(
            f"check/repair needs 1 <= k <= repair_threshold <= N, got "
            f"k={k!r}, repair_threshold={threshold!r}, N={n!r}"
        )
    hep = float(hep)
    if not 0.0 <= hep <= 1.0:
        raise SolverError(f"hep must lie in [0, 1], got {hep!r}")
    d = np.eye(chain.n_states)
    full = chain.index_of(share_state_name(n))
    down = chain.index_of(DOWN_STATE)
    # A botched repair leaves N - 1 shares — the down state when k == N.
    botched = chain.index_of(share_state_name(n - 1)) if n - 1 >= k else down
    repaired_rows = [chain.index_of(share_state_name(s)) for s in range(k, threshold)]
    if restore_from_down:
        repaired_rows.append(down)
    for i in repaired_rows:
        d[i, :] = 0.0
        d[i, full] = 1.0 - hep
        d[i, botched] += hep
    return d


def cycle_operator(q: np.ndarray, period_hours: float):
    """Return ``(M, OCC)`` for one check period from a single ``expm``.

    ``M = expm(Q T)`` transports a distribution across the period and
    ``OCC = integral_0^T expm(Q u) du`` is the exact occupancy integral
    (``(phi @ OCC)[j]`` is the expected hours spent in state ``j`` over a
    period started from ``phi``).  Both come out of one exponential of the
    augmented block matrix ``[[Q, I], [0, 0]]`` — its upper-left block is
    ``M`` and its upper-right block is ``OCC``.
    """
    period = float(period_hours)
    if period <= 0.0:
        raise SolverError(f"check period must be positive, got {period_hours!r}")
    q = np.asarray(q, dtype=float)
    n = q.shape[0]
    if q.shape != (n, n):
        raise SolverError(f"generator must be square, got shape {q.shape!r}")
    augmented = np.zeros((2 * n, 2 * n))
    augmented[:n, :n] = q
    augmented[:n, n:] = np.eye(n)
    exp = linalg.expm(augmented * period)
    return exp[:n, :n], exp[:n, n:]


def cycle_start_distribution(cycle_matrix: np.ndarray) -> np.ndarray:
    """Solve the fixed point ``phi = phi @ cycle_matrix``, ``phi . 1 = 1``.

    ``cycle_matrix`` is the full-cycle stochastic matrix ``M @ D``.  The
    dense solve replaces one equation of the rank-deficient system with the
    normalisation row; the result is clipped to ``[0, 1]``, renormalised,
    and checked against the fixed-point residual.
    """
    matrix = np.asarray(cycle_matrix, dtype=float)
    n = matrix.shape[0]
    a = matrix.T - np.eye(n)
    a[-1, :] = 1.0
    b = np.zeros(n)
    b[-1] = 1.0
    try:
        phi = np.linalg.solve(a, b)
    except np.linalg.LinAlgError as exc:
        raise SolverError(f"cycle-stationary solve failed: {exc}") from None
    phi = np.clip(phi, 0.0, 1.0)
    total = phi.sum()
    if total <= 0.0:
        raise SolverError("cycle-stationary solve produced a zero distribution")
    phi = phi / total
    residual = float(np.max(np.abs(phi @ matrix - phi)))
    if residual > _RESIDUAL_TOLERANCE:
        raise SolverError(
            f"cycle-stationary fixed point residual {residual:.3e} exceeds "
            f"{_RESIDUAL_TOLERANCE:.0e}"
        )
    return phi


def _uniformized_operator(chain: MarkovChain, period_hours: float, n_grid: int = 201):
    """Build ``(M, OCC)`` from the uniformization transient engine.

    The reference path for :func:`cycle_operator`: each basis vector is
    propagated across ``[0, T]`` by Jensen uniformization; the final row
    gives that row of ``M`` and trapezoidal integration over the grid gives
    the corresponding row of ``OCC`` (quadrature-accurate, unlike the exact
    augmented-``expm`` default — which is why the default is the default).
    """
    times = np.linspace(0.0, float(period_hours), int(n_grid))
    size = chain.n_states
    m = np.empty((size, size))
    occ = np.empty((size, size))
    for i, name in enumerate(chain.state_names):
        result = transient_distribution_uniformization(chain, times, initial_state=name)
        m[i] = result.probabilities[-1]
        occ[i] = _trapezoid(result.probabilities, times, axis=0)
    return m, occ


def cycle_stationary_availability(
    chain: MarkovChain,
    repair: np.ndarray,
    period_hours: float,
    method: str = "expm",
) -> CheckCycleResult:
    """Return long-run availability under a periodic check/repair cycle.

    ``chain`` is the between-checks decay CTMC (down states absorbing until
    the next check), ``repair`` the check-instant matrix from
    :func:`check_repair_matrix`, and ``period_hours`` the check period.
    ``method="expm"`` (default) uses the exact augmented matrix
    exponential; ``method="uniformization"`` rebuilds both operators from
    the transient uniformization engine as an independent cross-check.
    """
    repair = np.asarray(repair, dtype=float)
    size = chain.n_states
    if repair.shape != (size, size):
        raise SolverError(
            f"repair matrix shape {repair.shape!r} does not match "
            f"{size} chain states"
        )
    if method == "expm":
        m, occ = cycle_operator(chain.generator_matrix(), period_hours)
    elif method == "uniformization":
        m, occ = _uniformized_operator(chain, period_hours)
    else:
        raise SolverError(f"unknown checker method {method!r}")
    phi = cycle_start_distribution(m @ repair)
    occupancy = phi @ occ
    down_mask = ~chain.up_mask()
    availability = 1.0 - float(occupancy[down_mask].sum()) / float(period_hours)
    return CheckCycleResult(
        availability=float(min(max(availability, 0.0), 1.0)),
        cycle_start=phi,
        occupancy_hours=occupancy,
        state_names=chain.state_names,
    )


def survival_curve(
    chain: MarkovChain,
    repair: np.ndarray,
    period_hours: float,
    n_cycles: int,
    initial_state: Optional[str] = None,
) -> np.ndarray:
    """Return the survival probability at the end of each check cycle.

    Iterates ``p <- p @ M @ D`` from the given start state (the full-shares
    state by default) and records ``1 - P(down)`` after each cycle's check.
    With a ``restore_from_down=False`` repair matrix the down state is
    absorbing and the curve is the tahoe-style reliability trajectory
    ("probability the file is still recoverable after j check periods").
    """
    if int(n_cycles) < 1:
        raise SolverError(f"survival curve needs at least one cycle, got {n_cycles!r}")
    m, _ = cycle_operator(chain.generator_matrix(), period_hours)
    cycle_matrix = m @ np.asarray(repair, dtype=float)
    start = initial_state
    if start is None:
        up_names = chain.up_states()
        if not up_names:
            raise StateError("survival curve requires at least one up state")
        start = up_names[0]
    p = np.zeros(chain.n_states)
    p[chain.index_of(start)] = 1.0
    down_mask = ~chain.up_mask()
    curve = np.empty(int(n_cycles))
    for j in range(int(n_cycles)):
        p = p @ cycle_matrix
        curve[j] = 1.0 - float(p[down_mask].sum())
    return np.clip(curve, 0.0, 1.0)
