"""Structural validation of Markov chains.

The availability chains built from the paper's figures are small but easy to
get wrong when transcribing: a missing repair edge silently produces an
absorbing down state and an availability of zero.  These checks catch such
transcription errors early.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

import networkx as nx
import numpy as np

from repro.exceptions import MarkovChainError
from repro.markov.chain import MarkovChain


@dataclass
class ValidationReport:
    """Outcome of structural validation.

    Attributes
    ----------
    ok:
        ``True`` when no error-level issue was found.
    errors:
        Problems that make steady-state availability analysis meaningless
        (e.g. unreachable states, unintended absorbing states).
    warnings:
        Suspicious but legal structure (e.g. states with no outgoing edges
        in a chain explicitly allowed to have absorbing states).
    """

    ok: bool = True
    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    def add_error(self, message: str) -> None:
        """Record an error and mark the report as failed."""
        self.errors.append(message)
        self.ok = False

    def add_warning(self, message: str) -> None:
        """Record a warning without failing the report."""
        self.warnings.append(message)


def to_networkx(chain: MarkovChain) -> "nx.DiGraph":
    """Return the chain's directed graph (positive-rate edges only)."""
    graph = nx.DiGraph()
    for state in chain.states:
        graph.add_node(state.name, up=state.up)
    for transition in chain.transitions:
        if transition.rate > 0.0:
            if graph.has_edge(transition.source, transition.target):
                graph[transition.source][transition.target]["rate"] += transition.rate
            else:
                graph.add_edge(transition.source, transition.target, rate=transition.rate)
    return graph


def check_reachability(chain: MarkovChain, from_state: str = "") -> Tuple[Set[str], Set[str]]:
    """Return ``(reachable, unreachable)`` state-name sets.

    Reachability is computed from ``from_state`` (default: the first declared
    state, which by convention is the fully-operational state).
    """
    graph = to_networkx(chain)
    start = from_state or chain.state_names[0]
    chain.index_of(start)
    reachable = set(nx.descendants(graph, start)) | {start}
    unreachable = set(chain.state_names) - reachable
    return reachable, unreachable


def find_absorbing_states(chain: MarkovChain) -> List[str]:
    """Return states with no outgoing positive-rate transition."""
    absorbing = []
    for state in chain.states:
        if chain.exit_rate(state.name) <= 0.0:
            absorbing.append(state.name)
    return absorbing


def is_irreducible(chain: MarkovChain) -> bool:
    """Return whether the positive-rate graph is strongly connected."""
    graph = to_networkx(chain)
    if graph.number_of_nodes() <= 1:
        return True
    return nx.is_strongly_connected(graph)

def generator_row_sums(chain: MarkovChain) -> np.ndarray:
    """Return the row sums of the generator matrix (should all be ~0)."""
    return chain.generator_matrix().sum(axis=1)


def validate_chain(
    chain: MarkovChain,
    allow_absorbing: bool = False,
    raise_on_error: bool = True,
) -> ValidationReport:
    """Run all structural checks and return a :class:`ValidationReport`.

    Parameters
    ----------
    chain:
        Chain to validate.
    allow_absorbing:
        Reliability models (MTTDL analysis) intentionally contain absorbing
        failure states; pass ``True`` to downgrade absorbing-state findings
        to warnings.
    raise_on_error:
        When ``True`` (default) a failed report raises
        :class:`~repro.exceptions.MarkovChainError`.
    """
    report = ValidationReport()

    # Generator rows must sum to zero by construction; a violation indicates
    # numerical overflow from absurd rate magnitudes.
    row_sums = generator_row_sums(chain)
    worst = float(np.max(np.abs(row_sums))) if row_sums.size else 0.0
    scale = max(1.0, float(np.max(np.abs(chain.generator_matrix()))))
    if worst > 1e-9 * scale:
        report.add_error(f"generator rows do not sum to zero (worst residual {worst:.3e})")

    # Unreachable states are almost always transcription bugs.
    _, unreachable = check_reachability(chain)
    if unreachable:
        report.add_error(
            f"states unreachable from {chain.state_names[0]!r}: {sorted(unreachable)}"
        )

    # Absorbing states make long-run availability trivially 0 or 1.
    absorbing = find_absorbing_states(chain)
    if absorbing:
        message = f"absorbing states present: {absorbing}"
        if allow_absorbing:
            report.add_warning(message)
        else:
            report.add_error(message)

    # An availability chain should have at least one up and one down state;
    # otherwise availability is identically one or zero.
    if not chain.up_states():
        report.add_warning("chain has no up states; availability is identically zero")
    if not chain.down_states():
        report.add_warning("chain has no down states; availability is identically one")

    if not report.ok and raise_on_error:
        raise MarkovChainError(
            f"chain {chain.name!r} failed validation: " + "; ".join(report.errors)
        )
    return report
