"""Availability and reliability metrics derived from a Markov chain.

These helpers translate a stationary distribution into the quantities the
paper reports: steady-state availability, "number of nines", downtime per
year, and MTTDL-style mean times to failure obtained by making the down
states absorbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.availability.metrics import (
    HOURS_PER_YEAR,
    availability_to_nines,
    downtime_hours_per_year,
)
from repro.exceptions import MarkovChainError
from repro.markov.chain import MarkovChain
from repro.markov.solver import mean_time_to_absorption, solve_steady_state


@dataclass(frozen=True)
class AvailabilityResult:
    """Summary of a steady-state availability analysis.

    Attributes
    ----------
    availability:
        Long-run probability of being in an up state, in ``[0, 1]``.
    unavailability:
        ``1 - availability``.
    nines:
        ``-log10(unavailability)`` (infinite when unavailability is zero).
    downtime_hours_per_year:
        Expected downtime accumulated per year of operation.
    state_probabilities:
        Full stationary distribution keyed by state name.
    up_states / down_states:
        The partition used to compute availability.
    """

    availability: float
    unavailability: float
    nines: float
    downtime_hours_per_year: float
    state_probabilities: Dict[str, float]
    up_states: tuple
    down_states: tuple

    def probability_of(self, state: str) -> float:
        """Return the stationary probability of one state."""
        try:
            return self.state_probabilities[state]
        except KeyError:
            raise MarkovChainError(f"unknown state {state!r}") from None

    def downtime_minutes_per_year(self) -> float:
        """Return the expected downtime in minutes per year."""
        return self.downtime_hours_per_year * 60.0

    def as_dict(self) -> Dict[str, object]:
        """Return a JSON-serialisable summary."""
        return {
            "availability": self.availability,
            "unavailability": self.unavailability,
            "nines": self.nines,
            "downtime_hours_per_year": self.downtime_hours_per_year,
            "state_probabilities": dict(self.state_probabilities),
            "up_states": list(self.up_states),
            "down_states": list(self.down_states),
        }


def availability_from_up_mass(up_mass: Iterable[float]) -> Tuple[float, float, float]:
    """Reduce up-state probability terms to ``(availability, unavailability, nines)``.

    This is the single place the paper's availability summary arithmetic
    lives: :func:`availability_result_from_pi` (and through it
    :func:`steady_state_availability` and the template evaluation path) and
    the sweep engine's per-point summary all reduce their stationary mass
    here, so every route clips and converts identically.
    """
    availability = float(sum(up_mass))
    availability = min(max(availability, 0.0), 1.0)
    return availability, 1.0 - availability, availability_to_nines(availability)


def availability_result_from_pi(
    pi: Mapping[str, float],
    state_names: Sequence[str],
    up_states: Sequence[str],
) -> AvailabilityResult:
    """Summarise a precomputed stationary distribution.

    :func:`steady_state_availability` and the parameterized-template
    evaluation path (:mod:`repro.core.evaluation`) both feed their ``pi``
    through here, so the two routes are arithmetic-for-arithmetic identical.
    """
    ups = tuple(up_states)
    downs = tuple(name for name in state_names if name not in ups)
    availability, unavailability, nines = availability_from_up_mass(
        pi[name] for name in ups
    )
    return AvailabilityResult(
        availability=availability,
        unavailability=unavailability,
        nines=nines,
        downtime_hours_per_year=downtime_hours_per_year(availability),
        state_probabilities=dict(pi),
        up_states=ups,
        down_states=downs,
    )


def steady_state_availability(
    chain: MarkovChain,
    method: str = "dense",
    up_states: Optional[Sequence[str]] = None,
    pi: Optional[Mapping[str, float]] = None,
) -> AvailabilityResult:
    """Solve the chain and summarise its steady-state availability.

    Parameters
    ----------
    chain:
        The availability model.
    method:
        Steady-state solver passed to :func:`repro.markov.solver.solve_steady_state`.
    up_states:
        Override of the up-state set; defaults to the states flagged
        ``up=True`` on the chain.
    pi:
        Optional precomputed stationary distribution keyed by state name.
        Passing it skips the solve, so one solve can serve this summary,
        :func:`expected_visits_per_year` and :func:`state_occupancy_report`.
    """
    if pi is None:
        pi = solve_steady_state(chain, method=method)
    if up_states is None:
        ups = chain.up_states()
    else:
        for name in up_states:
            chain.index_of(name)
        ups = tuple(up_states)
    return availability_result_from_pi(pi, chain.state_names, ups)


def mean_time_to_failure(
    chain: MarkovChain,
    failure_states: Optional[Sequence[str]] = None,
    start_state: Optional[str] = None,
) -> float:
    """Return the mean first-passage time (hours) into the failure states.

    The chain is copied with the failure states made absorbing, then the
    standard fundamental-matrix argument gives the expected absorption time.
    For the storage models this is the MTTDL when the failure set is the
    data-loss states, or the mean time to first unavailability when it also
    includes the human-error DU states.
    """
    failures = list(failure_states) if failure_states is not None else list(chain.down_states())
    if not failures:
        raise MarkovChainError("mean_time_to_failure requires at least one failure state")
    absorbing_chain = chain.with_states_absorbing(failures)
    return mean_time_to_absorption(absorbing_chain, failures, start_state)


def expected_visits_per_year(
    chain: MarkovChain,
    target_state: str,
    method: str = "dense",
    pi: Optional[Mapping[str, float]] = None,
) -> float:
    """Return the long-run frequency (visits/year) of entering ``target_state``.

    The entry frequency equals the stationary probability flow into the
    state: ``sum_{s != target} pi_s * rate(s -> target)``.  Useful for
    reporting how often operators are summoned (entries into the exposed
    state) or how often tape recoveries happen (entries into DL).  A
    precomputed ``pi`` skips the solve (see :func:`steady_state_availability`).
    """
    if pi is None:
        pi = solve_steady_state(chain, method=method)
    chain.index_of(target_state)
    flow_per_hour = 0.0
    for source, rate in chain.predecessors(target_state).items():
        flow_per_hour += pi[source] * rate
    return flow_per_hour * HOURS_PER_YEAR


def state_occupancy_report(
    chain: MarkovChain,
    method: str = "dense",
    pi: Optional[Mapping[str, float]] = None,
) -> Dict[str, Mapping[str, float]]:
    """Return per-state stationary probability and annual residence hours.

    A precomputed ``pi`` skips the solve, so one
    :func:`repro.markov.solver.solve_steady_state` call can serve this
    report, :func:`steady_state_availability` and
    :func:`expected_visits_per_year`.
    """
    if pi is None:
        pi = solve_steady_state(chain, method=method)
    report: Dict[str, Mapping[str, float]] = {}
    for state in chain.states:
        probability = pi[state.name]
        report[state.name] = {
            "probability": probability,
            "hours_per_year": probability * HOURS_PER_YEAR,
            "up": float(state.up),
        }
    return report


def compare_availability(
    baseline: AvailabilityResult, variant: AvailabilityResult
) -> Dict[str, float]:
    """Return ratios describing how ``variant`` differs from ``baseline``.

    ``unavailability_ratio`` is the factor by which the variant's
    unavailability exceeds the baseline's — the quantity behind the paper's
    "263X underestimation" headline.
    """
    unavail_base = max(baseline.unavailability, 1e-300)
    unavail_var = max(variant.unavailability, 1e-300)
    return {
        "availability_delta": variant.availability - baseline.availability,
        "nines_delta": variant.nines - baseline.nines,
        "unavailability_ratio": unavail_var / unavail_base,
        "downtime_ratio": (
            variant.downtime_hours_per_year / baseline.downtime_hours_per_year
            if baseline.downtime_hours_per_year > 0.0
            else float("inf")
        ),
    }
