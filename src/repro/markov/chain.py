"""Continuous-time Markov chain (CTMC) representation.

A :class:`MarkovChain` is a set of named states plus transition *rates*
(per hour) between them.  The chain owns its infinitesimal generator matrix
``Q`` where ``Q[i, j]`` is the rate from state ``i`` to state ``j`` for
``i != j`` and ``Q[i, i] = -sum_j Q[i, j]``.

States may carry arbitrary metadata; the availability models tag each state
with ``up=True/False`` so that steady-state availability is simply the
probability mass on up states (see :mod:`repro.markov.metrics`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import StateError, TransitionError


@dataclass(frozen=True)
class State:
    """A named CTMC state.

    Attributes
    ----------
    name:
        Unique state identifier, e.g. ``"OP"`` or ``"EXPns1"``.
    up:
        ``True`` when the storage system is available (serving data) while
        in this state.
    description:
        Optional human-readable explanation used in reports.
    tags:
        Optional free-form labels (``"exposed"``, ``"data-loss"`` ...).
    """

    name: str
    up: bool = True
    description: str = ""
    tags: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise StateError(f"state name must be a non-empty string, got {self.name!r}")


@dataclass(frozen=True)
class Transition:
    """A directed transition between two CTMC states.

    Attributes
    ----------
    source, target:
        State names.  Self loops are rejected: they are meaningless in a
        CTMC (they cancel inside the generator) and usually indicate a
        modelling mistake when translating a discrete-time diagram.
    rate:
        Transition rate in events per hour; must be non-negative and finite.
    label:
        Optional symbolic label, e.g. ``"n*lambda"`` or ``"hep*mu_df"``,
        carried through to reports and DOT export.
    """

    source: str
    target: str
    rate: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise TransitionError(
                f"self loop on state {self.source!r} is not allowed in a CTMC"
            )
        if not math.isfinite(self.rate) or self.rate < 0.0:
            raise TransitionError(
                f"transition {self.source!r}->{self.target!r} has invalid rate {self.rate!r}"
            )


class MarkovChain:
    """A continuous-time Markov chain over named states.

    Parameters
    ----------
    states:
        Iterable of :class:`State`.  Names must be unique.
    transitions:
        Iterable of :class:`Transition`.  Multiple transitions between the
        same pair of states are summed into a single rate.
    name:
        Optional model name used in reports.
    """

    def __init__(
        self,
        states: Iterable[State],
        transitions: Iterable[Transition] = (),
        name: str = "markov-chain",
    ) -> None:
        self._name = str(name)
        self._states: List[State] = []
        self._index: Dict[str, int] = {}
        for state in states:
            if state.name in self._index:
                raise StateError(f"duplicate state name {state.name!r}")
            self._index[state.name] = len(self._states)
            self._states.append(state)
        if not self._states:
            raise StateError("a Markov chain requires at least one state")
        self._transitions: List[Transition] = []
        for transition in transitions:
            self._check_transition(transition)
            self._transitions.append(transition)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Return the model name."""
        return self._name

    @property
    def states(self) -> Tuple[State, ...]:
        """Return the states in index order."""
        return tuple(self._states)

    @property
    def state_names(self) -> Tuple[str, ...]:
        """Return the state names in index order."""
        return tuple(state.name for state in self._states)

    @property
    def transitions(self) -> Tuple[Transition, ...]:
        """Return all transitions (as declared, duplicates not merged)."""
        return tuple(self._transitions)

    @property
    def n_states(self) -> int:
        """Return the number of states."""
        return len(self._states)

    def state(self, name: str) -> State:
        """Return the state with the given name."""
        return self._states[self.index_of(name)]

    def index_of(self, name: str) -> int:
        """Return the matrix index of state ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise StateError(
                f"unknown state {name!r}; known states: {sorted(self._index)}"
            ) from None

    def has_state(self, name: str) -> bool:
        """Return whether a state with the given name exists."""
        return name in self._index

    def up_states(self) -> Tuple[str, ...]:
        """Return the names of all states flagged as up (available)."""
        return tuple(state.name for state in self._states if state.up)

    def down_states(self) -> Tuple[str, ...]:
        """Return the names of all states flagged as down (unavailable)."""
        return tuple(state.name for state in self._states if not state.up)

    def rate(self, source: str, target: str) -> float:
        """Return the total rate from ``source`` to ``target`` (0 if absent)."""
        i, j = self.index_of(source), self.index_of(target)
        total = 0.0
        for transition in self._transitions:
            if self._index[transition.source] == i and self._index[transition.target] == j:
                total += transition.rate
        return total

    def exit_rate(self, source: str) -> float:
        """Return the total rate at which the chain leaves ``source``."""
        i = self.index_of(source)
        return float(sum(
            t.rate for t in self._transitions if self._index[t.source] == i
        ))

    def successors(self, source: str) -> Dict[str, float]:
        """Return a mapping of reachable states to total transition rates."""
        i = self.index_of(source)
        out: Dict[str, float] = {}
        for transition in self._transitions:
            if self._index[transition.source] == i and transition.rate > 0.0:
                out[transition.target] = out.get(transition.target, 0.0) + transition.rate
        return out

    def predecessors(self, target: str) -> Dict[str, float]:
        """Return a mapping of states with an edge into ``target`` to rates."""
        j = self.index_of(target)
        out: Dict[str, float] = {}
        for transition in self._transitions:
            if self._index[transition.target] == j and transition.rate > 0.0:
                out[transition.source] = out.get(transition.source, 0.0) + transition.rate
        return out

    def __iter__(self) -> Iterator[State]:
        return iter(self._states)

    def __len__(self) -> int:
        return len(self._states)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MarkovChain(name={self._name!r}, states={self.n_states}, "
            f"transitions={len(self._transitions)})"
        )

    # ------------------------------------------------------------------
    # Matrices
    # ------------------------------------------------------------------
    def generator_matrix(self) -> np.ndarray:
        """Return the infinitesimal generator ``Q`` as a dense array.

        ``Q[i, j]`` for ``i != j`` is the rate from ``i`` to ``j``; diagonal
        entries are the negated row sums so every row sums to zero.
        """
        n = self.n_states
        q = np.zeros((n, n), dtype=float)
        for transition in self._transitions:
            i = self._index[transition.source]
            j = self._index[transition.target]
            q[i, j] += transition.rate
        np.fill_diagonal(q, 0.0)
        q[np.diag_indices_from(q)] = -q.sum(axis=1)
        return q

    def rate_matrix(self) -> np.ndarray:
        """Return the off-diagonal rate matrix (no negative diagonal)."""
        q = self.generator_matrix()
        np.fill_diagonal(q, 0.0)
        return q

    def uniformized_dtmc(self, uniformization_rate: Optional[float] = None) -> Tuple[np.ndarray, float]:
        """Return ``(P, Lambda)`` for the uniformized discrete-time chain.

        ``P = I + Q / Lambda`` where ``Lambda`` is at least the largest exit
        rate.  The stationary distribution of ``P`` equals that of the CTMC.
        """
        q = self.generator_matrix()
        max_exit = float(np.max(-np.diag(q))) if self.n_states > 0 else 0.0
        lam = uniformization_rate if uniformization_rate is not None else max_exit * 1.02
        if lam <= 0.0:
            # Chain with no transitions at all: identity is a valid DTMC.
            return np.eye(self.n_states), 1.0
        if lam < max_exit:
            raise TransitionError(
                f"uniformization rate {lam!r} is below the maximum exit rate {max_exit!r}"
            )
        p = np.eye(self.n_states) + q / lam
        return p, lam

    def up_mask(self) -> np.ndarray:
        """Return a boolean vector flagging up states in index order."""
        return np.array([state.up for state in self._states], dtype=bool)

    # ------------------------------------------------------------------
    # Derived chains
    # ------------------------------------------------------------------
    def with_states_absorbing(self, names: Sequence[str]) -> "MarkovChain":
        """Return a copy where all transitions out of ``names`` are removed.

        Making down states absorbing converts an availability model into a
        reliability model: the mean time to absorption from the operational
        state is then the MTTDL / MTTF.
        """
        absorbing = set(names)
        for name in absorbing:
            self.index_of(name)  # validate
        kept = [t for t in self._transitions if t.source not in absorbing]
        return MarkovChain(self._states, kept, name=f"{self._name}-absorbing")

    def relabelled(self, mapping: Mapping[str, str]) -> "MarkovChain":
        """Return a copy with states renamed according to ``mapping``.

        States not present in the mapping keep their names.  The mapping must
        not merge two states into one.
        """
        new_names = [mapping.get(s.name, s.name) for s in self._states]
        if len(set(new_names)) != len(new_names):
            raise StateError(f"relabelling {dict(mapping)!r} merges states")
        states = [
            State(name=new, up=s.up, description=s.description, tags=s.tags)
            for new, s in zip(new_names, self._states)
        ]
        transitions = [
            Transition(
                source=mapping.get(t.source, t.source),
                target=mapping.get(t.target, t.target),
                rate=t.rate,
                label=t.label,
            )
            for t in self._transitions
        ]
        return MarkovChain(states, transitions, name=self._name)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dot(self) -> str:
        """Return a Graphviz DOT description of the chain.

        Up states are drawn as ellipses, down states as shaded boxes.  This
        mirrors the figures in the paper and is handy for eyeballing the
        reconstructed automatic fail-over model.
        """
        lines = [f'digraph "{self._name}" {{', "  rankdir=LR;"]
        for state in self._states:
            shape = "ellipse" if state.up else "box"
            style = "" if state.up else ', style=filled, fillcolor="#f2c9c9"'
            lines.append(f'  "{state.name}" [shape={shape}{style}];')
        for transition in self._transitions:
            if transition.rate <= 0.0:
                continue
            label = transition.label or f"{transition.rate:.3g}"
            lines.append(
                f'  "{transition.source}" -> "{transition.target}" [label="{label}"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-serialisable description of the chain."""
        return {
            "name": self._name,
            "states": [
                {
                    "name": s.name,
                    "up": s.up,
                    "description": s.description,
                    "tags": list(s.tags),
                }
                for s in self._states
            ],
            "transitions": [
                {
                    "source": t.source,
                    "target": t.target,
                    "rate": t.rate,
                    "label": t.label,
                }
                for t in self._transitions
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "MarkovChain":
        """Rebuild a chain from :meth:`to_dict` output."""
        states = [
            State(
                name=str(s["name"]),
                up=bool(s.get("up", True)),
                description=str(s.get("description", "")),
                tags=tuple(s.get("tags", ())),
            )
            for s in payload.get("states", [])  # type: ignore[union-attr]
        ]
        transitions = [
            Transition(
                source=str(t["source"]),
                target=str(t["target"]),
                rate=float(t["rate"]),
                label=str(t.get("label", "")),
            )
            for t in payload.get("transitions", [])  # type: ignore[union-attr]
        ]
        return cls(states, transitions, name=str(payload.get("name", "markov-chain")))

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _check_transition(self, transition: Transition) -> None:
        if transition.source not in self._index:
            raise StateError(f"transition source {transition.source!r} is not a state")
        if transition.target not in self._index:
            raise StateError(f"transition target {transition.target!r} is not a state")
