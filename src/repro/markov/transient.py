"""Transient (time-dependent) analysis of continuous-time Markov chains.

Steady-state availability is the paper's headline metric, but transient
analysis answers the operational questions a storage administrator actually
asks: "what is the probability my array is down at the end of the first
year?", "what is the expected downtime accumulated over a five-year service
life?".  Two methods are provided:

* matrix exponential (``scipy.linalg.expm``) — exact up to floating point,
  fine for the small chains in this package;
* uniformization (Jensen's method) — numerically robust truncated Poisson
  mixture of DTMC powers, with an explicit error bound.

Both methods share their expensive pieces across the whole time grid
instead of recomputing them per point: a **uniform** grid computes
``expm(Q * dt)`` once and propagates by repeated vector-matrix products
(the semigroup property ``p(t + dt) = p(t) expm(Q dt)``), and
uniformization grows one truncated DTMC power sequence ``p0 @ P^k`` that
every grid time reuses — see ``benchmarks/bench_markov_solvers.py`` for the
resulting speedups.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np
from scipy import linalg

from repro.exceptions import SolverError
from repro.markov.chain import MarkovChain

#: Trapezoidal integration helper; ``numpy.trapz`` was renamed in NumPy 2.0.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz


@dataclass(frozen=True)
class TransientResult:
    """State probabilities over a time grid.

    Attributes
    ----------
    times:
        Time grid in hours.
    probabilities:
        Array of shape ``(len(times), n_states)``; row ``k`` is the state
        distribution at ``times[k]``.
    state_names:
        Column labels for ``probabilities``.
    """

    times: np.ndarray
    probabilities: np.ndarray
    state_names: tuple

    def probability_of(self, state: str) -> np.ndarray:
        """Return the probability trajectory of a single state."""
        try:
            idx = self.state_names.index(state)
        except ValueError:
            raise SolverError(f"unknown state {state!r}") from None
        return self.probabilities[:, idx]

    def availability(self, up_mask: Sequence[bool]) -> np.ndarray:
        """Return point availability over time given an up-state mask."""
        mask = np.asarray(list(up_mask), dtype=bool)
        if mask.size != self.probabilities.shape[1]:
            raise SolverError("up mask length does not match the number of states")
        return self.probabilities[:, mask].sum(axis=1)

    def expected_downtime_hours(self, up_mask: Sequence[bool]) -> float:
        """Return expected cumulative downtime over the grid (trapezoidal)."""
        avail = self.availability(up_mask)
        unavail = 1.0 - avail
        return float(_trapezoid(unavail, self.times))


def _initial_vector(chain: MarkovChain, initial_state: Optional[str]) -> np.ndarray:
    p0 = np.zeros(chain.n_states)
    start = initial_state or chain.state_names[0]
    p0[chain.index_of(start)] = 1.0
    return p0


def _is_uniform_grid(times_arr: np.ndarray) -> bool:
    """Return whether the grid has a constant positive spacing."""
    if times_arr.size < 2:
        return False
    steps = np.diff(times_arr)
    if steps[0] <= 0.0:
        return False
    return bool(np.allclose(steps, steps[0], rtol=1e-9, atol=0.0))


def transient_distribution_expm(
    chain: MarkovChain,
    times: Sequence[float],
    initial_state: Optional[str] = None,
    uniform_grid: Optional[bool] = None,
) -> TransientResult:
    """Compute ``p(t) = p(0) expm(Q t)`` on a grid of times (hours).

    On a uniformly spaced grid the matrix exponential is computed **once**
    for the step ``dt`` and the distribution is propagated by repeated
    vector-matrix products (``p(t + dt) = p(t) expm(Q dt)``), instead of
    re-running ``scipy.linalg.expm`` per grid time.  ``uniform_grid=None``
    auto-detects the spacing; pass ``False`` to force the per-time
    reference path (used by the benchmarks and equivalence tests).
    """
    times_arr = np.asarray(list(times), dtype=float)
    if times_arr.size == 0:
        raise SolverError("transient analysis requires at least one time point")
    if np.any(times_arr < 0.0):
        raise SolverError("transient analysis times must be non-negative")
    q = chain.generator_matrix()
    p0 = _initial_vector(chain, initial_state)
    rows = np.empty((times_arr.size, chain.n_states))
    if uniform_grid is None:
        uniform_grid = _is_uniform_grid(times_arr)
    if uniform_grid and not _is_uniform_grid(times_arr):
        raise SolverError("uniform_grid=True requires a uniformly spaced time grid")
    if uniform_grid:
        transfer = linalg.expm(q * float(times_arr[1] - times_arr[0]))
        vec = p0 if times_arr[0] == 0.0 else p0 @ linalg.expm(q * times_arr[0])
        rows[0] = vec
        for k in range(1, times_arr.size):
            vec = vec @ transfer
            rows[k] = vec
    else:
        for k, t in enumerate(times_arr):
            rows[k] = p0 @ linalg.expm(q * t)
    rows = np.clip(rows, 0.0, 1.0)
    rows = rows / rows.sum(axis=1, keepdims=True)
    return TransientResult(times=times_arr, probabilities=rows, state_names=chain.state_names)


def transient_distribution_uniformization(
    chain: MarkovChain,
    times: Sequence[float],
    initial_state: Optional[str] = None,
    tolerance: float = 1e-12,
    max_terms: int = 100_000,
) -> TransientResult:
    """Jensen uniformization: ``p(t) = sum_k Pois(k; Lambda t) p(0) P^k``.

    The Poisson series is truncated once the accumulated mass exceeds
    ``1 - tolerance``, giving an explicit bound on the truncation error.
    The truncated DTMC power sequence ``p0 @ P^k`` is built once and shared
    by every grid time (the vectors do not depend on ``t``, only the
    Poisson weights do), so each power is one vector-matrix product for the
    whole grid instead of one per time.
    """
    times_arr = np.asarray(list(times), dtype=float)
    if times_arr.size == 0:
        raise SolverError("transient analysis requires at least one time point")
    if np.any(times_arr < 0.0):
        raise SolverError("transient analysis times must be non-negative")
    p_matrix, lam = chain.uniformized_dtmc()
    p0 = _initial_vector(chain, initial_state)
    rows = np.empty((times_arr.size, chain.n_states))
    # Shared power sequence: powers[k] is p0 @ P^k, grown on demand by the
    # largest truncation point any time in the grid needs.
    powers = [p0]

    def _power(k: int) -> np.ndarray:
        while len(powers) <= k:
            powers.append(powers[-1] @ p_matrix)
        return powers[k]

    for idx, t in enumerate(times_arr):
        if t == 0.0 or lam == 0.0:
            rows[idx] = p0
            continue
        rate = lam * t
        # Poisson weights computed iteratively in log space for stability.
        log_weight = -rate  # log P(N = 0)
        weight = math.exp(log_weight)
        acc = weight * p0
        cumulative = weight
        k = 0
        while cumulative < 1.0 - tolerance:
            k += 1
            if k > max_terms:
                raise SolverError(
                    f"uniformization did not converge within {max_terms} terms "
                    f"(Lambda*t = {rate:.3e})"
                )
            log_weight += math.log(rate) - math.log(k)
            weight = math.exp(log_weight)
            acc = acc + weight * _power(k)
            cumulative += weight
            # Right-truncation guard: past the Poisson mode the weights decay
            # at least geometrically with ratio rate / (k + 1), so the whole
            # remaining tail is bounded by weight * q / (1 - q).  Rounding in
            # the accumulated ``cumulative`` can leave it stranded a few ulps
            # below 1 - tolerance, which would otherwise loop to max_terms.
            if k + 1 > rate:
                ratio = rate / (k + 1)
                if weight * ratio / (1.0 - ratio) < tolerance:
                    break
        rows[idx] = acc / cumulative
    rows = np.clip(rows, 0.0, 1.0)
    rows = rows / rows.sum(axis=1, keepdims=True)
    return TransientResult(times=times_arr, probabilities=rows, state_names=chain.state_names)


def point_availability(
    chain: MarkovChain,
    times: Sequence[float],
    initial_state: Optional[str] = None,
    method: str = "uniformization",
) -> Dict[str, np.ndarray]:
    """Return ``{"times", "availability"}`` for the chain's up states."""
    if method == "expm":
        result = transient_distribution_expm(chain, times, initial_state)
    elif method == "uniformization":
        result = transient_distribution_uniformization(chain, times, initial_state)
    else:
        raise SolverError(f"unknown transient method {method!r}")
    mask = chain.up_mask()
    return {"times": result.times, "availability": result.availability(mask)}


def interval_availability(
    chain: MarkovChain,
    horizon_hours: float,
    n_points: int = 200,
    initial_state: Optional[str] = None,
) -> float:
    """Return the expected fraction of ``[0, horizon]`` spent in up states."""
    if horizon_hours <= 0.0:
        raise SolverError("horizon must be positive")
    if n_points < 2:
        raise SolverError("interval availability requires at least two grid points")
    times = np.linspace(0.0, float(horizon_hours), int(n_points))
    result = transient_distribution_uniformization(chain, times, initial_state)
    avail = result.availability(chain.up_mask())
    return float(_trapezoid(avail, times) / horizon_hours)
