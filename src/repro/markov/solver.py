"""Steady-state solvers for continuous-time Markov chains.

The availability numbers reported by the paper are long-run (steady-state)
probabilities of the up states.  For an irreducible CTMC the stationary
distribution ``pi`` satisfies ``pi Q = 0`` with ``sum(pi) = 1``.  The rates
in these models span ten orders of magnitude (disk failures at 1e-7/h versus
operator actions at 1/h), so the solvers pay attention to conditioning:

* :func:`solve_steady_state_dense` — replace one balance equation by the
  normalisation constraint and solve the dense linear system (default).
* :func:`solve_steady_state_least_squares` — minimum-norm least-squares
  solution of the stacked system; robust to mild redundancy.
* :func:`solve_steady_state_power` — power iteration on the uniformized
  DTMC; slower but never forms an explicit inverse, useful as an
  independent cross-check in tests.
* :func:`solve_steady_state_sparse` — sparse LU for larger chains (the
  multi-array subsystem models can reach thousands of states).

Every solver also exists at the **array level** (``stationary_*_from_q``),
operating directly on a generator matrix: the parameterized-chain sweep
engine (:mod:`repro.markov.template`) re-solves an updated ``Q`` without
materialising a fresh :class:`~repro.markov.chain.MarkovChain` per point.
The ``"auto"`` method selects dense or sparse by state count
(:data:`SPARSE_STATE_THRESHOLD`).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.exceptions import SolverError
from repro.markov.chain import MarkovChain

#: Tolerance used to check that a candidate solution satisfies pi Q = 0.
_RESIDUAL_TOL = 1e-8

#: State count at or above which the ``"auto"`` method switches from the
#: dense direct solve to the sparse LU factorisation.
SPARSE_STATE_THRESHOLD = 500


def _check_pi(q: np.ndarray, pi: np.ndarray, residual_tol: float, name: str) -> np.ndarray:
    """Validate, clip and renormalise a candidate stationary vector."""
    if np.any(~np.isfinite(pi)):
        raise SolverError(f"steady-state solution for {name!r} contains non-finite entries")
    # Tiny negative entries are numerical noise; anything sizeable is a bug.
    most_negative = float(pi.min())
    if most_negative < -1e-9:
        raise SolverError(
            f"steady-state solution for {name!r} has negative probability {most_negative:.3e}"
        )
    pi = np.clip(pi, 0.0, None)
    total = float(pi.sum())
    if total <= 0.0:
        raise SolverError(f"steady-state solution for {name!r} sums to zero")
    pi = pi / total
    residual = float(np.max(np.abs(pi @ q)))
    scale = max(1.0, float(np.max(np.abs(q))))
    if residual > residual_tol * scale:
        raise SolverError(
            f"steady-state residual {residual:.3e} exceeds tolerance for chain {name!r}"
        )
    return pi


def stationary_dense_from_q(
    q: np.ndarray, residual_tol: float = _RESIDUAL_TOL, name: str = "generator"
) -> np.ndarray:
    """Solve ``pi Q = 0, sum(pi) = 1`` with a dense direct solve on ``Q``.

    One column of the transposed generator is replaced by the normalisation
    row, which keeps the system square and well determined for irreducible
    chains.
    """
    n = q.shape[0]
    a = q.T.copy()
    a[-1, :] = 1.0
    b = np.zeros(n)
    b[-1] = 1.0
    try:
        pi = np.linalg.solve(a, b)
    except np.linalg.LinAlgError as exc:
        raise SolverError(
            f"dense steady-state solve failed for chain {name!r}: {exc}"
        ) from exc
    return _check_pi(q, pi, residual_tol, name)


def stationary_lstsq_from_q(
    q: np.ndarray, residual_tol: float = _RESIDUAL_TOL, name: str = "generator"
) -> np.ndarray:
    """Solve the stacked system ``[Q^T; 1] pi = [0; 1]`` in the least-squares sense."""
    n = q.shape[0]
    a = np.vstack([q.T, np.ones((1, n))])
    b = np.zeros(n + 1)
    b[-1] = 1.0
    pi, *_ = np.linalg.lstsq(a, b, rcond=None)
    return _check_pi(q, pi, residual_tol, name)


def stationary_power_from_q(
    q: np.ndarray,
    tol: float = 1e-14,
    max_iterations: int = 2_000_000,
    residual_tol: float = 1e-6,
    name: str = "generator",
) -> np.ndarray:
    """Power iteration on the uniformized DTMC derived from ``Q``.

    Convergence can be slow when rates span many orders of magnitude (the
    spectral gap of the uniformized chain is tiny), so this solver is mainly
    used as an independent numerical cross-check on small chains.
    """
    n = q.shape[0]
    max_exit = float(np.max(-np.diag(q))) if n > 0 else 0.0
    lam = max_exit * 1.02
    if lam <= 0.0:
        # Chain with no transitions at all: uniform distribution is stationary.
        return np.full(n, 1.0 / n)
    p = np.eye(n) + q / lam
    pi = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        nxt = pi @ p
        delta = float(np.max(np.abs(nxt - pi)))
        pi = nxt
        if delta < tol:
            break
    else:
        raise SolverError(
            f"power iteration did not converge within {max_iterations} iterations "
            f"for chain {name!r}"
        )
    return _check_pi(q, pi, residual_tol, name)


def stationary_sparse_from_q(
    q: np.ndarray, residual_tol: float = _RESIDUAL_TOL, name: str = "generator"
) -> np.ndarray:
    """Sparse LU solve on ``Q``, suitable for chains with thousands of states."""
    n = q.shape[0]
    a = sparse.lil_matrix(sparse.csr_matrix(q).T)
    a[n - 1, :] = 1.0
    b = np.zeros(n)
    b[-1] = 1.0
    try:
        pi = sparse_linalg.spsolve(sparse.csc_matrix(a), b)
    except Exception as exc:  # scipy raises several distinct error types here
        raise SolverError(
            f"sparse steady-state solve failed for chain {name!r}: {exc}"
        ) from exc
    pi = np.atleast_1d(np.asarray(pi, dtype=float))
    return _check_pi(q, pi, residual_tol, name)


_Q_METHODS = {
    "dense": stationary_dense_from_q,
    "lstsq": stationary_lstsq_from_q,
    "power": stationary_power_from_q,
    "sparse": stationary_sparse_from_q,
}


def resolve_method(method: str, n_states: int) -> str:
    """Resolve ``"auto"`` into a concrete solver name by state count."""
    if method == "auto":
        return "sparse" if n_states >= SPARSE_STATE_THRESHOLD else "dense"
    if method not in _Q_METHODS:
        raise SolverError(
            f"unknown steady-state method {method!r}; expected one of "
            f"{sorted(_Q_METHODS) + ['auto']}"
        )
    return method


def stationary_from_q(
    q: np.ndarray,
    method: str = "auto",
    name: str = "generator",
    **kwargs: float,
) -> np.ndarray:
    """Return the stationary vector of a generator matrix.

    ``method`` is ``"auto"`` (dense below :data:`SPARSE_STATE_THRESHOLD`
    states, sparse at or above it), ``"dense"``, ``"lstsq"``, ``"power"`` or
    ``"sparse"``.
    """
    solver = _Q_METHODS[resolve_method(method, q.shape[0])]
    return solver(q, name=name, **kwargs)


def _as_dict(chain: MarkovChain, pi: np.ndarray) -> Dict[str, float]:
    return dict(zip(chain.state_names, pi.tolist()))


def solve_steady_state_dense(
    chain: MarkovChain, residual_tol: float = _RESIDUAL_TOL
) -> Dict[str, float]:
    """Solve ``pi Q = 0, sum(pi) = 1`` with a dense direct solve."""
    q = chain.generator_matrix()
    return _as_dict(chain, stationary_dense_from_q(q, residual_tol, name=chain.name))


def solve_steady_state_least_squares(
    chain: MarkovChain, residual_tol: float = _RESIDUAL_TOL
) -> Dict[str, float]:
    """Solve the stacked system ``[Q^T; 1] pi = [0; 1]`` in the least-squares sense."""
    q = chain.generator_matrix()
    return _as_dict(chain, stationary_lstsq_from_q(q, residual_tol, name=chain.name))


def solve_steady_state_power(
    chain: MarkovChain,
    tol: float = 1e-14,
    max_iterations: int = 2_000_000,
    residual_tol: float = 1e-6,
) -> Dict[str, float]:
    """Power iteration on the uniformized DTMC (independent cross-check)."""
    q = chain.generator_matrix()
    pi = stationary_power_from_q(
        q, tol=tol, max_iterations=max_iterations,
        residual_tol=residual_tol, name=chain.name,
    )
    return _as_dict(chain, pi)


def solve_steady_state_sparse(
    chain: MarkovChain, residual_tol: float = _RESIDUAL_TOL
) -> Dict[str, float]:
    """Sparse LU solve, suitable for chains with thousands of states."""
    q = chain.generator_matrix()
    return _as_dict(chain, stationary_sparse_from_q(q, residual_tol, name=chain.name))


_METHODS = {
    "dense": solve_steady_state_dense,
    "lstsq": solve_steady_state_least_squares,
    "power": solve_steady_state_power,
    "sparse": solve_steady_state_sparse,
}


def solve_steady_state(
    chain: MarkovChain,
    method: str = "dense",
    **kwargs: float,
) -> Dict[str, float]:
    """Return the stationary distribution using the requested method.

    ``method`` is one of ``"dense"`` (default), ``"lstsq"``, ``"power"``,
    ``"sparse"`` or ``"auto"`` (dense/sparse selected by state count).
    """
    solver = _METHODS[resolve_method(method, chain.n_states)]
    return solver(chain, **kwargs)


def stationary_vector(chain: MarkovChain, method: str = "dense") -> np.ndarray:
    """Return the stationary distribution as an array in state order."""
    pi = solve_steady_state(chain, method=method)
    return np.array([pi[name] for name in chain.state_names], dtype=float)


def mean_time_to_absorption(
    chain: MarkovChain,
    absorbing_states: Optional[list] = None,
    start_state: Optional[str] = None,
) -> float:
    """Return the expected time (hours) to reach the absorbing set.

    Parameters
    ----------
    chain:
        Chain in which the ``absorbing_states`` have had their outgoing
        transitions removed (see
        :meth:`~repro.markov.chain.MarkovChain.with_states_absorbing`), or a
        chain from which they will be removed here.
    absorbing_states:
        Target set.  Defaults to the chain's down states, which yields the
        Mean Time To Data Loss / unavailability entry.
    start_state:
        Initial state; defaults to the first declared state.

    Notes
    -----
    With ``T`` the set of transient states and ``Q_TT`` the generator
    restricted to them, the vector of expected absorption times ``m``
    satisfies ``Q_TT m = -1``.
    """
    absorbing = list(absorbing_states) if absorbing_states is not None else list(chain.down_states())
    if not absorbing:
        raise SolverError("mean_time_to_absorption requires a non-empty absorbing set")
    for name in absorbing:
        chain.index_of(name)
    start = start_state or chain.state_names[0]
    if start in absorbing:
        return 0.0
    transient = [name for name in chain.state_names if name not in absorbing]
    indices = {name: i for i, name in enumerate(transient)}
    q = chain.generator_matrix()
    full_index = {name: i for i, name in enumerate(chain.state_names)}
    q_tt = np.zeros((len(transient), len(transient)))
    for src in transient:
        for dst in transient:
            q_tt[indices[src], indices[dst]] = q[full_index[src], full_index[dst]]
    rhs = -np.ones(len(transient))
    try:
        m = np.linalg.solve(q_tt, rhs)
    except np.linalg.LinAlgError as exc:
        raise SolverError(
            f"mean time to absorption solve failed for chain {chain.name!r}: {exc}"
        ) from exc
    if np.any(m < -1e-9):
        raise SolverError("mean time to absorption produced negative expectations")
    return float(m[indices[start]])
