"""Fluent builder for continuous-time Markov chains.

The availability models in :mod:`repro.core.models` assemble their chains
through this builder: declare states with their up/down flag, then add rate
transitions with symbolic labels, then call :meth:`ChainBuilder.build`.
Duplicate transitions between the same pair of states are allowed and are
summed by the chain, matching how competing events add rates in a CTMC.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.exceptions import StateError, TransitionError
from repro.markov.chain import MarkovChain, State, Transition


class ChainBuilder:
    """Incrementally construct a :class:`~repro.markov.chain.MarkovChain`."""

    def __init__(self, name: str = "markov-chain") -> None:
        self._name = str(name)
        self._states: Dict[str, State] = {}
        self._order: List[str] = []
        self._transitions: List[Transition] = []

    # ------------------------------------------------------------------
    # States
    # ------------------------------------------------------------------
    def add_state(
        self,
        name: str,
        up: bool = True,
        description: str = "",
        tags: Iterable[str] = (),
    ) -> "ChainBuilder":
        """Declare a state; raises if the name is already taken."""
        if name in self._states:
            raise StateError(f"state {name!r} declared twice")
        self._states[name] = State(
            name=name, up=up, description=description, tags=tuple(tags)
        )
        self._order.append(name)
        return self

    def add_up_state(self, name: str, description: str = "", tags: Iterable[str] = ()) -> "ChainBuilder":
        """Declare a state in which the system is available."""
        return self.add_state(name, up=True, description=description, tags=tags)

    def add_down_state(self, name: str, description: str = "", tags: Iterable[str] = ()) -> "ChainBuilder":
        """Declare a state in which the system is unavailable."""
        return self.add_state(name, up=False, description=description, tags=tags)

    def has_state(self, name: str) -> bool:
        """Return whether a state has been declared."""
        return name in self._states

    @property
    def state_names(self) -> List[str]:
        """Return declared state names in declaration order."""
        return list(self._order)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def add_transition(
        self,
        source: str,
        target: str,
        rate: float,
        label: str = "",
    ) -> "ChainBuilder":
        """Add a rate transition; zero rates are accepted and later dropped.

        Zero-rate transitions are convenient when a model parameter (e.g.
        ``hep``) is zero: the model structure stays identical and only the
        numerical rate vanishes.
        """
        if source not in self._states:
            raise StateError(f"transition source {source!r} has not been declared")
        if target not in self._states:
            raise StateError(f"transition target {target!r} has not been declared")
        if rate < 0.0:
            raise TransitionError(
                f"transition {source!r}->{target!r} has negative rate {rate!r}"
            )
        if rate > 0.0:
            self._transitions.append(
                Transition(source=source, target=target, rate=float(rate), label=label)
            )
        return self

    def add_bidirectional(
        self,
        first: str,
        second: str,
        forward_rate: float,
        backward_rate: float,
        forward_label: str = "",
        backward_label: str = "",
    ) -> "ChainBuilder":
        """Add transitions in both directions between two states."""
        self.add_transition(first, second, forward_rate, forward_label)
        self.add_transition(second, first, backward_rate, backward_label)
        return self

    @property
    def n_transitions(self) -> int:
        """Return the number of non-zero transitions added so far."""
        return len(self._transitions)

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> MarkovChain:
        """Return the constructed chain.

        When ``validate`` is true, basic structural checks are run through
        :mod:`repro.markov.validation` (every state reachable from the first
        declared state, no terminal absorbing set unless flagged).
        """
        chain = MarkovChain(
            states=[self._states[name] for name in self._order],
            transitions=self._transitions,
            name=self._name,
        )
        if validate:
            from repro.markov.validation import validate_chain

            validate_chain(chain)
        return chain


def chain_from_rate_dict(
    name: str,
    up_states: Iterable[str],
    down_states: Iterable[str],
    rates: Dict[tuple, float],
    labels: Optional[Dict[tuple, str]] = None,
) -> MarkovChain:
    """Build a chain from a ``{(source, target): rate}`` mapping.

    A convenience wrapper used heavily in tests where writing out the
    builder calls would be noisy.
    """
    labels = labels or {}
    builder = ChainBuilder(name)
    for state in up_states:
        builder.add_up_state(state)
    for state in down_states:
        builder.add_down_state(state)
    for (source, target), rate in rates.items():
        builder.add_transition(source, target, rate, labels.get((source, target), ""))
    return builder.build(validate=False)
