"""Symbolic transition-rate expressions for parameterized chains.

Every transition the model builders declare carries a symbolic label such as
``"n*lambda"`` or ``"hep*mu_DF"``.  This module turns those labels into
compiled, reusable rate expressions so a chain built **once** can be
re-evaluated at many parameter points: a sweep rewrites only the generator
entries whose expressions mention the swept symbol instead of reconstructing
builder/chain/solver objects per point (see :mod:`repro.markov.template`).

The grammar is deliberately tiny — names, numeric literals and the four
arithmetic operators (plus unary minus and parentheses) — and expressions are
validated against a fixed symbol table, so a typo in a model label fails at
template-construction time rather than producing silent zeros.

Recognised symbols (matching the builders in :mod:`repro.core.models`):

==============  =====================================================
symbol          :class:`~repro.core.parameters.AvailabilityParameters`
==============  =====================================================
``n``           ``geometry.n_disks``
``lambda``      ``disk_failure_rate``
``mu_DF``       ``disk_repair_rate``
``mu_DDF``      ``ddf_recovery_rate``
``mu_he``       ``human_error_rate``
``mu_ch``       ``spare_replacement_rate``
``lambda_crash``  ``crash_rate``
``hep``         ``hep``
==============  =====================================================
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Mapping, Tuple

from repro.exceptions import TransitionError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.parameters import AvailabilityParameters

#: ``lambda`` is a Python keyword, so label text is rewritten onto these
#: internal identifiers before parsing.  ``\b`` does not split on ``_``, so
#: ``lambda_crash`` is rewritten as a whole before the bare ``lambda`` rule.
_REWRITES: Tuple[Tuple[str, str], ...] = (
    (r"\blambda_crash\b", "lam_crash"),
    (r"\blambda\b", "lam"),
)

#: Internal symbol names accepted in rate expressions.
RATE_SYMBOLS: Tuple[str, ...] = (
    "n",
    "lam",
    "mu_DF",
    "mu_DDF",
    "mu_he",
    "mu_ch",
    "lam_crash",
    "hep",
)

#: Parameter field -> rate symbol, used by the sweep engine to find which
#: transitions a parameter change affects.  ``geometry`` maps to ``n``.
PARAMETER_SYMBOLS: Dict[str, str] = {
    "geometry": "n",
    "disk_failure_rate": "lam",
    "disk_repair_rate": "mu_DF",
    "ddf_recovery_rate": "mu_DDF",
    "human_error_rate": "mu_he",
    "spare_replacement_rate": "mu_ch",
    "crash_rate": "lam_crash",
    "hep": "hep",
}

_ALLOWED_BINOPS = (ast.Add, ast.Sub, ast.Mult, ast.Div)
_ALLOWED_UNARY = (ast.USub, ast.UAdd)


def symbol_table(params: "AvailabilityParameters") -> Dict[str, float]:
    """Return the rate-symbol values of one parameter point.

    ``n`` is left as the builder's integer so evaluated products are
    bit-identical to the rates the model builders compute directly.
    """
    return {
        "n": params.geometry.n_disks,
        "lam": params.disk_failure_rate,
        "mu_DF": params.disk_repair_rate,
        "mu_DDF": params.ddf_recovery_rate,
        "mu_he": params.human_error_rate,
        "mu_ch": params.spare_replacement_rate,
        "lam_crash": params.crash_rate,
        "hep": params.hep,
    }


@dataclass(frozen=True)
class RateExpression:
    """One compiled transition-rate expression.

    Attributes
    ----------
    label:
        The original label text, kept for error messages and reports.
    symbols:
        The rate symbols the expression depends on; a parameter change that
        touches none of them cannot change this transition's rate.
    """

    label: str
    symbols: FrozenSet[str]
    _code: object

    def __call__(self, table: Mapping[str, float]) -> float:
        """Evaluate the expression against a :func:`symbol_table`."""
        return float(eval(self._code, {"__builtins__": {}}, dict(table)))  # noqa: S307

    @property
    def is_constant(self) -> bool:
        """Return whether the expression depends on no symbol at all."""
        return not self.symbols


def _validate_node(node: ast.AST, label: str) -> None:
    if isinstance(node, ast.Expression):
        _validate_node(node.body, label)
        return
    if isinstance(node, ast.BinOp):
        if not isinstance(node.op, _ALLOWED_BINOPS):
            raise TransitionError(
                f"rate label {label!r} uses unsupported operator {type(node.op).__name__}"
            )
        _validate_node(node.left, label)
        _validate_node(node.right, label)
        return
    if isinstance(node, ast.UnaryOp):
        if not isinstance(node.op, _ALLOWED_UNARY):
            raise TransitionError(
                f"rate label {label!r} uses unsupported operator {type(node.op).__name__}"
            )
        _validate_node(node.operand, label)
        return
    if isinstance(node, ast.Constant):
        if not isinstance(node.value, (int, float)):
            raise TransitionError(
                f"rate label {label!r} contains non-numeric constant {node.value!r}"
            )
        return
    if isinstance(node, ast.Name):
        if node.id not in RATE_SYMBOLS:
            raise TransitionError(
                f"rate label {label!r} references unknown symbol {node.id!r}; "
                f"known symbols: {sorted(RATE_SYMBOLS)}"
            )
        return
    raise TransitionError(
        f"rate label {label!r} contains unsupported syntax ({type(node).__name__})"
    )


def share_failure_label(n_live: int) -> str:
    """Return the rate label of a share-count decay transition.

    A ``k``-of-``N`` erasure group with ``n_live`` surviving shares loses
    its next share at rate ``n_live * lambda``; the label keeps the count
    as a literal so one :class:`~repro.markov.template.ChainTemplate`
    serves every parameter point of that geometry (``lambda`` rewrites,
    the share count does not).
    """
    count = int(n_live)
    if count < 1:
        raise TransitionError(
            f"share-count decay needs at least one live share, got {n_live!r}"
        )
    return f"{count}*lambda"


def compile_rate_expression(label: str) -> RateExpression:
    """Compile a symbolic rate label into a reusable expression.

    Raises :class:`~repro.exceptions.TransitionError` when the label is
    empty, malformed, or references a symbol outside the model vocabulary.
    """
    if not label or not label.strip():
        raise TransitionError(
            "parameterized chains require every transition to carry a symbolic "
            "rate label"
        )
    text = label
    for pattern, replacement in _REWRITES:
        text = re.sub(pattern, replacement, text)
    try:
        tree = ast.parse(text, mode="eval")
    except SyntaxError as exc:
        raise TransitionError(f"rate label {label!r} is not a valid expression: {exc}") from None
    _validate_node(tree, label)
    symbols = frozenset(
        node.id for node in ast.walk(tree) if isinstance(node, ast.Name)
    )
    code = compile(tree, filename=f"<rate {label!r}>", mode="eval")
    return RateExpression(label=label, symbols=symbols, _code=code)
