"""Parameterized chain templates: build once, re-solve at many points.

A :class:`ChainTemplate` captures the *structure* of a CTMC — its states, up
mask and transitions — together with a compiled rate expression per
transition (see :mod:`repro.markov.rates`).  The template is derived from a
chain the model builders produced once per (policy, geometry); afterwards a
parameter sweep never reconstructs builder/chain/solver objects:

* a :class:`TemplateEvaluator` owns one generator matrix ``Q`` assembled
  from the template,
* moving to the next sweep point rewrites **only** the ``Q`` entries whose
  rate expressions mention a symbol that actually changed (plus the affected
  diagonal entries), and
* the updated ``Q`` is re-factorized by the array-level solvers in
  :mod:`repro.markov.solver`, with dense/sparse selection by state count.

The assembly mirrors :meth:`~repro.markov.chain.MarkovChain.generator_matrix`
entry for entry (same scatter order, same row-sum diagonal), so a template
solve is numerically indistinguishable from rebuilding the chain at every
point — the sweep-engine tests assert agreement to 1e-12 and typically see
bit-identical series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.exceptions import SolverError, TransitionError
from repro.markov.chain import MarkovChain
from repro.markov.rates import RateExpression, compile_rate_expression, symbol_table
from repro.markov.solver import _RESIDUAL_TOL, resolve_method, stationary_from_q

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.parameters import AvailabilityParameters


@dataclass(frozen=True)
class TemplateTransition:
    """One structural transition of a template: indices plus rate expression."""

    source_index: int
    target_index: int
    expression: RateExpression


class ChainTemplate:
    """Structure of a CTMC with symbolic rates, reusable across parameters.

    Parameters
    ----------
    chain:
        A chain built by one of the model builders.  Every transition must
        carry a parseable symbolic label; the evaluated expressions are
        checked against the chain's numeric rates at the construction point,
        so a label that disagrees with its builder arithmetic fails fast.
    params:
        The parameter point ``chain`` was built at, used for that check.
    """

    def __init__(self, chain: MarkovChain, params: "AvailabilityParameters") -> None:
        self._name = chain.name
        self._state_names: Tuple[str, ...] = chain.state_names
        self._up_mask = chain.up_mask()
        self._up_indices: Tuple[int, ...] = tuple(
            i for i, up in enumerate(self._up_mask) if up
        )
        index = {name: i for i, name in enumerate(self._state_names)}
        transitions: List[TemplateTransition] = []
        for transition in chain.transitions:
            expression = compile_rate_expression(transition.label)
            transitions.append(
                TemplateTransition(
                    source_index=index[transition.source],
                    target_index=index[transition.target],
                    expression=expression,
                )
            )
        self._transitions: Tuple[TemplateTransition, ...] = tuple(transitions)
        # Entry groups: declaration-ordered transition indices per (i, j)
        # cell, so a rewrite accumulates duplicates in the same order as a
        # fresh generator_matrix() scatter.
        groups: Dict[Tuple[int, int], List[int]] = {}
        for k, t in enumerate(self._transitions):
            groups.setdefault((t.source_index, t.target_index), []).append(k)
        self._entry_groups: Dict[Tuple[int, int], Tuple[int, ...]] = {
            key: tuple(members) for key, members in groups.items()
        }
        # Symbol -> entries whose rate depends on it (for targeted rewrites).
        by_symbol: Dict[str, set] = {}
        for key, members in self._entry_groups.items():
            for k in members:
                for symbol in self._transitions[k].expression.symbols:
                    by_symbol.setdefault(symbol, set()).add(key)
        self._entries_by_symbol: Dict[str, Tuple[Tuple[int, int], ...]] = {
            symbol: tuple(sorted(keys)) for symbol, keys in by_symbol.items()
        }
        self._check_against(chain, params)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Return the name of the chain the template was derived from."""
        return self._name

    @property
    def state_names(self) -> Tuple[str, ...]:
        """Return the state names in matrix order."""
        return self._state_names

    @property
    def n_states(self) -> int:
        """Return the number of states."""
        return len(self._state_names)

    @property
    def up_indices(self) -> Tuple[int, ...]:
        """Return the matrix indices of the up states, in declaration order."""
        return self._up_indices

    @property
    def up_mask(self) -> np.ndarray:
        """Return a copy of the boolean up-state mask."""
        return self._up_mask.copy()

    @property
    def transitions(self) -> Tuple[TemplateTransition, ...]:
        """Return the structural transitions."""
        return self._transitions

    @property
    def symbols(self) -> FrozenSet[str]:
        """Return every rate symbol any transition depends on."""
        return frozenset(self._entries_by_symbol)

    def depends_on(self, symbol: str) -> bool:
        """Return whether any transition rate mentions ``symbol``."""
        return symbol in self._entries_by_symbol

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def rates(self, table: Mapping[str, float]) -> np.ndarray:
        """Evaluate every transition rate against a symbol table."""
        return np.array(
            [t.expression(table) for t in self._transitions], dtype=float
        )

    def generator_matrix(self, params: "AvailabilityParameters") -> np.ndarray:
        """Assemble a fresh generator matrix at one parameter point."""
        return self.evaluator(params).generator_matrix()

    def evaluator(self, params: "AvailabilityParameters") -> "TemplateEvaluator":
        """Return a mutable evaluator positioned at ``params``."""
        return TemplateEvaluator(self, params)

    def solve_many(
        self,
        params_list: Sequence["AvailabilityParameters"],
        method: str = "auto",
    ) -> np.ndarray:
        """Return the stationary vectors of many parameter points at once.

        This is the vectorized heart of the sweep engine.  On the dense path
        (the ``"auto"`` choice for every paper-sized chain) all points are
        assembled into one ``(k, n, n)`` generator stack — base entries
        broadcast, only the transitions whose symbols actually vary across
        the points re-evaluated — and factorized by a **single** batched
        LAPACK solve, then validated and normalised with vectorized
        arithmetic that matches the scalar solver operation for operation.
        Non-dense methods fall back to a per-point loop on one evaluator.

        Returns an array of shape ``(len(params_list), n_states)``.
        """
        if len(params_list) == 0:
            return np.zeros((0, self.n_states))
        resolved = resolve_method(method, self.n_states)
        if resolved != "dense":
            evaluator = self.evaluator(params_list[0])
            rows = [evaluator.solve(method=resolved)]
            for params in params_list[1:]:
                evaluator.set_params(params)
                rows.append(evaluator.solve(method=resolved))
            return np.stack(rows)

        k = len(params_list)
        n = self.n_states
        tables = [symbol_table(params) for params in params_list]
        base = tables[0]
        varying = {
            symbol
            for table in tables[1:]
            for symbol, value in table.items()
            if base.get(symbol) != value
        }
        affected = set()
        for symbol in varying:
            affected.update(self._entries_by_symbol.get(symbol, ()))

        base_rates = self.rates(base)
        q0 = np.zeros((n, n))
        for idx, t in enumerate(self._transitions):
            q0[t.source_index, t.target_index] += base_rates[idx]
        np.fill_diagonal(q0, 0.0)
        q0[np.diag_indices_from(q0)] = -q0.sum(axis=1)
        q = np.broadcast_to(q0, (k, n, n)).copy()

        if affected:
            affected_transitions = sorted(
                {idx for key in affected for idx in self._entry_groups[key]}
            )
            rate_columns = {
                idx: np.array(
                    [self._transitions[idx].expression(table) for table in tables]
                )
                for idx in affected_transitions
            }
            for i, j in affected:
                total = np.zeros(k)
                for idx in self._entry_groups[(i, j)]:
                    column = rate_columns.get(idx)
                    if column is None:
                        column = np.full(k, base_rates[idx])
                    total = total + column
                q[:, i, j] = total
            rows = sorted({i for i, _ in affected})
            for i in rows:
                q[:, i, i] = 0.0
                q[:, i, i] = -q[:, i, :].sum(axis=-1)

        # One batched factorization for the whole sweep: the stacked system
        # mirrors stationary_dense_from_q (replace one balance equation by
        # the normalisation row) applied to every point at once.
        a = q.transpose(0, 2, 1).copy()
        a[:, -1, :] = 1.0
        b = np.zeros((k, n, 1))
        b[:, -1, 0] = 1.0
        try:
            pi = np.linalg.solve(a, b)[:, :, 0]
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                f"batched dense steady-state solve failed for template "
                f"{self._name!r}: {exc}"
            ) from exc
        if np.any(~np.isfinite(pi)):
            raise SolverError(
                f"batched steady-state solution for {self._name!r} contains "
                "non-finite entries"
            )
        most_negative = float(pi.min())
        if most_negative < -1e-9:
            raise SolverError(
                f"batched steady-state solution for {self._name!r} has negative "
                f"probability {most_negative:.3e}"
            )
        pi = np.clip(pi, 0.0, None)
        totals = pi.sum(axis=1)
        if np.any(totals <= 0.0):
            raise SolverError(
                f"batched steady-state solution for {self._name!r} sums to zero"
            )
        pi = pi / totals[:, None]
        residual = np.max(np.abs(np.matmul(pi[:, None, :], q)[:, 0, :]), axis=1)
        scale = np.maximum(1.0, np.max(np.abs(q), axis=(1, 2)))
        worst = float(np.max(residual / scale))
        if worst > _RESIDUAL_TOL:
            raise SolverError(
                f"batched steady-state residual {worst:.3e} exceeds tolerance "
                f"for template {self._name!r}"
            )
        return pi

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _check_against(self, chain: MarkovChain, params: "AvailabilityParameters") -> None:
        """Verify label expressions reproduce the builder's numeric rates."""
        table = symbol_table(params)
        for t, reference in zip(self._transitions, chain.transitions):
            evaluated = t.expression(table)
            if evaluated != reference.rate:
                raise TransitionError(
                    f"template for {self._name!r}: label {t.expression.label!r} "
                    f"evaluates to {evaluated!r} but the builder produced rate "
                    f"{reference.rate!r} for {reference.source!r}->{reference.target!r}"
                )


class TemplateEvaluator:
    """A template bound to a generator matrix that tracks parameter changes.

    The evaluator owns ``Q`` and the last evaluated symbol table.  Each
    :meth:`set_params` call rewrites only the entries whose expressions
    depend on a symbol whose value actually changed; :meth:`solve` then
    re-factorizes through the array-level steady-state solvers.
    """

    def __init__(self, template: ChainTemplate, params: "AvailabilityParameters") -> None:
        self._template = template
        self._table = symbol_table(params)
        self._rates = template.rates(self._table)
        n = template.n_states
        self._q = np.zeros((n, n), dtype=float)
        for k, t in enumerate(template.transitions):
            self._q[t.source_index, t.target_index] += self._rates[k]
        np.fill_diagonal(self._q, 0.0)
        self._q[np.diag_indices_from(self._q)] = -self._q.sum(axis=1)
        #: Number of Q entries rewritten by the last set_params call; kept
        #: for benchmarks and tests of the targeted-update path.
        self.last_rewrites = int(len(template._entry_groups))

    @property
    def template(self) -> ChainTemplate:
        """Return the underlying template."""
        return self._template

    def generator_matrix(self) -> np.ndarray:
        """Return a copy of the current generator matrix."""
        return self._q.copy()

    def set_params(self, params: "AvailabilityParameters") -> "TemplateEvaluator":
        """Move the evaluator to a new parameter point.

        Only the generator entries whose rate expressions mention a symbol
        with a changed value are rewritten; each affected off-diagonal cell
        is recomputed from its declaration-ordered transition rates, and the
        affected rows get their diagonal restored from a fresh row sum.
        """
        template = self._template
        new_table = symbol_table(params)
        changed = {
            symbol for symbol, value in new_table.items()
            if self._table.get(symbol) != value
        }
        self._table = new_table
        if not changed:
            self.last_rewrites = 0
            return self
        affected: set = set()
        for symbol in changed:
            affected.update(template._entries_by_symbol.get(symbol, ()))
        if not affected:
            self.last_rewrites = 0
            return self
        transitions = template.transitions
        entry_groups = template._entry_groups
        for key in affected:
            for k in entry_groups[key]:
                self._rates[k] = transitions[k].expression(new_table)
        rows = set()
        for i, j in affected:
            total = 0.0
            for k in entry_groups[(i, j)]:
                total += self._rates[k]
            self._q[i, j] = total
            rows.add(i)
        for i in rows:
            self._q[i, i] = 0.0
            self._q[i, i] = -self._q[i, :].sum()
        self.last_rewrites = int(len(affected))
        return self

    def solve(self, method: str = "auto") -> np.ndarray:
        """Return the stationary vector of the current generator.

        ``method`` follows :func:`repro.markov.solver.stationary_from_q`;
        the default auto-selects dense or sparse by state count.
        """
        return stationary_from_q(self._q, method=method, name=self._template.name)

    def solver_name(self, method: str = "auto") -> str:
        """Return the concrete solver the given method resolves to."""
        return resolve_method(method, self._template.n_states)

    def state_probabilities(self, pi: Optional[np.ndarray] = None) -> Dict[str, float]:
        """Return ``{state name: stationary probability}``."""
        if pi is None:
            pi = self.solve()
        return dict(zip(self._template.state_names, pi.tolist()))


def template_from_chain(
    chain: MarkovChain, params: "AvailabilityParameters"
) -> ChainTemplate:
    """Build a :class:`ChainTemplate` from a chain and its build parameters."""
    return ChainTemplate(chain, params)
