"""Continuous-time Markov chain engine.

Provides the chain representation, a fluent builder, steady-state and
transient solvers, discrete-time helpers, structural validation and
availability metrics used by the storage availability models.
"""

from repro.markov.builder import ChainBuilder, chain_from_rate_dict
from repro.markov.chain import MarkovChain, State, Transition
from repro.markov.dtmc import (
    dtmc_stationary_distribution,
    embedded_jump_matrix,
    n_step_distribution,
    occupancy_fraction,
    steady_state_via_discretisation,
    step_transition_matrix,
)
from repro.markov.metrics import (
    AvailabilityResult,
    compare_availability,
    expected_visits_per_year,
    mean_time_to_failure,
    state_occupancy_report,
    steady_state_availability,
)
from repro.markov.solver import (
    mean_time_to_absorption,
    solve_steady_state,
    solve_steady_state_dense,
    solve_steady_state_least_squares,
    solve_steady_state_power,
    solve_steady_state_sparse,
    stationary_vector,
)
from repro.markov.transient import (
    TransientResult,
    interval_availability,
    point_availability,
    transient_distribution_expm,
    transient_distribution_uniformization,
)
from repro.markov.validation import (
    ValidationReport,
    check_reachability,
    find_absorbing_states,
    is_irreducible,
    to_networkx,
    validate_chain,
)

__all__ = [
    "AvailabilityResult",
    "ChainBuilder",
    "MarkovChain",
    "State",
    "Transition",
    "TransientResult",
    "ValidationReport",
    "chain_from_rate_dict",
    "check_reachability",
    "compare_availability",
    "dtmc_stationary_distribution",
    "embedded_jump_matrix",
    "expected_visits_per_year",
    "find_absorbing_states",
    "interval_availability",
    "is_irreducible",
    "mean_time_to_absorption",
    "mean_time_to_failure",
    "n_step_distribution",
    "occupancy_fraction",
    "point_availability",
    "solve_steady_state",
    "solve_steady_state_dense",
    "solve_steady_state_least_squares",
    "solve_steady_state_power",
    "solve_steady_state_sparse",
    "state_occupancy_report",
    "stationary_vector",
    "steady_state_availability",
    "steady_state_via_discretisation",
    "step_transition_matrix",
    "to_networkx",
    "transient_distribution_expm",
    "transient_distribution_uniformization",
    "validate_chain",
]
