"""Continuous-time Markov chain engine.

Provides the chain representation, a fluent builder, steady-state and
transient solvers, discrete-time helpers, structural validation and
availability metrics used by the storage availability models.
"""

from repro.markov.builder import ChainBuilder, chain_from_rate_dict
from repro.markov.chain import MarkovChain, State, Transition
from repro.markov.dtmc import (
    dtmc_stationary_distribution,
    embedded_jump_matrix,
    n_step_distribution,
    occupancy_fraction,
    steady_state_via_discretisation,
    step_transition_matrix,
)
from repro.markov.metrics import (
    AvailabilityResult,
    availability_from_up_mass,
    availability_result_from_pi,
    compare_availability,
    expected_visits_per_year,
    mean_time_to_failure,
    state_occupancy_report,
    steady_state_availability,
)
from repro.markov.rates import (
    PARAMETER_SYMBOLS,
    RATE_SYMBOLS,
    RateExpression,
    compile_rate_expression,
    symbol_table,
)
from repro.markov.solver import (
    SPARSE_STATE_THRESHOLD,
    mean_time_to_absorption,
    resolve_method,
    solve_steady_state,
    solve_steady_state_dense,
    solve_steady_state_least_squares,
    solve_steady_state_power,
    solve_steady_state_sparse,
    stationary_from_q,
    stationary_vector,
)
from repro.markov.template import (
    ChainTemplate,
    TemplateEvaluator,
    template_from_chain,
)
from repro.markov.transient import (
    TransientResult,
    interval_availability,
    point_availability,
    transient_distribution_expm,
    transient_distribution_uniformization,
)
from repro.markov.validation import (
    ValidationReport,
    check_reachability,
    find_absorbing_states,
    is_irreducible,
    to_networkx,
    validate_chain,
)

__all__ = [
    "AvailabilityResult",
    "ChainBuilder",
    "ChainTemplate",
    "MarkovChain",
    "PARAMETER_SYMBOLS",
    "RATE_SYMBOLS",
    "RateExpression",
    "SPARSE_STATE_THRESHOLD",
    "State",
    "TemplateEvaluator",
    "Transition",
    "TransientResult",
    "ValidationReport",
    "availability_from_up_mass",
    "availability_result_from_pi",
    "chain_from_rate_dict",
    "check_reachability",
    "compare_availability",
    "compile_rate_expression",
    "dtmc_stationary_distribution",
    "embedded_jump_matrix",
    "expected_visits_per_year",
    "find_absorbing_states",
    "interval_availability",
    "is_irreducible",
    "mean_time_to_absorption",
    "mean_time_to_failure",
    "n_step_distribution",
    "occupancy_fraction",
    "point_availability",
    "resolve_method",
    "solve_steady_state",
    "solve_steady_state_dense",
    "solve_steady_state_least_squares",
    "solve_steady_state_power",
    "solve_steady_state_sparse",
    "state_occupancy_report",
    "stationary_from_q",
    "stationary_vector",
    "steady_state_availability",
    "steady_state_via_discretisation",
    "step_transition_matrix",
    "symbol_table",
    "template_from_chain",
    "to_networkx",
    "transient_distribution_expm",
    "transient_distribution_uniformization",
    "validate_chain",
]
