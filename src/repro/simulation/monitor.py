"""Time-weighted statistics collection for simulations.

Availability is a time-weighted statistic: the fraction of simulated time a
system spends in an up state.  :class:`TimeWeightedValue` accumulates such
statistics incrementally as the model changes state;
:class:`UpDownMonitor` specialises it for boolean up/down tracking and also
counts outage episodes and their durations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import SimulationError


class TimeWeightedValue:
    """Accumulate the time-weighted average of a piecewise-constant signal."""

    def __init__(self, initial_value: float = 0.0, start_time: float = 0.0) -> None:
        self._value = float(initial_value)
        self._last_time = float(start_time)
        self._start_time = float(start_time)
        self._weighted_sum = 0.0

    @property
    def current_value(self) -> float:
        """Return the value currently being integrated."""
        return self._value

    def update(self, time: float, value: float) -> None:
        """Record that the signal changed to ``value`` at ``time``."""
        time = float(time)
        if time < self._last_time:
            raise SimulationError(
                f"monitor updated backwards in time ({time!r} < {self._last_time!r})"
            )
        self._weighted_sum += self._value * (time - self._last_time)
        self._value = float(value)
        self._last_time = time

    def mean(self, until: Optional[float] = None) -> float:
        """Return the time-weighted mean over ``[start, until]``."""
        end = self._last_time if until is None else float(until)
        if end < self._last_time:
            raise SimulationError("mean requested before the last recorded update")
        total = self._weighted_sum + self._value * (end - self._last_time)
        duration = end - self._start_time
        if duration <= 0.0:
            return self._value
        return total / duration


@dataclass
class OutageRecord:
    """One contiguous interval of unavailability."""

    start: float
    end: float
    cause: str = ""

    @property
    def duration(self) -> float:
        """Return the outage length in hours."""
        return self.end - self.start


class UpDownMonitor:
    """Track an up/down signal, its availability and its outage episodes."""

    def __init__(self, start_time: float = 0.0, initially_up: bool = True) -> None:
        self._weighted = TimeWeightedValue(1.0 if initially_up else 0.0, start_time)
        self._up = bool(initially_up)
        self._outages: List[OutageRecord] = []
        self._current_outage_start: Optional[float] = None if initially_up else start_time
        self._current_cause = ""

    @property
    def is_up(self) -> bool:
        """Return whether the monitored system is currently up."""
        return self._up

    @property
    def outages(self) -> List[OutageRecord]:
        """Return completed outage records."""
        return list(self._outages)

    def mark_down(self, time: float, cause: str = "") -> None:
        """Record a transition to the down state (idempotent while down)."""
        if not self._up:
            return
        self._weighted.update(time, 0.0)
        self._up = False
        self._current_outage_start = float(time)
        self._current_cause = cause

    def mark_up(self, time: float) -> None:
        """Record a transition back to the up state (idempotent while up)."""
        if self._up:
            return
        self._weighted.update(time, 1.0)
        self._up = True
        if self._current_outage_start is not None:
            self._outages.append(
                OutageRecord(start=self._current_outage_start, end=float(time), cause=self._current_cause)
            )
        self._current_outage_start = None
        self._current_cause = ""

    def finalize(self, end_time: float) -> None:
        """Close any open outage at the end of the simulation horizon."""
        if not self._up and self._current_outage_start is not None:
            self._outages.append(
                OutageRecord(start=self._current_outage_start, end=float(end_time), cause=self._current_cause)
            )
            self._current_outage_start = float(end_time)

    def availability(self, until: float) -> float:
        """Return the fraction of ``[start, until]`` spent up."""
        return self._weighted.mean(until)

    def downtime_hours(self, until: float) -> float:
        """Return total downtime accumulated up to ``until``."""
        return (1.0 - self.availability(until)) * (until - self._weighted._start_time)

    def outage_count(self) -> int:
        """Return the number of completed outages."""
        return len(self._outages)

    def outage_durations(self) -> List[float]:
        """Return the durations of completed outages in hours."""
        return [outage.duration for outage in self._outages]

    def outage_causes(self) -> Dict[str, int]:
        """Return a histogram of outage causes."""
        histogram: Dict[str, int] = {}
        for outage in self._outages:
            key = outage.cause or "unknown"
            histogram[key] = histogram.get(key, 0) + 1
        return histogram


@dataclass
class CounterSet:
    """A bag of named event counters used by the Monte Carlo simulator."""

    counts: Dict[str, int] = field(default_factory=dict)

    def increment(self, name: str, by: int = 1) -> None:
        """Increase counter ``name`` by ``by`` (creating it at zero)."""
        self.counts[name] = self.counts.get(name, 0) + int(by)

    def get(self, name: str) -> int:
        """Return the current value of a counter (zero when absent)."""
        return self.counts.get(name, 0)

    def merge(self, other: "CounterSet") -> "CounterSet":
        """Return a new counter set with both sets of counts summed."""
        merged = CounterSet(dict(self.counts))
        for name, value in other.counts.items():
            merged.increment(name, value)
        return merged

    def as_dict(self) -> Dict[str, int]:
        """Return a copy of the counters."""
        return dict(self.counts)
