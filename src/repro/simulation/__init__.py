"""Discrete-event simulation kernel: engine, RNG streams, monitors, CIs."""

from repro.simulation.confidence import (
    ConfidenceInterval,
    StreamingMoments,
    batch_means,
    confidence_interval,
    required_samples,
    t_critical,
)
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import ScheduledEvent, TraceRecord, make_event
from repro.simulation.monitor import (
    CounterSet,
    OutageRecord,
    TimeWeightedValue,
    UpDownMonitor,
)
from repro.simulation.rng import RandomStreams

__all__ = [
    "ConfidenceInterval",
    "CounterSet",
    "OutageRecord",
    "RandomStreams",
    "ScheduledEvent",
    "SimulationEngine",
    "StreamingMoments",
    "TimeWeightedValue",
    "TraceRecord",
    "UpDownMonitor",
    "batch_means",
    "confidence_interval",
    "make_event",
    "required_samples",
    "t_critical",
]
