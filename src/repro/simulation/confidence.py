"""Confidence intervals for Monte Carlo estimates.

The paper quotes its Monte Carlo results at a 99 % confidence level with the
interval width shrinking as the square root of the number of iterations
scaled by the Student-t coefficient.  These helpers compute exactly that, and
also provide the sample-size planner used to decide how many iterations a
target precision needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats

from repro.exceptions import SimulationError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval around a sample mean.

    Attributes
    ----------
    mean:
        Sample mean of the replications.
    half_width:
        Half-width of the interval; the interval is ``mean ± half_width``.
    confidence:
        Confidence level in ``(0, 1)``, e.g. ``0.99``.
    n_samples:
        Number of replications the interval is based on.
    std_error:
        Standard error of the mean.
    """

    mean: float
    half_width: float
    confidence: float
    n_samples: int
    std_error: float

    @property
    def lower(self) -> float:
        """Return the lower bound of the interval."""
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        """Return the upper bound of the interval."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Return whether ``value`` falls inside the interval."""
        return self.lower <= value <= self.upper

    def relative_half_width(self) -> float:
        """Return the half-width relative to the mean (``inf`` for zero mean)."""
        if self.mean == 0.0:
            return float("inf")
        return abs(self.half_width / self.mean)


@dataclass
class StreamingMoments:
    """Mergeable running mean/variance (Chan–Golub–LeVeque).

    Parallel shard workers summarise their samples into ``(n, mean, m2)``
    triples; merging two triples is exact (up to floating-point rounding),
    so a sharded Monte Carlo run can build the same Student-t interval as a
    single pass over the pooled samples — without ever materialising them.

    ``m2`` is the sum of squared deviations from the mean, i.e.
    ``variance(ddof=1) = m2 / (n - 1)``.

    Importance-sampled shards additionally carry the sums of their
    likelihood-ratio weights (``w_sum``/``w2_sum``), which merge additively
    and yield Kish's effective sample size (:meth:`ess`).  The weighted
    estimator itself rides in the samples — each one is already
    ``1 - w * (1 - availability)`` — so the mean/variance arithmetic (and
    therefore every interval) stays bit-identical to the unweighted path;
    the weight sums are purely diagnostic bookkeeping on top.
    """

    n: int = 0
    mean: float = 0.0
    m2: float = 0.0
    w_sum: float = 0.0
    w2_sum: float = 0.0

    @classmethod
    def from_samples(
        cls, samples: Sequence[float], weights: Optional[Sequence[float]] = None
    ) -> "StreamingMoments":
        """Summarise a sample array (and optional weights) into one triple."""
        data = np.asarray(samples, dtype=float)
        if np.any(~np.isfinite(data)):
            raise SimulationError("streaming moments require finite samples")
        if data.size == 0:
            return cls()
        if weights is None:
            w_sum = w2_sum = float(data.size)
        else:
            w = np.asarray(weights, dtype=float)
            if w.shape != data.shape:
                raise SimulationError(
                    f"weights shape {w.shape} does not match samples shape {data.shape}"
                )
            if np.any(~np.isfinite(w)) or np.any(w < 0.0):
                raise SimulationError("weights must be finite and non-negative")
            w_sum = float(np.sum(w))
            w2_sum = float(np.sum(w * w))
        mean = float(np.mean(data))
        return cls(
            n=int(data.size),
            mean=mean,
            m2=float(np.sum((data - mean) ** 2)),
            w_sum=w_sum,
            w2_sum=w2_sum,
        )

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Fold ``other`` into this accumulator (in place) and return it."""
        if other.n == 0:
            return self
        if self.n == 0:
            self.n, self.mean, self.m2 = other.n, other.mean, other.m2
            self.w_sum, self.w2_sum = other.w_sum, other.w2_sum
            return self
        n = self.n + other.n
        delta = other.mean - self.mean
        self.m2 = self.m2 + other.m2 + delta * delta * self.n * other.n / n
        self.mean = self.mean + delta * other.n / n
        self.n = n
        self.w_sum += other.w_sum
        self.w2_sum += other.w2_sum
        return self

    def ess(self) -> float:
        """Return Kish's effective sample size ``w_sum^2 / w2_sum``.

        Equals ``n`` exactly on unweighted data; accumulators built before
        weights existed (``w2_sum == 0``) also report ``n``.
        """
        if self.w2_sum <= 0.0:
            return float(self.n)
        return self.w_sum * self.w_sum / self.w2_sum

    def variance(self, ddof: int = 1) -> float:
        """Return the (by default sample) variance of the merged data."""
        if self.n <= ddof:
            raise SimulationError(
                f"variance with ddof={ddof} requires more than {ddof} samples, have {self.n}"
            )
        return max(self.m2, 0.0) / (self.n - ddof)

    def std(self, ddof: int = 1) -> float:
        """Return the (by default sample) standard deviation."""
        return math.sqrt(self.variance(ddof=ddof))

    def std_error(self) -> float:
        """Return the standard error of the merged mean."""
        return self.std() / math.sqrt(self.n)

    def interval(self, confidence: float = 0.99) -> ConfidenceInterval:
        """Return the Student-t interval of the merged mean."""
        if self.n < 2:
            raise SimulationError("confidence interval requires at least two samples")
        std_error = self.std_error()
        critical = t_critical(confidence, self.n)
        return ConfidenceInterval(
            mean=self.mean,
            half_width=critical * std_error,
            confidence=float(confidence),
            n_samples=self.n,
            std_error=std_error,
        )


def segmented_moments(
    samples: Sequence[float],
    counts: Sequence[int],
    weights: Optional[Sequence[float]] = None,
) -> "list[StreamingMoments]":
    """Summarise consecutive segments of ``samples`` into moments triples.

    ``counts[i]`` consecutive samples form segment ``i``; the segments must
    tile the sample array exactly.  This is the ``np.add.reduceat``-style
    aggregation of the stacked sweep engine: one pass computes the per-
    segment sums, a second pass the per-segment squared deviations from the
    segment mean, so each triple is numerically identical in construction to
    :meth:`StreamingMoments.from_samples` of that segment (no naive
    ``sum(x^2) - n*mean^2`` cancellation).
    """
    data = np.asarray(samples, dtype=float)
    sizes = np.asarray(list(counts), dtype=np.int64)
    if sizes.size == 0:
        raise SimulationError("segmented moments require at least one segment")
    if np.any(sizes < 1):
        raise SimulationError("every segment requires at least one sample")
    if int(sizes.sum()) != data.size:
        raise SimulationError(
            f"segment counts sum to {int(sizes.sum())} but {data.size} samples were given"
        )
    if np.any(~np.isfinite(data)):
        raise SimulationError("streaming moments require finite samples")
    offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    means = np.add.reduceat(data, offsets) / sizes
    deviations = data - np.repeat(means, sizes)
    m2 = np.add.reduceat(deviations * deviations, offsets)
    if weights is None:
        w_sums = sizes.astype(float)
        w2_sums = sizes.astype(float)
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape != data.shape:
            raise SimulationError(
                f"weights shape {w.shape} does not match samples shape {data.shape}"
            )
        if np.any(~np.isfinite(w)) or np.any(w < 0.0):
            raise SimulationError("weights must be finite and non-negative")
        w_sums = np.add.reduceat(w, offsets)
        w2_sums = np.add.reduceat(w * w, offsets)
    return [
        StreamingMoments(
            n=int(n), mean=float(mean), m2=float(q), w_sum=float(ws), w2_sum=float(w2s)
        )
        for n, mean, q, ws, w2s in zip(sizes, means, m2, w_sums, w2_sums)
    ]


def t_critical(confidence: float, n_samples: int) -> float:
    """Return the two-sided Student-t critical value for the given level."""
    if not 0.0 < confidence < 1.0:
        raise SimulationError(f"confidence must lie in (0, 1), got {confidence!r}")
    if n_samples < 2:
        raise SimulationError(f"at least two samples are required, got {n_samples!r}")
    alpha = 1.0 - confidence
    return float(stats.t.ppf(1.0 - alpha / 2.0, df=n_samples - 1))


def confidence_interval(samples: Sequence[float], confidence: float = 0.99) -> ConfidenceInterval:
    """Return the Student-t confidence interval of the sample mean."""
    data = np.asarray(list(samples), dtype=float)
    if data.size < 2:
        raise SimulationError("confidence interval requires at least two samples")
    if np.any(~np.isfinite(data)):
        raise SimulationError("confidence interval samples must be finite")
    mean = float(np.mean(data))
    std = float(np.std(data, ddof=1))
    std_error = std / math.sqrt(data.size)
    critical = t_critical(confidence, int(data.size))
    return ConfidenceInterval(
        mean=mean,
        half_width=critical * std_error,
        confidence=float(confidence),
        n_samples=int(data.size),
        std_error=std_error,
    )


def required_samples(
    sample_std: float,
    target_half_width: float,
    confidence: float = 0.99,
    max_samples: int = 100_000_000,
) -> int:
    """Return the number of replications needed for a target half-width.

    Uses the normal approximation ``n = (z * s / h)^2`` with one refinement
    step through the Student-t critical value.
    """
    if sample_std < 0.0:
        raise SimulationError(f"standard deviation must be non-negative, got {sample_std!r}")
    if target_half_width <= 0.0:
        raise SimulationError(f"target half-width must be positive, got {target_half_width!r}")
    if sample_std == 0.0:
        return 2
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    n = max(int(math.ceil((z * sample_std / target_half_width) ** 2)), 2)
    if n > max_samples:
        raise SimulationError(
            f"required sample size {n} exceeds the allowed maximum {max_samples}"
        )
    # One refinement with the t quantile (slightly wider than the normal).
    t = t_critical(confidence, n)
    n = max(int(math.ceil((t * sample_std / target_half_width) ** 2)), 2)
    if n > max_samples:
        raise SimulationError(
            f"required sample size {n} exceeds the allowed maximum {max_samples}"
        )
    return n


def batch_means(samples: Sequence[float], n_batches: int = 20) -> np.ndarray:
    """Return batch means for a (possibly autocorrelated) sample sequence.

    Long single-run simulations produce autocorrelated availability
    estimates; batching restores approximate independence before a
    Student-t interval is applied.
    """
    data = np.asarray(list(samples), dtype=float)
    if n_batches < 2:
        raise SimulationError(f"need at least two batches, got {n_batches!r}")
    if data.size < n_batches:
        raise SimulationError(
            f"cannot form {n_batches} batches from {data.size} samples"
        )
    usable = (data.size // n_batches) * n_batches
    return data[:usable].reshape(n_batches, -1).mean(axis=1)
