"""Random-number stream management for reproducible Monte Carlo runs.

Every stochastic ingredient of the availability simulation (disk failure
times, repair durations, human error coin flips, crash times of wrongly
pulled disks) draws from its own named stream.  Streams are spawned from a
single master seed with :class:`numpy.random.SeedSequence`, so

* the whole experiment is reproducible from one integer seed,
* adding a new stream does not perturb the draws of existing streams, and
* independent iterations can be spawned for embarrassingly parallel runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.exceptions import SimulationError

#: Implicit (auto-indexed) child spawns allocate above this base, keeping
#: them disjoint from any explicitly pinned index in either call order.
#: Every spawn-key element must stay below 2**32: numpy's SeedSequence
#: flattens larger integers into several 32-bit words, which would make
#: the key-path encoding non-injective (e.g. an element of 2**32 becomes
#: the same words as the two elements (0, 1)).
IMPLICIT_SPAWN_BASE = 1 << 31


class RandomStreams:
    """A family of independent random generators derived from one seed."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed_sequence = np.random.SeedSequence(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        self._children_spawned = 0

    @property
    def seed_entropy(self) -> int:
        """Return the master entropy (useful for logging a run's seed)."""
        return int(self._seed_sequence.entropy)

    @property
    def spawn_key(self) -> tuple:
        """Return this family's position in the spawn tree (root: ``()``)."""
        return tuple(self._seed_sequence.spawn_key)

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the named generator.

        Stream creation is deterministic in the *name*, not in the order of
        first use: the child seed is derived from a stable hash of the name
        combined with the master entropy.
        """
        if not name:
            raise SimulationError("stream name must be non-empty")
        if name not in self._streams:
            child = np.random.SeedSequence(
                entropy=self._seed_sequence.entropy,
                spawn_key=tuple(self._seed_sequence.spawn_key) + (_stable_key(name),),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def streams(self, names: Iterable[str]) -> List[np.random.Generator]:
        """Return generators for several names at once."""
        return [self.stream(name) for name in names]

    def spawn_child(self, index: Optional[int] = None) -> "RandomStreams":
        """Return a new independent family (for a parallel replication).

        The child's seed sequence extends the parent's full ``spawn_key``
        lineage with one more element, so a grandchild's streams can never
        collide with any child's — every node in the spawn tree has a unique
        key path from the root.  Passing an explicit ``index`` pins the
        child to a fixed position in the tree regardless of spawn order
        (calling with the same index again returns the same family), which
        is how parallel shard workers rebuild *their* family from just
        ``(master entropy, shard index)``.  Implicit spawns allocate from a
        disjoint index range above ``IMPLICIT_SPAWN_BASE``, so mixing the
        two modes on one parent can never hand out the same family twice.
        """
        if index is None:
            index = IMPLICIT_SPAWN_BASE + self._children_spawned
            self._children_spawned += 1
        elif not 0 <= int(index) < IMPLICIT_SPAWN_BASE:
            raise SimulationError(
                f"explicit spawn index must lie in [0, {IMPLICIT_SPAWN_BASE}), got {index!r}"
            )
        child_seq = np.random.SeedSequence(
            entropy=self._seed_sequence.entropy,
            spawn_key=tuple(self._seed_sequence.spawn_key) + (int(index),),
        )
        child = RandomStreams.__new__(RandomStreams)
        child._seed_sequence = child_seq
        child._streams = {}
        child._children_spawned = 0
        return child

    def known_streams(self) -> List[str]:
        """Return the names of streams created so far."""
        return sorted(self._streams)


def _stable_key(name: str) -> int:
    """Return a deterministic 32-bit key for a stream name.

    ``hash()`` is salted per process, so a small FNV-1a hash is used instead
    to keep streams identical across interpreter runs.
    """
    value = 2166136261
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 16777619) & 0xFFFFFFFF
    return value
