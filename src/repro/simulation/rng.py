"""Random-number stream management for reproducible Monte Carlo runs.

Every stochastic ingredient of the availability simulation (disk failure
times, repair durations, human error coin flips, crash times of wrongly
pulled disks) draws from its own named stream.  Streams are spawned from a
single master seed with :class:`numpy.random.SeedSequence`, so

* the whole experiment is reproducible from one integer seed,
* adding a new stream does not perturb the draws of existing streams, and
* independent iterations can be spawned for embarrassingly parallel runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.exceptions import SimulationError


class RandomStreams:
    """A family of independent random generators derived from one seed."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed_sequence = np.random.SeedSequence(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        self._children_spawned = 0

    @property
    def seed_entropy(self) -> int:
        """Return the master entropy (useful for logging a run's seed)."""
        return int(self._seed_sequence.entropy)

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the named generator.

        Stream creation is deterministic in the *name*, not in the order of
        first use: the child seed is derived from a stable hash of the name
        combined with the master entropy.
        """
        if not name:
            raise SimulationError("stream name must be non-empty")
        if name not in self._streams:
            child = np.random.SeedSequence(
                entropy=self._seed_sequence.entropy,
                spawn_key=tuple(self._seed_sequence.spawn_key) + (_stable_key(name),),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def streams(self, names: Iterable[str]) -> List[np.random.Generator]:
        """Return generators for several names at once."""
        return [self.stream(name) for name in names]

    def spawn_child(self) -> "RandomStreams":
        """Return a new independent family (for a parallel replication)."""
        self._children_spawned += 1
        child_seq = np.random.SeedSequence(
            entropy=self._seed_sequence.entropy,
            spawn_key=(0xFFFF_0000 + self._children_spawned,),
        )
        child = RandomStreams.__new__(RandomStreams)
        child._seed_sequence = child_seq
        child._streams = {}
        child._children_spawned = 0
        return child

    def known_streams(self) -> List[str]:
        """Return the names of streams created so far."""
        return sorted(self._streams)


def _stable_key(name: str) -> int:
    """Return a deterministic 32-bit key for a stream name.

    ``hash()`` is salted per process, so a small FNV-1a hash is used instead
    to keep streams identical across interpreter runs.
    """
    value = 2166136261
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 16777619) & 0xFFFFFFFF
    return value
