"""Event types for the discrete-event simulation kernel.

The kernel is deliberately small: an event is a time plus a callback (or a
named payload for trace-style consumption).  The storage Monte Carlo
simulator in :mod:`repro.core.montecarlo` builds its disk failure / repair /
human error semantics on top of these primitives.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.exceptions import SimulationError

#: Monotonically increasing tie-breaker so simultaneous events preserve
#: scheduling order (heapq is not stable on its own).
_sequence = itertools.count()


@dataclass(order=True)
class ScheduledEvent:
    """An event sitting in the simulator's future event list.

    Ordering is by time, then by insertion sequence, which makes the event
    list deterministic for equal timestamps.
    """

    time: float
    sequence: int = field(compare=True)
    name: str = field(compare=False, default="")
    callback: Optional[Callable[["ScheduledEvent"], None]] = field(compare=False, default=None)
    payload: Dict[str, Any] = field(compare=False, default_factory=dict)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine will skip it when popped."""
        self.cancelled = True


def make_event(
    time: float,
    name: str = "",
    callback: Optional[Callable[[ScheduledEvent], None]] = None,
    **payload: Any,
) -> ScheduledEvent:
    """Create a :class:`ScheduledEvent` with the next tie-break sequence number."""
    if time < 0.0:
        raise SimulationError(f"event time must be non-negative, got {time!r}")
    return ScheduledEvent(
        time=float(time),
        sequence=next(_sequence),
        name=name,
        callback=callback,
        payload=dict(payload),
    )


@dataclass(frozen=True)
class TraceRecord:
    """A single entry of a simulation trace.

    Attributes
    ----------
    time:
        Simulation time in hours at which the event occurred.
    kind:
        Event kind, e.g. ``"disk_failure"``, ``"human_error"``.
    subject:
        Identifier of the entity concerned (disk id, array id, ...).
    detail:
        Free-form extra fields (previous state, duration, ...).
    """

    time: float
    kind: str
    subject: str = ""
    detail: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """Return a one-line human readable description."""
        extra = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        subject = f" {self.subject}" if self.subject else ""
        suffix = f" ({extra})" if extra else ""
        return f"[{self.time:12.2f} h] {self.kind}{subject}{suffix}"
