"""Minimal discrete-event simulation engine.

The engine owns a simulation clock and a future-event list (a binary heap).
Model code schedules events with callbacks; the engine pops them in time
order and invokes the callbacks until the horizon is reached, the event list
drains, or a stop is requested.

The Monte Carlo availability model in :mod:`repro.core.montecarlo` offers two
execution styles: a fast vectorised path for the paper's large sweeps and an
event-driven path built on this engine that produces the per-event traces
shown in the paper's Fig. 1.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.exceptions import SimulationError
from repro.simulation.events import ScheduledEvent, TraceRecord, make_event


class SimulationEngine:
    """Event-driven simulation core with a float clock measured in hours."""

    def __init__(self, horizon_hours: Optional[float] = None) -> None:
        if horizon_hours is not None and horizon_hours <= 0.0:
            raise SimulationError(f"horizon must be positive, got {horizon_hours!r}")
        self._horizon = float(horizon_hours) if horizon_hours is not None else None
        self._now = 0.0
        self._queue: List[ScheduledEvent] = []
        self._stopped = False
        self._processed = 0
        self._trace: List[TraceRecord] = []
        self._trace_enabled = False

    # ------------------------------------------------------------------
    # Clock and state
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Return the current simulation time in hours."""
        return self._now

    @property
    def horizon(self) -> Optional[float]:
        """Return the configured horizon in hours (or ``None``)."""
        return self._horizon

    @property
    def events_processed(self) -> int:
        """Return the number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Return the number of events still queued (including cancelled)."""
        return len(self._queue)

    def stop(self) -> None:
        """Request the run loop to halt after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time: float,
        name: str = "",
        callback: Optional[Callable[[ScheduledEvent], None]] = None,
        **payload: Any,
    ) -> ScheduledEvent:
        """Schedule an event at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {name!r} at {time!r} before current time {self._now!r}"
            )
        event = make_event(time, name=name, callback=callback, **payload)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self,
        delay: float,
        name: str = "",
        callback: Optional[Callable[[ScheduledEvent], None]] = None,
        **payload: Any,
    ) -> ScheduledEvent:
        """Schedule an event ``delay`` hours after the current time."""
        if delay < 0.0:
            raise SimulationError(f"delay must be non-negative, got {delay!r}")
        return self.schedule_at(self._now + delay, name=name, callback=callback, **payload)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def enable_trace(self) -> None:
        """Start recording :class:`TraceRecord` entries via :meth:`record`."""
        self._trace_enabled = True

    def record(self, kind: str, subject: str = "", **detail: Any) -> None:
        """Append a trace record at the current time (no-op when disabled)."""
        if self._trace_enabled:
            self._trace.append(
                TraceRecord(time=self._now, kind=kind, subject=subject, detail=dict(detail))
            )

    @property
    def trace(self) -> List[TraceRecord]:
        """Return the recorded trace (empty unless tracing was enabled)."""
        return list(self._trace)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Process events in time order and return the final clock value.

        The loop ends when the event list is empty, the requested ``until``
        (or the engine horizon) is reached, or :meth:`stop` is called.  When
        a horizon terminates the run the clock is advanced to that horizon so
        time-weighted statistics cover the full interval.
        """
        limit = self._effective_limit(until)
        self._stopped = False
        while self._queue and not self._stopped:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if limit is not None and event.time > limit:
                # Put it back for a potential later run() call and stop here.
                heapq.heappush(self._queue, event)
                self._now = limit
                return self._now
            self._now = event.time
            self._processed += 1
            if event.callback is not None:
                event.callback(event)
        if limit is not None and self._now < limit and not self._stopped:
            self._now = limit
        return self._now

    def _effective_limit(self, until: Optional[float]) -> Optional[float]:
        if until is None:
            return self._horizon
        if until < self._now:
            raise SimulationError(
                f"run until {until!r} lies before the current time {self._now!r}"
            )
        if self._horizon is None:
            return float(until)
        return min(float(until), self._horizon)
