"""Machine-readable benchmark trajectory handling (``BENCH_sweep.json``).

The benchmark harness (``benchmarks/conftest.py``) records one entry per
headline measurement — op name, problem size, wall-clock seconds, speedup.
Historically each session *overwrote* ``BENCH_sweep.json``, so the file
only ever showed the latest run and the performance trajectory across PRs
lived nowhere.  This module makes the file an append-only history:

* every session appends one **run** keyed by git commit and UTC timestamp
  (schema v2, :data:`BENCH_SCHEMA_VERSION`);
* legacy single-run files are migrated transparently on load;
* ``python -m repro bench history`` prints the per-op speedup trend, and
  ``python -m repro bench table`` renders the latest run as the markdown
  performance table embedded in the README.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.exceptions import ConfigurationError

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "append_run",
    "git_commit",
    "load_history",
    "render_history",
    "render_latest_table",
]

#: Version tag of the append-only history schema.
BENCH_SCHEMA_VERSION = 2


def git_commit(repo_root: Optional[Path] = None) -> Optional[str]:
    """Return the short commit hash of ``repo_root`` (``None`` outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(repo_root) if repo_root is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def _migrate(payload: Dict) -> Dict:
    """Normalise any historical file layout to the schema-v2 shape."""
    if "runs" in payload:
        return {"schema": BENCH_SCHEMA_VERSION, "runs": list(payload["runs"])}
    if "results" in payload:
        # Legacy overwrite-style file: one anonymous run.
        run = {
            "generated_at": payload.get("generated_at"),
            "commit": payload.get("commit"),
            "python": payload.get("python"),
            "machine": payload.get("machine"),
            "results": list(payload["results"]),
        }
        return {"schema": BENCH_SCHEMA_VERSION, "runs": [run]}
    return {"schema": BENCH_SCHEMA_VERSION, "runs": []}


def load_history(path: Path) -> Dict:
    """Load (and migrate) the benchmark history at ``path``."""
    path = Path(path)
    if not path.exists():
        return {"schema": BENCH_SCHEMA_VERSION, "runs": []}
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read benchmark history {path}: {exc}") from None
    if not isinstance(payload, dict):
        raise ConfigurationError(f"benchmark history {path} is not a JSON object")
    return _migrate(payload)


def append_run(
    path: Path,
    results: List[Dict[str, object]],
    *,
    commit: Optional[str] = None,
    generated_at: Optional[str] = None,
) -> Dict:
    """Append one run to the history file and return the updated payload.

    ``commit`` defaults to the current git head of the file's directory;
    ``generated_at`` defaults to now (UTC).  Existing runs — including runs
    recorded by the legacy overwrite schema — are preserved, so the perf
    trajectory accumulates across PRs instead of resetting.
    """
    path = Path(path)
    history = load_history(path)
    run = {
        "generated_at": generated_at
        or time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "commit": commit if commit is not None else git_commit(path.parent),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": list(results),
    }
    history["runs"].append(run)
    path.write_text(json.dumps(history, indent=2) + "\n")
    return history


def _format_entry(run: Dict, entry: Dict) -> str:
    commit = run.get("commit") or "-"
    when = run.get("generated_at") or "-"
    points = entry.get("points", "-")
    seconds = entry.get("seconds")
    speedup = entry.get("speedup")
    seconds_text = f"{seconds:.3f}" if isinstance(seconds, (int, float)) else "-"
    speedup_text = f"{speedup:.2f}x" if isinstance(speedup, (int, float)) else "-"
    line = f"  {str(commit):<10}{when:<22}{str(points):>8}{seconds_text:>10}{speedup_text:>10}"
    # Fault-tolerance counters recorded by chaos/recovery measurements.
    extras = [
        f"{key.replace('_shards', '')}={entry[key]}"
        for key in ("retried_shards", "resumed_shards")
        if entry.get(key)
    ]
    if extras:
        line += "  " + " ".join(extras)
    return line


def render_history(history: Dict, op: Optional[str] = None) -> str:
    """Render the speedup trend per op, one chronological line per run."""
    by_op: Dict[str, List[str]] = {}
    for run in history.get("runs", []):
        for entry in run.get("results", []):
            name = str(entry.get("op", "?"))
            if op is not None and name != op:
                continue
            by_op.setdefault(name, []).append(_format_entry(run, entry))
    if not by_op:
        scope = f" for op {op!r}" if op is not None else ""
        return f"no benchmark records{scope}; run 'pytest benchmarks/ -s' first"
    lines: List[str] = []
    header = f"  {'commit':<10}{'generated_at':<22}{'points':>8}{'seconds':>10}{'speedup':>10}"
    for name in sorted(by_op):
        lines.append(f"{name}:")
        lines.append(header)
        lines.extend(by_op[name])
        lines.append("")
    return "\n".join(lines).rstrip()


def render_latest_table(history: Dict) -> str:
    """Render the latest run as the README's markdown performance table."""
    runs = history.get("runs", [])
    if not runs:
        return "no benchmark records; run 'pytest benchmarks/ -s' first"
    latest = runs[-1]
    lines = [
        "| op | points | seconds | speedup | variance efficiency |",
        "|---|---:|---:|---:|---:|",
    ]
    for entry in latest.get("results", []):
        points = entry.get("points", "")
        seconds = entry.get("seconds")
        speedup = entry.get("speedup")
        efficiency = entry.get("variance_efficiency")
        seconds_text = f"{seconds:.3f}" if isinstance(seconds, (int, float)) else ""
        speedup_text = f"{speedup:.2f}x" if isinstance(speedup, (int, float)) else ""
        efficiency_text = (
            f"{efficiency:.0f}x" if isinstance(efficiency, (int, float)) else ""
        )
        lines.append(
            f"| {entry.get('op', '?')} | {points} | {seconds_text} | "
            f"{speedup_text} | {efficiency_text} |"
        )
    meta = (
        f"<!-- generated from BENCH_sweep.json @ {latest.get('commit') or 'unknown'} "
        f"({latest.get('generated_at') or 'unknown'}) -->"
    )
    return "\n".join([meta] + lines)
