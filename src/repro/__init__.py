"""repro — availability of data storage systems under human errors.

A from-scratch Python reproduction of *"Evaluating Impact of Human Errors on
the Availability of Data Storage Systems"* (Kishani, Eftekhari, Asadi —
DATE 2017).  The package provides:

* :mod:`repro.core` — the paper's contribution: Markov availability models
  of RAID groups with human errors (conventional replacement and automatic
  fail-over policies) and the Monte Carlo reference simulator.
* :mod:`repro.markov` — a general continuous-time Markov chain engine
  (builder, steady-state and transient solvers, validation).
* :mod:`repro.simulation` — a discrete-event simulation kernel with RNG
  stream management and confidence intervals.
* :mod:`repro.storage` — disks, RAID geometries, arrays, rebuild/backup
  models and latent sector errors.
* :mod:`repro.human` — human error probability data, operator models and
  replacement policies.
* :mod:`repro.availability` — nines/downtime arithmetic, MTTDL, ERF.
* :mod:`repro.experiments` — regeneration of every figure and headline
  number of the paper's evaluation section.

Quickstart::

    from repro import evaluate, paper_parameters

    params = paper_parameters(disk_failure_rate=1e-6, hep=0.01)
    print(evaluate(params, policy="conventional", backend="analytical").nines)
    mc = evaluate(params, policy="conventional", backend="monte_carlo", seed=7)
    print(mc.availability, (mc.ci_lower, mc.ci_upper))
"""

from repro.core import (
    AvailabilityEstimate,
    AvailabilityParameters,
    MonteCarloConfig,
    MonteCarloResult,
    SimulationPolicy,
    analytical_policies,
    analytical_result,
    available_policies,
    compare_equal_capacity,
    estimate_availability,
    evaluate,
    hot_spare_policy,
    paper_parameters,
    register_policy,
    run_monte_carlo,
    sweep,
    sweep_grid,
)
from repro.exceptions import ReproError
from repro.human.policy import PolicyKind
from repro.markov import MarkovChain, steady_state_availability
from repro.storage.raid import RaidGeometry

__version__ = "1.0.0"

__all__ = [
    "AvailabilityEstimate",
    "AvailabilityParameters",
    "MarkovChain",
    "MonteCarloConfig",
    "MonteCarloResult",
    "PolicyKind",
    "RaidGeometry",
    "ReproError",
    "SimulationPolicy",
    "__version__",
    "analytical_policies",
    "analytical_result",
    "available_policies",
    "compare_equal_capacity",
    "estimate_availability",
    "evaluate",
    "hot_spare_policy",
    "paper_parameters",
    "register_policy",
    "run_monte_carlo",
    "steady_state_availability",
    "sweep",
    "sweep_grid",
]
