"""Design-space analyses built on top of the paper's models.

These go beyond the paper's evaluation: parameter sensitivity (which service
rate actually moves availability), inverse requirements (how good must the
operator or the rebuild be to hit an SLO), fleet-level operator workload and
error budgets, and the latent-sector-error extension study.
"""

from repro.analysis.lse_study import (
    LseImpact,
    availability_with_lse,
    build_conventional_chain_with_lse,
    lse_impact,
    scrubbing_benefit,
)
from repro.analysis.requirements import (
    maximum_tolerable_hep,
    nines_gap_to_target,
    required_repair_rate,
)
from repro.analysis.sensitivity import (
    PERTURBABLE_PARAMETERS,
    SensitivityEntry,
    dominant_parameter,
    one_at_a_time,
    swing_table,
)
from repro.analysis.staffing import (
    FleetWorkload,
    downtime_saved_by_policy,
    downtime_saved_by_training,
    exascale_motivation,
    fleet_workload,
)

__all__ = [
    "FleetWorkload",
    "LseImpact",
    "PERTURBABLE_PARAMETERS",
    "SensitivityEntry",
    "availability_with_lse",
    "build_conventional_chain_with_lse",
    "dominant_parameter",
    "downtime_saved_by_policy",
    "downtime_saved_by_training",
    "exascale_motivation",
    "fleet_workload",
    "lse_impact",
    "maximum_tolerable_hep",
    "nines_gap_to_target",
    "one_at_a_time",
    "required_repair_rate",
    "scrubbing_benefit",
    "swing_table",
]
