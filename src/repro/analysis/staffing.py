"""Fleet-level operator workload and error-budget analysis.

The paper motivates its models with a data-centre argument: an exa-byte
facility has so many disks that replacements happen hourly, so even tiny hep
values translate into multiple human errors per day.  This module makes that
argument quantitative for an arbitrary fleet: expected replacements per
year, expected wrong pulls per year, expected downtime attributable to them,
and the staffing-oriented question of how much an improvement in procedures
(lower hep) or in automation (fail-over policy) buys across the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.availability.metrics import HOURS_PER_YEAR
from repro.core.evaluation import analytical_result
from repro.core.montecarlo.config import PolicyRef
from repro.core.parameters import AvailabilityParameters
from repro.exceptions import ConfigurationError
from repro.storage.raid import RaidGeometry
from repro.storage.subsystem import DiskSubsystem


@dataclass(frozen=True)
class FleetWorkload:
    """Expected yearly operator workload and downtime for one fleet.

    Attributes
    ----------
    total_disks:
        Physical disks in the fleet (excluding spares).
    disk_failures_per_year:
        Expected hard failures per year across the fleet.
    replacements_per_year:
        Expected operator interventions per year (one per failure under the
        conventional policy; the same count under fail-over, just performed
        while the array is redundant).
    wrong_pulls_per_year:
        Expected wrong disk replacements per year (``hep`` times the
        interventions).
    subsystem_downtime_hours_per_year:
        Expected downtime of the whole subsystem per year, from the Markov
        model of one group aggregated in series.
    """

    total_disks: int
    disk_failures_per_year: float
    replacements_per_year: float
    wrong_pulls_per_year: float
    subsystem_downtime_hours_per_year: float


def fleet_workload(
    geometry: RaidGeometry,
    params: AvailabilityParameters,
    usable_disks: int,
    model: PolicyRef = "conventional",
) -> FleetWorkload:
    """Return the expected yearly workload for a fleet of ``usable_disks`` capacity."""
    if usable_disks < 1:
        raise ConfigurationError(f"usable capacity must be positive, got {usable_disks!r}")
    subsystem = DiskSubsystem.for_usable_capacity(geometry, usable_disks)
    scenario = params.with_geometry(geometry)
    failures = subsystem.expected_disk_failures_per_year(scenario.disk_failure_rate)
    array_result = analytical_result(scenario, model)
    aggregated = subsystem.aggregate_availability(array_result.availability)
    return FleetWorkload(
        total_disks=subsystem.total_disks,
        disk_failures_per_year=failures,
        replacements_per_year=failures,
        wrong_pulls_per_year=scenario.hep * failures,
        subsystem_downtime_hours_per_year=(1.0 - aggregated.subsystem_availability)
        * HOURS_PER_YEAR,
    )


def exascale_motivation(
    disks: int = 1_000_000,
    disk_failure_rate: float = 1e-6,
    hep: float = 0.001,
) -> Dict[str, float]:
    """Reproduce the paper's introduction arithmetic for an exa-scale centre.

    With a million disks at ``lambda = 1e-6``/h the fleet sees about one
    failure per hour, i.e. ~8760 replacements a year; at ``hep`` between
    0.001 and 0.01 that is multiple human errors per day to a few per week.
    """
    if disks < 1:
        raise ConfigurationError(f"disk count must be positive, got {disks!r}")
    if disk_failure_rate <= 0.0:
        raise ConfigurationError(f"failure rate must be positive, got {disk_failure_rate!r}")
    if not 0.0 <= hep <= 1.0:
        raise ConfigurationError(f"hep must lie in [0, 1], got {hep!r}")
    failures_per_hour = disks * disk_failure_rate
    failures_per_year = failures_per_hour * HOURS_PER_YEAR
    errors_per_year = hep * failures_per_year
    return {
        "disks": float(disks),
        "failures_per_hour": failures_per_hour,
        "failures_per_year": failures_per_year,
        "human_errors_per_year": errors_per_year,
        "human_errors_per_day": errors_per_year / 365.0,
    }


def downtime_saved_by_policy(
    geometry: RaidGeometry,
    params: AvailabilityParameters,
    usable_disks: int,
) -> Dict[str, float]:
    """Return yearly downtime under each policy and the saving from fail-over."""
    conventional = fleet_workload(geometry, params, usable_disks, "conventional")
    failover = fleet_workload(geometry, params, usable_disks, "automatic_failover")
    return {
        "conventional_downtime_hours_per_year": conventional.subsystem_downtime_hours_per_year,
        "failover_downtime_hours_per_year": failover.subsystem_downtime_hours_per_year,
        "downtime_saved_hours_per_year": (
            conventional.subsystem_downtime_hours_per_year
            - failover.subsystem_downtime_hours_per_year
        ),
    }


def downtime_saved_by_training(
    geometry: RaidGeometry,
    params: AvailabilityParameters,
    usable_disks: int,
    improved_hep: float,
    model: PolicyRef = "conventional",
) -> Dict[str, float]:
    """Return yearly downtime before/after a procedure improvement lowers hep."""
    if improved_hep > params.hep:
        raise ConfigurationError(
            f"improved hep {improved_hep!r} must not exceed the current hep {params.hep!r}"
        )
    before = fleet_workload(geometry, params, usable_disks, model)
    after = fleet_workload(geometry, params.with_hep(improved_hep), usable_disks, model)
    return {
        "downtime_before_hours_per_year": before.subsystem_downtime_hours_per_year,
        "downtime_after_hours_per_year": after.subsystem_downtime_hours_per_year,
        "downtime_saved_hours_per_year": (
            before.subsystem_downtime_hours_per_year
            - after.subsystem_downtime_hours_per_year
        ),
        "wrong_pulls_avoided_per_year": before.wrong_pulls_per_year - after.wrong_pulls_per_year,
    }
