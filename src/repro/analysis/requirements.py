"""Inverse analyses: what does it take to reach an availability target?

The forward models answer "given hep, what availability do I get?".  System
designers usually ask the inverse questions:

* :func:`maximum_tolerable_hep` — how error-prone may the replacement
  procedure be before an availability SLO (in nines) is violated?
* :func:`required_repair_rate` — how fast must rebuilds be to meet the SLO
  at a given hep?

Both are monotone one-dimensional problems solved by bisection on the
corresponding Markov model.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.availability.metrics import nines_to_availability
from repro.core.evaluation import analytical_result
from repro.core.montecarlo.config import PolicyRef
from repro.core.parameters import AvailabilityParameters
from repro.exceptions import ConfigurationError

#: Bisection tolerance on the searched parameter (relative).
_REL_TOL = 1e-6


def _bisect_decreasing(
    evaluate: Callable[[float], float],
    target: float,
    low: float,
    high: float,
    iterations: int = 200,
) -> float:
    """Find x with evaluate(x) ~= target where evaluate is decreasing in x."""
    for _ in range(iterations):
        mid = 0.5 * (low + high)
        if evaluate(mid) >= target:
            low = mid
        else:
            high = mid
        if high - low <= _REL_TOL * max(abs(high), 1e-300):
            break
    return low


def maximum_tolerable_hep(
    params: AvailabilityParameters,
    target_nines: float,
    model: PolicyRef = "conventional",
    hep_upper_bound: float = 1.0,
) -> float:
    """Return the largest hep that still meets ``target_nines``.

    Raises :class:`~repro.exceptions.ConfigurationError` when the target is
    unreachable even with a perfect operator (``hep = 0``), and returns
    ``hep_upper_bound`` when even the worst allowed operator meets it.
    """
    if target_nines <= 0.0:
        raise ConfigurationError(f"target nines must be positive, got {target_nines!r}")
    target_availability = nines_to_availability(target_nines)

    def availability_at(hep: float) -> float:
        return analytical_result(params.with_hep(hep), model).availability

    if availability_at(0.0) < target_availability:
        raise ConfigurationError(
            f"target of {target_nines:g} nines is unreachable even with hep = 0 "
            f"for {params.geometry.label} at lambda = {params.disk_failure_rate:g}"
        )
    if availability_at(hep_upper_bound) >= target_availability:
        return float(hep_upper_bound)
    return _bisect_decreasing(availability_at, target_availability, 0.0, float(hep_upper_bound))


def required_repair_rate(
    params: AvailabilityParameters,
    target_nines: float,
    model: PolicyRef = "conventional",
    rate_bounds: tuple = (1e-4, 100.0),
) -> float:
    """Return the smallest ``mu_DF`` (per hour) that meets ``target_nines``.

    A faster rebuild shortens the exposure window, so availability is
    increasing in the repair rate; the smallest sufficient rate is found by
    bisection.  Raises when even the upper bound cannot meet the target.
    """
    if target_nines <= 0.0:
        raise ConfigurationError(f"target nines must be positive, got {target_nines!r}")
    low, high = float(rate_bounds[0]), float(rate_bounds[1])
    if low <= 0.0 or high <= low:
        raise ConfigurationError(f"invalid repair-rate bounds {rate_bounds!r}")
    target_availability = nines_to_availability(target_nines)

    def availability_at(rate: float) -> float:
        return analytical_result(
            replace(params, disk_repair_rate=rate), model
        ).availability

    if availability_at(high) < target_availability:
        raise ConfigurationError(
            f"target of {target_nines:g} nines is unreachable even at mu_DF = {high:g}/h"
        )
    if availability_at(low) >= target_availability:
        return low
    # Availability is increasing in the rate; bisect on the complement.
    for _ in range(200):
        mid = 0.5 * (low + high)
        if availability_at(mid) >= target_availability:
            high = mid
        else:
            low = mid
        if high - low <= _REL_TOL * high:
            break
    return high


def nines_gap_to_target(
    params: AvailabilityParameters,
    target_nines: float,
    model: PolicyRef = "conventional",
) -> float:
    """Return ``achieved nines - target nines`` (negative when failing)."""
    result = analytical_result(params, model)
    return result.nines - float(target_nines)
