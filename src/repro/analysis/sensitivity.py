"""One-at-a-time sensitivity analysis of the availability models.

The paper fixes its service rates to single point estimates (``mu_DF = 0.1``,
``mu_he = 1`` ...).  Operators of real systems want to know which of those
knobs actually moves availability: is it worth paying for faster rebuilds,
faster error detection, better-trained staff?  This module perturbs each
parameter by a configurable factor (a tornado-style one-at-a-time analysis)
and reports the availability swing each parameter produces.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from repro.core.evaluation import analytical_result
from repro.core.montecarlo.config import PolicyRef
from repro.core.parameters import AvailabilityParameters
from repro.exceptions import ConfigurationError

#: Parameters subject to the one-at-a-time perturbation, with direction of
#: "improvement" (True when increasing the value improves availability).
PERTURBABLE_PARAMETERS: Dict[str, bool] = {
    "disk_failure_rate": False,
    "disk_repair_rate": True,
    "ddf_recovery_rate": True,
    "human_error_rate": True,
    "spare_replacement_rate": True,
    "crash_rate": False,
    "hep": False,
}


@dataclass(frozen=True)
class SensitivityEntry:
    """Availability swing produced by perturbing one parameter.

    Attributes
    ----------
    parameter:
        Name of the perturbed field on :class:`AvailabilityParameters`.
    low_value / high_value:
        Parameter values after dividing / multiplying by the factor.
    low_unavailability / high_unavailability:
        Unavailability at those two values (other parameters fixed).
    swing:
        Absolute difference of the two unavailabilities — the bar length in
        a tornado chart.
    """

    parameter: str
    low_value: float
    high_value: float
    low_unavailability: float
    high_unavailability: float

    @property
    def swing(self) -> float:
        """Return the absolute unavailability swing across the perturbation."""
        return abs(self.high_unavailability - self.low_unavailability)

    @property
    def relative_swing(self) -> float:
        """Return the swing relative to the smaller unavailability."""
        floor = min(self.low_unavailability, self.high_unavailability)
        if floor <= 0.0:
            return float("inf")
        return self.swing / floor


def _perturbed(params: AvailabilityParameters, name: str, value: float) -> AvailabilityParameters:
    if name == "hep":
        value = min(max(value, 0.0), 1.0)
    return replace(params, **{name: value})


def one_at_a_time(
    params: AvailabilityParameters,
    model: PolicyRef = "conventional",
    factor: float = 2.0,
    parameters: Sequence[str] = tuple(PERTURBABLE_PARAMETERS),
) -> List[SensitivityEntry]:
    """Perturb each parameter by ``factor`` in both directions.

    Parameters whose nominal value is zero (e.g. ``hep = 0`` or
    ``crash_rate = 0``) are skipped, because multiplying zero tells nothing.
    Entries are returned sorted by decreasing swing, tornado style.
    """
    if factor <= 1.0:
        raise ConfigurationError(f"perturbation factor must exceed 1, got {factor!r}")
    entries: List[SensitivityEntry] = []
    for name in parameters:
        if name not in PERTURBABLE_PARAMETERS:
            raise ConfigurationError(
                f"unknown parameter {name!r}; known: {sorted(PERTURBABLE_PARAMETERS)}"
            )
        nominal = float(getattr(params, name))
        if nominal == 0.0:
            continue
        low = analytical_result(_perturbed(params, name, nominal / factor), model)
        high = analytical_result(_perturbed(params, name, nominal * factor), model)
        entries.append(
            SensitivityEntry(
                parameter=name,
                low_value=nominal / factor,
                high_value=nominal * factor,
                low_unavailability=low.unavailability,
                high_unavailability=high.unavailability,
            )
        )
    return sorted(entries, key=lambda entry: entry.swing, reverse=True)


def dominant_parameter(entries: Sequence[SensitivityEntry]) -> str:
    """Return the parameter with the largest availability swing."""
    if not entries:
        raise ConfigurationError("sensitivity analysis produced no entries")
    return max(entries, key=lambda entry: entry.swing).parameter


def swing_table(entries: Sequence[SensitivityEntry]) -> Dict[str, float]:
    """Return ``{parameter: unavailability swing}`` for reporting."""
    return {entry.parameter: entry.swing for entry in entries}
