"""Extension study: latent sector errors on top of the human-error model.

The paper's related-work section names latent sector errors (LSEs) as the
other major data-loss contributor but keeps them out of its models.  This
extension folds them in analytically: an LSE discovered on a surviving disk
during a rebuild behaves, for availability purposes, like an additional path
from the exposed state to the data-loss state.  The module quantifies how
much the paper's conclusions shift when that path is switched on, and how
much periodic scrubbing buys back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.parameters import AvailabilityParameters
from repro.exceptions import ConfigurationError
from repro.markov.builder import ChainBuilder
from repro.markov.chain import MarkovChain
from repro.markov.metrics import AvailabilityResult, steady_state_availability
from repro.storage.lse import LatentSectorErrorModel, LseParameters


@dataclass(frozen=True)
class LseImpact:
    """Availability with and without the latent-sector-error path."""

    without_lse_nines: float
    with_lse_nines: float
    lse_blocked_rebuild_probability: float

    @property
    def nines_lost(self) -> float:
        """Return the nines lost by enabling the LSE path."""
        return self.without_lse_nines - self.with_lse_nines


def build_conventional_chain_with_lse(
    params: AvailabilityParameters,
    lse_model: LatentSectorErrorModel,
    disk_age_hours: float = 8760.0,
) -> MarkovChain:
    """Return the Fig. 2 chain extended with an LSE-blocked-rebuild path.

    The extension adds a transition ``EXP -> DL`` whose rate is the rebuild
    completion rate multiplied by the probability that at least one
    surviving disk carries an undetected latent error (which prevents full
    reconstruction, forcing a restore from backup).  The corresponding
    successful-rebuild rate is reduced so the exit rate of ``EXP`` is
    conserved.
    """
    geometry = params.geometry
    if geometry.fault_tolerance != 1:
        raise ConfigurationError(
            f"LSE extension covers single-fault-tolerant geometries, got {geometry.label}"
        )
    n = geometry.n_disks
    lam = params.disk_failure_rate
    mu_df = params.disk_repair_rate
    mu_ddf = params.ddf_recovery_rate
    mu_he = params.human_error_rate
    lam_crash = params.crash_rate
    hep = params.hep
    p_block = lse_model.probability_rebuild_blocked(
        surviving_disks=n - 1,
        rebuild_hours=1.0 / mu_df,
        disk_age_hours=disk_age_hours,
    )

    builder = ChainBuilder(name=f"conventional-lse-{geometry.label}")
    builder.add_up_state("OP")
    builder.add_up_state("EXP", tags=("exposed",))
    if hep > 0.0:
        builder.add_down_state("DU", tags=("human-error",))
    builder.add_down_state("DL", tags=("data-loss",))

    builder.add_transition("OP", "EXP", n * lam, label="n*lambda")
    builder.add_transition("EXP", "DL", (n - 1) * lam, label="(n-1)*lambda")
    # Rebuild completions split into clean ones and LSE-blocked ones.
    builder.add_transition("EXP", "DL", mu_df * p_block, label="mu_DF*p_LSE")
    clean_rate = mu_df * (1.0 - p_block)
    builder.add_transition("EXP", "OP", (1.0 - hep) * clean_rate, label="(1-hep)*mu_DF*(1-p_LSE)")
    if hep > 0.0:
        builder.add_transition("EXP", "DU", hep * clean_rate, label="hep*mu_DF*(1-p_LSE)")
        builder.add_transition("DU", "OP", (1.0 - hep) * mu_he, label="(1-hep)*mu_he")
        builder.add_transition("DU", "DL", lam_crash, label="lambda_crash")
    builder.add_transition("DL", "OP", mu_ddf, label="mu_DDF")
    return builder.build()


def availability_with_lse(
    params: AvailabilityParameters,
    lse_parameters: LseParameters = LseParameters(),
    disk_age_hours: float = 8760.0,
) -> AvailabilityResult:
    """Return the steady-state availability of the LSE-extended model."""
    model = LatentSectorErrorModel(lse_parameters)
    chain = build_conventional_chain_with_lse(params, model, disk_age_hours)
    return steady_state_availability(chain)


def lse_impact(
    params: AvailabilityParameters,
    lse_parameters: LseParameters = LseParameters(),
    disk_age_hours: float = 8760.0,
) -> LseImpact:
    """Return the availability loss caused by enabling the LSE path."""
    from repro.core.models.raid5_conventional import conventional_availability

    baseline = conventional_availability(params)
    extended = availability_with_lse(params, lse_parameters, disk_age_hours)
    model = LatentSectorErrorModel(lse_parameters)
    p_block = model.probability_rebuild_blocked(
        surviving_disks=params.n_disks - 1,
        rebuild_hours=1.0 / params.disk_repair_rate,
        disk_age_hours=disk_age_hours,
    )
    return LseImpact(
        without_lse_nines=baseline.nines,
        with_lse_nines=extended.nines,
        lse_blocked_rebuild_probability=p_block,
    )


def scrubbing_benefit(
    params: AvailabilityParameters,
    scrub_intervals_hours: tuple = (0.0, 336.0, 168.0, 24.0),
    errors_per_disk_year: float = 1.0,
) -> Dict[float, float]:
    """Return availability (nines) as a function of the scrub interval.

    ``0`` means no scrubbing.  Shorter intervals shrink the window in which
    an undetected LSE can ambush a rebuild, recovering availability.
    """
    results: Dict[float, float] = {}
    for interval in scrub_intervals_hours:
        lse_params = LseParameters(
            errors_per_disk_year=errors_per_disk_year,
            scrub_interval_hours=float(interval),
        )
        results[float(interval)] = availability_with_lse(params, lse_params).nines
    return results
