"""Command-line interface: ``python -m repro <command>``.

Eight subcommands cover the common workflows without writing any code:

``solve``
    Evaluate one policy's analytical model and print availability, nines
    and downtime.
``compare``
    Equal-usable-capacity comparison of the paper's three RAID layouts.
``mc``
    Run a Monte Carlo availability study for any registered replacement
    policy (vectorised batch executor by default).  ``--scheme k:N[:R]``
    simulates a pinned k-of-N erasure scheme with periodic checker/repair
    cycles (``--check-period`` hours) instead of a named policy.
``sweep``
    Sweep one parameter axis — or a 2-axis grid via ``--axis2`` — for one
    policy on either evaluation backend
    (``--backend analytical|monte_carlo|auto``).  Analytical sweeps reuse a
    parameterized chain template instead of rebuilding per point; Monte
    Carlo sweeps run as one stacked grid (per-lifetime parameter arrays,
    one kernel invocation per shard) unless ``--mc-engine per_point``
    requests the retained study-per-point loop.  ``--crn`` couples all
    points to common random numbers for variance-reduced contrasts.
``crossval``
    Cross-backend validation: assert the analytical availability of every
    dual-face policy falls inside its Monte Carlo confidence interval
    (non-zero exit code otherwise; used as the CI smoke job).  ``--policy``
    restricts the run to named policies — the way to cross-validate the
    periodic-scheme erasure family at an event-rich operating point.
``policies``
    List the replacement policies available in the registry: evaluation
    faces, kernels, stacked-grid support and redundancy scheme per policy.
``bench``
    Inspect the machine-readable benchmark trajectory (``BENCH_sweep.json``):
    ``bench history`` prints the per-op speedup trend across recorded runs,
    ``bench table`` renders the latest run as the README's markdown table.
``reproduce``
    Regenerate the paper's figures (optionally including the Monte Carlo
    validation) and print the tables.
"""

from __future__ import annotations

import argparse
import signal
import sys
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.availability.metrics import downtime_minutes_per_year
from repro.bench import load_history, render_history, render_latest_table
from repro.core.comparison import compare_equal_capacity, ranking
from repro.core.evaluation import analytical_policies, evaluate
from repro.core.montecarlo import (
    ALLOCATORS,
    EXECUTORS,
    KERNELS,
    POOLS,
    TRANSPORTS,
    MonteCarloConfig,
    has_compiled_face,
    reap_stale_segments,
    resolve_kernel,
    run_monte_carlo,
)
from repro.core.parameters import paper_parameters
from repro.core.policies import (
    MONTHLY_CHECK_HOURS,
    available_policies,
    erasure_policy,
    get_policy,
    hot_spare_policy,
    parse_scheme,
)
from repro.core.sweep import MC_ENGINES, SWEEP_AXES, SWEEP_BACKENDS, sweep, sweep_grid
from repro.exceptions import ConfigurationError, ReproError
from repro.experiments.cross_validation import (
    all_within_ci,
    cross_validation_table,
    run_cross_validation,
)
from repro.experiments.runner import run_all_experiments
from repro.storage.raid import RaidGeometry


def _seed_argument(text: str) -> Optional[int]:
    """Parse ``--seed``: a non-negative integer, or ``random``/``none``."""
    if text.lower() in ("random", "none"):
        return None
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"seed must be an integer or 'random', got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"seed must be non-negative, got {value}")
    return value


def _add_fault_tolerance_flags(parser: argparse.ArgumentParser) -> None:
    """Add the sharded executor's fault-tolerance flags (``mc`` and ``sweep``)."""
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        help="per-shard deadline in seconds; a shard that exceeds it is "
        "retried (hung process workers are terminated and the pool rebuilt)",
    )
    parser.add_argument(
        "--max-shard-retries",
        type=int,
        default=0,
        help="bounded retries per shard on crash/timeout/worker loss; "
        "retried shards recompute bit-identical summaries (default: 0)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.1,
        help="base seconds of the exponential retry backoff (default: 0.1)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="append every completed shard summary to a durable journal at "
        "PATH; an interrupted run can later be resumed from it",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="resume from the journal at PATH: already completed shards are "
        "spliced back in (and new completions keep appending); the resumed "
        "run is bit-identical to an uninterrupted one",
    )


def build_parser() -> argparse.ArgumentParser:
    """Return the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Availability of data storage systems under human errors (DATE 2017 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="solve one analytical availability model")
    solve.add_argument("--raid", default="RAID5(3+1)", help="RAID label, e.g. RAID5(7+1) or RAID1(1+1)")
    solve.add_argument("--failure-rate", type=float, default=1e-6, help="disk failure rate per hour")
    solve.add_argument("--hep", type=float, default=0.001, help="human error probability")
    solve.add_argument(
        "--model",
        choices=sorted(analytical_policies()),
        default="conventional",
        help="policy whose analytical face is solved",
    )
    solve.add_argument(
        "--method",
        choices=["auto", "dense", "lstsq", "power", "sparse"],
        default="auto",
        help="steady-state solver (auto selects dense/sparse by state count)",
    )

    compare = subparsers.add_parser("compare", help="equal-capacity RAID comparison")
    compare.add_argument("--failure-rate", type=float, default=1e-6)
    compare.add_argument("--hep", type=float, default=0.01)
    compare.add_argument("--usable-disks", type=int, default=21)

    mc = subparsers.add_parser(
        "mc", help="Monte Carlo availability study for any registered policy"
    )
    mc.add_argument(
        "--policy",
        default=None,
        help="registered policy name (see the 'policies' command); default: conventional",
    )
    mc.add_argument(
        "--spares",
        type=int,
        default=None,
        help="hot-spare pool size (builds a hot_spare_pool variant with k spares; "
        "mutually exclusive with --policy)",
    )
    mc.add_argument(
        "--scheme",
        default=None,
        metavar="k:N[:R]",
        help="erasure k-of-N scheme with periodic checks: simulate the pinned "
        "erasure policy on an EC(k of N) geometry (mutually exclusive with "
        "--policy/--spares; overrides --raid)",
    )
    mc.add_argument(
        "--check-period",
        type=float,
        default=MONTHLY_CHECK_HOURS,
        help="checker period in hours of a --scheme run (default: 730, "
        "i.e. monthly)",
    )
    mc.add_argument("--raid", default="RAID5(3+1)", help="RAID label, e.g. RAID5(7+1)")
    mc.add_argument("--failure-rate", type=float, default=1e-6, help="disk failure rate per hour")
    mc.add_argument("--hep", type=float, default=0.001, help="human error probability")
    mc.add_argument(
        "--iterations",
        type=int,
        default=20_000,
        help="simulated lifetimes (with --target-half-width: size of the first round)",
    )
    mc.add_argument("--horizon-years", type=float, default=10.0, help="mission time per lifetime")
    mc.add_argument("--confidence", type=float, default=0.99, help="confidence level of the interval")
    mc.add_argument(
        "--seed",
        type=_seed_argument,
        default=0,
        help="master seed (an integer, or 'random' for fresh entropy; the "
        "resolved entropy is printed so any run can be replayed)",
    )
    mc.add_argument(
        "--executor",
        choices=list(EXECUTORS),
        default="auto",
        help="batch (vectorised), scalar (traced/debug path), or auto",
    )
    mc.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sharded executor (1 = single process)",
    )
    mc.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="lifetimes per shard; pinning it makes results bit-identical "
        "across --workers values (default: one shard per worker, capped "
        "at 50000 lifetimes per shard)",
    )
    mc.add_argument(
        "--target-half-width",
        type=float,
        default=None,
        help="adaptive stopping: keep adding shard rounds until the "
        "confidence interval half-width reaches this value",
    )
    mc.add_argument(
        "--max-iterations",
        type=int,
        default=None,
        help="iteration ceiling of an adaptive run (default: 1e6)",
    )
    mc.add_argument(
        "--budget",
        type=int,
        default=None,
        help="alias of --max-iterations: total lifetime budget of an "
        "adaptive run",
    )
    mc.add_argument(
        "--biasing",
        type=float,
        default=None,
        help="failure-biasing factor of the importance-sampled kernels "
        "(> 1 inflates failure rates; estimates stay unbiased via "
        "per-lifetime likelihood-ratio weights)",
    )
    mc.add_argument(
        "--allocator",
        choices=list(ALLOCATORS),
        default="uniform",
        help="adaptive-round budget allocator of stacked grids: uniform, or "
        "ci_width (widest intervals get the next round's lifetimes)",
    )
    mc.add_argument(
        "--transport",
        choices=list(TRANSPORTS),
        default="auto",
        help="stacked-grid parameter transport: auto (zero-copy shared "
        "memory when usable), shm, or pickle (per-shard rebuild; the "
        "bit-identity oracle)",
    )
    mc.add_argument(
        "--kernel",
        choices=list(KERNELS),
        default="auto",
        help="batch-kernel backend: auto (compiled numba scans when "
        "installed, numpy otherwise), numpy (the bit-identity oracle), "
        "compiled (demand numba), or fused (whole-event-loop nopython "
        "kernels; statistically pinned, fastest)",
    )
    mc.add_argument(
        "--pool",
        choices=list(POOLS),
        default="process",
        help="shard-executor pool for --workers > 1: process, thread "
        "(in-process, shares stacked grid planes outright), or serial "
        "(the pool oracle: same shard plan, run sequentially)",
    )
    _add_fault_tolerance_flags(mc)
    mc.add_argument(
        "--reap-shm",
        action="store_true",
        help="unlink stale shared-memory segments left by dead runs (crashed "
        "parents), print what was reclaimed and exit",
    )

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="sweep one parameter axis for one policy on either backend",
    )
    sweep_parser.add_argument(
        "--axis",
        choices=sorted(SWEEP_AXES),
        default="hep",
        help="parameter to sweep",
    )
    values = sweep_parser.add_mutually_exclusive_group()
    values.add_argument(
        "--values",
        default=None,
        help="comma-separated axis values, e.g. '0,0.001,0.01'",
    )
    values.add_argument(
        "--grid",
        default=None,
        metavar="START:STOP:POINTS[:log]",
        help="evenly spaced axis values, e.g. '5e-7:5.5e-6:11' or "
        "'1e-7:1e-4:7:log' for log spacing",
    )
    sweep_parser.add_argument(
        "--axis2",
        choices=sorted(SWEEP_AXES),
        default=None,
        help="second axis: evaluate the full axis x axis2 surface in one "
        "call (e.g. --axis hep --axis2 failure_rate for a Fig. 5 sheet)",
    )
    values2 = sweep_parser.add_mutually_exclusive_group()
    values2.add_argument(
        "--values2",
        default=None,
        help="comma-separated values of the second axis",
    )
    values2.add_argument(
        "--grid2",
        default=None,
        metavar="START:STOP:POINTS[:log]",
        help="evenly spaced values of the second axis",
    )
    sweep_parser.add_argument(
        "--policy",
        default=None,
        help="registered policy name (default: conventional; see the "
        "'policies' command)",
    )
    sweep_parser.add_argument(
        "--scheme",
        default=None,
        metavar="k:N[:R]",
        help="erasure k-of-N scheme with periodic checks: sweep the pinned "
        "erasure policy on an EC(k of N) geometry (mutually exclusive with "
        "--policy; overrides --raid)",
    )
    sweep_parser.add_argument(
        "--check-period",
        type=float,
        default=MONTHLY_CHECK_HOURS,
        help="checker period in hours of a --scheme sweep (default: 730, "
        "i.e. monthly)",
    )
    sweep_parser.add_argument(
        "--backend",
        choices=list(SWEEP_BACKENDS),
        default="auto",
        help="analytical (template-driven), monte_carlo, or auto "
        "(analytical when the policy has a chain face)",
    )
    sweep_parser.add_argument("--raid", default="RAID5(3+1)", help="RAID label")
    sweep_parser.add_argument(
        "--failure-rate", type=float, default=1e-6,
        help="disk failure rate per hour (fixed unless it is the swept axis)",
    )
    sweep_parser.add_argument(
        "--hep", type=float, default=0.001,
        help="human error probability (fixed unless it is the swept axis)",
    )
    sweep_parser.add_argument(
        "--iterations", type=int, default=20_000,
        help="simulated lifetimes per point (monte_carlo backend)",
    )
    sweep_parser.add_argument(
        "--horizon-years", type=float, default=10.0,
        help="mission time per lifetime (monte_carlo backend)",
    )
    sweep_parser.add_argument(
        "--confidence", type=float, default=0.99,
        help="confidence level of per-point intervals (monte_carlo backend)",
    )
    sweep_parser.add_argument("--seed", type=_seed_argument, default=0, help="master seed")
    sweep_parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes shared across all Monte Carlo points",
    )
    sweep_parser.add_argument(
        "--mc-engine",
        choices=list(MC_ENGINES),
        default="auto",
        help="monte_carlo backend execution: stacked (one kernel invocation "
        "per shard covers the whole grid), per_point (retained "
        "study-per-value loop), or auto",
    )
    sweep_parser.add_argument(
        "--crn",
        action="store_true",
        help="common random numbers: couple every grid point to identical "
        "base streams (stacked engine; variance-reduced contrasts)",
    )
    sweep_parser.add_argument(
        "--target-half-width",
        type=float,
        default=None,
        help="adaptive sweep: keep dispatching shard rounds until every "
        "point's interval half-width reaches this value",
    )
    sweep_parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="per-point lifetime ceiling of an adaptive sweep (default: 1e6)",
    )
    sweep_parser.add_argument(
        "--biasing",
        type=float,
        default=None,
        help="failure-biasing factor of the importance-sampled kernels "
        "(rare-event sweeps; estimates stay unbiased via likelihood-ratio "
        "weights)",
    )
    sweep_parser.add_argument(
        "--allocator",
        choices=list(ALLOCATORS),
        default="uniform",
        help="adaptive-round budget allocator: uniform, or ci_width "
        "(widest intervals get the next round's lifetimes)",
    )
    sweep_parser.add_argument(
        "--transport",
        choices=list(TRANSPORTS),
        default="auto",
        help="stacked-grid parameter transport: auto (zero-copy shared "
        "memory when usable), shm, or pickle (per-shard rebuild; the "
        "bit-identity oracle)",
    )
    sweep_parser.add_argument(
        "--kernel",
        choices=list(KERNELS),
        default="auto",
        help="batch-kernel backend: auto (compiled numba scans when "
        "installed, numpy otherwise), numpy (the bit-identity oracle), "
        "compiled (demand numba), or fused (whole-event-loop nopython "
        "kernels; statistically pinned, fastest)",
    )
    sweep_parser.add_argument(
        "--pool",
        choices=list(POOLS),
        default="process",
        help="shard-executor pool for --workers > 1: process, thread "
        "(in-process, shares stacked grid planes outright), or serial "
        "(the pool oracle: same shard plan, run sequentially)",
    )
    _add_fault_tolerance_flags(sweep_parser)

    crossval = subparsers.add_parser(
        "crossval",
        help="validate analytical vs Monte Carlo for every dual-face policy",
    )
    crossval.add_argument("--raid", default="RAID5(3+1)", help="RAID label")
    crossval.add_argument(
        "--failure-rate", type=float, default=1e-4,
        help="disk failure rate per hour (elevated so the CI is informative)",
    )
    crossval.add_argument("--hep", type=float, default=0.01, help="human error probability")
    crossval.add_argument(
        "--policy",
        action="append",
        dest="policies",
        default=None,
        metavar="NAME",
        help="validate only the named policy (repeatable); the default set is "
        "every dual-face policy except periodic-scheme ones, which need an "
        "event-rich operating point — e.g. --policy erasure "
        "--raid 'EC(3of10)' --failure-rate 1e-4",
    )
    crossval.add_argument(
        "--iterations", type=int, default=4000,
        help="simulated lifetimes per policy (reduce for a smoke run)",
    )
    crossval.add_argument(
        "--seed", type=_seed_argument, default=0,
        help="master seed; 'random' draws fresh entropy, which by "
        "construction misses the confidence interval in about "
        "(1 - confidence) of runs per policy — CI pins the seed",
    )
    crossval.add_argument("--workers", type=int, default=1, help="worker processes")
    crossval.add_argument(
        "--kernel",
        choices=list(KERNELS),
        default="auto",
        help="batch-kernel backend of the Monte Carlo face (auto/numpy/compiled/fused)",
    )
    crossval.add_argument(
        "--pool",
        choices=list(POOLS),
        default="process",
        help="shard-executor pool for --workers > 1 (process/thread/serial)",
    )

    subparsers.add_parser("policies", help="list the registered replacement policies")

    bench = subparsers.add_parser(
        "bench",
        help="inspect the machine-readable benchmark trajectory",
    )
    bench.add_argument(
        "action",
        choices=["history", "table"],
        help="history: per-op speedup trend across recorded runs; "
        "table: latest run as a markdown performance table",
    )
    bench.add_argument(
        "--op",
        default=None,
        help="restrict 'history' to one op name (e.g. stacked_mc_sweep)",
    )
    bench.add_argument(
        "--file",
        default="BENCH_sweep.json",
        help="benchmark history file (default: ./BENCH_sweep.json)",
    )

    reproduce = subparsers.add_parser("reproduce", help="regenerate the paper's figures")
    reproduce.add_argument("--mc-iterations", type=int, default=8000)
    reproduce.add_argument("--no-mc", action="store_true", help="skip the Monte Carlo validation")
    reproduce.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the Monte Carlo validation runs",
    )

    return parser


def _run_solve(args: argparse.Namespace) -> str:
    params = paper_parameters(
        geometry=RaidGeometry.from_label(args.raid),
        disk_failure_rate=args.failure_rate,
        hep=args.hep,
    )
    result = evaluate(params, policy=args.model, backend="analytical", method=args.method)
    lines = [
        f"model:              {args.model}",
        f"geometry:           {params.geometry.label}",
        f"disk failure rate:  {params.disk_failure_rate:g} /h",
        f"hep:                {params.hep:g}",
        f"backend:            {result.backend} ({result.provenance})",
        f"availability:       {result.availability:.12f}",
        f"nines:              {result.nines:.3f}",
        f"downtime per year:  {downtime_minutes_per_year(result.availability):.4f} minutes",
    ]
    return "\n".join(lines)


def _run_compare(args: argparse.Namespace) -> str:
    base = paper_parameters(disk_failure_rate=args.failure_rate, hep=args.hep)
    model = "baseline" if args.hep == 0.0 else "conventional"
    comparisons = compare_equal_capacity(base, usable_disks=args.usable_disks, model=model)
    lines = [
        f"usable capacity: {args.usable_disks} disks, lambda={args.failure_rate:g}/h, hep={args.hep:g}",
        f"{'configuration':<14}{'disks':>7}{'ERF':>7}{'nines':>9}",
    ]
    for entry in comparisons:
        lines.append(
            f"{entry.geometry_label:<14}{entry.total_disks:>7}{entry.erf:>7.2f}"
            f"{entry.subsystem_nines:>9.3f}"
        )
    lines.append("ranking (best first): " + " > ".join(ranking(comparisons)))
    return "\n".join(lines)


def _scheme_policy(args: argparse.Namespace):
    """Build the pinned erasure policy + EC geometry implied by ``--scheme``."""
    scheme = parse_scheme(args.scheme, check_period_hours=args.check_period)
    policy = erasure_policy(
        scheme.k,
        scheme.n_shares,
        repair_threshold=scheme.repair_threshold,
        check_period_hours=args.check_period,
    )
    return policy, RaidGeometry.erasure(scheme.k, scheme.n_shares)


def _run_mc(args: argparse.Namespace) -> Tuple[str, int]:
    if args.reap_shm:
        reaped = reap_stale_segments()
        lines = [f"reaped {len(reaped)} stale shared-memory segment(s)"]
        lines.extend(f"  {name}" for name in reaped)
        return "\n".join(lines), 0
    if args.spares is not None and args.policy is not None:
        raise ConfigurationError(
            "--policy and --spares are mutually exclusive: --spares builds a "
            "hot_spare_pool variant and would override the named policy"
        )
    if args.scheme is not None and (args.policy is not None or args.spares is not None):
        raise ConfigurationError(
            "--scheme builds its own erasure policy and geometry; it is "
            "mutually exclusive with --policy and --spares"
        )
    if args.budget is not None and args.max_iterations is not None:
        raise ConfigurationError(
            "--budget is an alias of --max-iterations; pass only one"
        )
    max_iterations = args.max_iterations if args.budget is None else args.budget
    if max_iterations is not None and args.target_half_width is None:
        raise ConfigurationError(
            "--max-iterations/--budget cap an adaptive run and do nothing "
            "without --target-half-width"
        )
    if args.scheme is not None:
        policy, geometry = _scheme_policy(args)
    elif args.spares is not None:
        policy = hot_spare_policy(args.spares)
        geometry = RaidGeometry.from_label(args.raid)
    else:
        policy = get_policy(args.policy or "conventional")
        geometry = RaidGeometry.from_label(args.raid)
    params = paper_parameters(
        geometry=geometry,
        disk_failure_rate=args.failure_rate,
        hep=args.hep,
    )
    config = MonteCarloConfig(
        params=params,
        policy=policy,
        horizon_hours=args.horizon_years * 8760.0,
        n_iterations=args.iterations,
        confidence=args.confidence,
        seed=args.seed,
        executor=args.executor,
        workers=args.workers,
        shard_size=args.shard_size,
        target_half_width=args.target_half_width,
        max_iterations=max_iterations,
        transport=args.transport,
        biasing=args.biasing,
        allocator=args.allocator,
        kernel=args.kernel,
        pool=args.pool,
        shard_timeout=args.shard_timeout,
        max_shard_retries=args.max_shard_retries,
        retry_backoff=args.retry_backoff,
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    result = run_monte_carlo(config)
    totals = result.totals
    executor_label = args.executor
    if config.uses_sharded_path:
        pool_note = f", {args.pool} pool" if args.workers > 1 else ""
        executor_label += (
            f" (sharded, {args.workers} worker{'s' if args.workers != 1 else ''}"
            f"{pool_note})"
        )
    executor_label += f", kernel={resolve_kernel(args.kernel)}"
    scheme_lines = []
    if policy.has_periodic_checks:
        resolved = policy.scheme.resolve(params)
        scheme_lines.append(
            f"scheme:             {resolved.k}-of-{resolved.n_shares}, "
            f"repair below {resolved.repair_threshold}, "
            f"check every {resolved.check_period_hours:g} h"
        )
    lines = [
        f"policy:             {policy.name}",
        *scheme_lines,
        f"geometry:           {params.geometry.label}",
        f"disk failure rate:  {params.disk_failure_rate:g} /h",
        f"hep:                {params.hep:g}",
        f"iterations:         {result.n_iterations} x {args.horizon_years:g} years",
        f"executor:           {executor_label}",
        f"seed entropy:       {result.seed_entropy}",
        f"availability:       {result.availability:.12f}",
        f"nines:              {result.nines:.3f}",
        f"{result.interval.confidence * 100:g}% interval:       "
        f"[{result.interval.lower:.12f}, {result.interval.upper:.12f}]",
        *(
            [f"effective samples:  {result.ess:.0f} (importance-sampled, biasing={args.biasing:g})"]
            if result.ess is not None
            else []
        ),
        f"downtime per year:  {downtime_minutes_per_year(result.availability):.4f} minutes",
        f"events:             {int(totals.get('disk_failures', 0))} disk failures, "
        f"{int(totals.get('human_errors', 0))} human errors, "
        f"{int(totals.get('du_events', 0))} DU, {int(totals.get('dl_events', 0))} DL",
    ]
    if result.retried_shards:
        lines.append(f"retried shards:     {result.retried_shards}")
    if result.resumed_shards:
        lines.append(f"resumed shards:     {result.resumed_shards}")
    if not result.interrupted:
        return "\n".join(lines), 0
    lines.append("")
    lines.append(
        "interrupted: partial result (the run stopped before all shards "
        "completed)"
    )
    if config.journal_path is not None:
        lines.append(f"resume with --resume {config.journal_path}")
    else:
        lines.append(
            "no journal was recorded; pass --checkpoint PATH to make "
            "interrupted runs resumable"
        )
    return "\n".join(lines), 3


def _parse_axis_values(
    values: Optional[str], grid: Optional[str], values_flag: str, grid_flag: str
) -> Optional[List[float]]:
    """Parse one axis' values from its ``--values``/``--grid`` style flags."""
    if values is not None:
        try:
            return [float(token) for token in values.split(",") if token.strip()]
        except ValueError:
            raise ConfigurationError(
                f"{values_flag} must be comma-separated numbers, got {values!r}"
            ) from None
    if grid is not None:
        parts = grid.split(":")
        if len(parts) not in (3, 4) or (len(parts) == 4 and parts[3] != "log"):
            raise ConfigurationError(
                f"{grid_flag} must look like START:STOP:POINTS[:log], got {grid!r}"
            )
        try:
            start, stop, points = float(parts[0]), float(parts[1]), int(parts[2])
        except ValueError:
            raise ConfigurationError(
                f"{grid_flag} must look like START:STOP:POINTS[:log], got {grid!r}"
            ) from None
        if points < 1:
            raise ConfigurationError(f"{grid_flag} needs at least one point, got {points}")
        if len(parts) == 4:
            if start <= 0.0 or stop <= 0.0:
                raise ConfigurationError(f"log-spaced {grid_flag} requires positive bounds")
            return [float(v) for v in np.logspace(np.log10(start), np.log10(stop), points)]
        return [float(v) for v in np.linspace(start, stop, points)]
    return None


def _sweep_values(args: argparse.Namespace) -> List[float]:
    """Parse the swept axis values from ``--values`` or ``--grid``."""
    values = _parse_axis_values(args.values, args.grid, "--values", "--grid")
    if values is None:
        raise ConfigurationError("sweep requires --values or --grid")
    return values


def _fault_summary_lines(args: argparse.Namespace, points) -> Tuple[List[str], int]:
    """Summarise retry/resume/interrupt outcomes of a Monte Carlo sweep.

    Returns extra report lines plus the process exit code (3 when the sweep
    was interrupted and only partial points exist, 0 otherwise).
    """
    retried = sum(point.retried_shards for point in points)
    resumed = sum(point.resumed_shards for point in points)
    interrupted = any(point.interrupted for point in points)
    lines: List[str] = []
    if retried:
        lines.append(f"retried shards: {retried}")
    if resumed:
        lines.append(f"resumed shards: {resumed}")
    if not interrupted:
        return lines, 0
    lines.append(
        "interrupted: partial sweep (the run stopped before all shards "
        "completed)"
    )
    journal = args.resume if args.resume is not None else args.checkpoint
    if journal is not None:
        lines.append(f"resume with --resume {journal}")
    else:
        lines.append(
            "no journal was recorded; pass --checkpoint PATH to make "
            "interrupted sweeps resumable"
        )
    return lines, 3


def _run_sweep(args: argparse.Namespace) -> Tuple[str, int]:
    values = _sweep_values(args)
    values2 = _parse_axis_values(args.values2, args.grid2, "--values2", "--grid2")
    if (args.axis2 is None) != (values2 is None):
        raise ConfigurationError(
            "a 2-axis sweep requires both --axis2 and --values2/--grid2"
        )
    if args.scheme is not None:
        if args.policy is not None:
            raise ConfigurationError(
                "--scheme builds its own erasure policy; it is mutually "
                "exclusive with --policy"
            )
        policy, geometry = _scheme_policy(args)
    else:
        policy = args.policy or "conventional"
        geometry = RaidGeometry.from_label(args.raid)
    params = paper_parameters(
        geometry=geometry,
        disk_failure_rate=args.failure_rate,
        hep=args.hep,
    )
    if args.budget is not None and args.target_half_width is None:
        raise ConfigurationError(
            "--budget caps an adaptive sweep and does nothing without "
            "--target-half-width"
        )
    options = dict(
        policy=policy,
        backend=args.backend,
        mc_iterations=args.iterations,
        mc_horizon_hours=args.horizon_years * 8760.0,
        seed=args.seed,
        confidence=args.confidence,
        workers=args.workers,
        target_half_width=args.target_half_width,
        mc_max_iterations=args.budget,
        mc_engine=args.mc_engine,
        crn=args.crn,
        transport=args.transport,
        biasing=args.biasing,
        allocator=args.allocator,
        kernel=args.kernel,
        pool_kind=args.pool,
        shard_timeout=args.shard_timeout,
        max_shard_retries=args.max_shard_retries,
        retry_backoff=args.retry_backoff,
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    policy_label = policy if isinstance(policy, str) else policy.name
    if args.axis2 is not None:
        grid = sweep_grid(params, args.axis, values, args.axis2, values2, **options)
        rendered = _render_sweep_grid(args, params, grid, policy_label)
        extra, code = _fault_summary_lines(
            args, [point for row in grid.points for point in row]
        )
        return "\n".join([rendered] + extra), code
    points = sweep(params, args.axis, values, **options)
    with_ci = any(point.has_interval for point in points)
    lines = [
        f"policy:   {policy_label}",
        f"geometry: {params.geometry.label}",
        f"axis:     {args.axis} ({len(points)} points)",
        f"backend:  {args.backend}",
        "",
    ]
    header = f"{'x':>14}{'availability':>20}{'nines':>10}"
    if with_ci:
        header += f"{'ci_low':>20}{'ci_high':>20}"
    lines.append(header)
    for point in points:
        row = f"{point.x:>14.6g}{point.availability:>20.12f}{point.nines:>10.3f}"
        if with_ci:
            row += f"{point.ci_lower:>20.12f}{point.ci_upper:>20.12f}"
        lines.append(row)
    extra, code = _fault_summary_lines(args, points)
    if extra:
        lines.append("")
        lines.extend(extra)
    return "\n".join(lines), code


def _render_sweep_grid(args: argparse.Namespace, params, grid, policy_label: str) -> str:
    """Render a 2-axis surface as long-format rows (one line per point)."""
    with_ci = any(point.has_interval for row in grid.points for point in row)
    n_points = len(grid.values1) * len(grid.values2)
    lines = [
        f"policy:   {policy_label}",
        f"geometry: {params.geometry.label}",
        f"axes:     {grid.axis1} x {grid.axis2} "
        f"({len(grid.values1)} x {len(grid.values2)} = {n_points} points)",
        f"backend:  {args.backend}",
        "",
    ]
    header = f"{grid.axis1:>14}{grid.axis2:>14}{'availability':>20}{'nines':>10}"
    if with_ci:
        header += f"{'ci_low':>20}{'ci_high':>20}"
    lines.append(header)
    for v1, row_points in zip(grid.values1, grid.points):
        for point in row_points:
            row = (
                f"{v1:>14.6g}{point.x:>14.6g}"
                f"{point.availability:>20.12f}{point.nines:>10.3f}"
            )
            if with_ci:
                row += f"{point.ci_lower:>20.12f}{point.ci_upper:>20.12f}"
            lines.append(row)
    return "\n".join(lines)


def _run_crossval(args: argparse.Namespace) -> "tuple[str, bool]":
    """Return the rendered report and whether every policy passed."""
    params = paper_parameters(
        geometry=RaidGeometry.from_label(args.raid),
        disk_failure_rate=args.failure_rate,
        hep=args.hep,
    )
    rows = run_cross_validation(
        params=params,
        policies=args.policies,
        mc_iterations=args.iterations,
        seed=args.seed,
        workers=args.workers,
        kernel=args.kernel,
        pool_kind=args.pool,
    )
    table = cross_validation_table(rows)
    passed = all_within_ci(rows)
    verdict = "PASS" if passed else "FAIL"
    return table.render() + f"\ncross-validation: {verdict}", passed


def _scheme_summary(policy) -> str:
    """One-line scheme description of a registered policy."""
    scheme = policy.scheme
    if scheme is None:
        return "-"
    if scheme.n_shares is None:
        structure = "k-of-N from geometry"
    else:
        structure = (
            f"{scheme.k}-of-{scheme.n_shares}, repair below {scheme.repair_threshold}"
        )
    if scheme.is_periodic:
        return f"{structure}; check every {scheme.check_period_hours:g} h"
    return f"{structure}; continuous repair"


def _run_policies(args: argparse.Namespace) -> str:
    lines = [
        "registered replacement policies:",
        "",
        f"  {'name':<22}{'faces':<14}{'kernels':<15}{'stacked':<9}{'compiled':<10}scheme",
    ]
    for name in available_policies():
        policy = get_policy(name)
        faces = "both" if policy.has_analytical_model else "monte_carlo"
        kernels = "batch+scalar" if policy.has_batch_kernel else "scalar"
        stacked = "yes" if policy.supports_stacked else "no"
        # Whether a compiled backend accelerates the batch kernel: the
        # kernel=compiled/auto row scans or a kernel=fused whole-event-loop
        # (how the erasure family, which has no row searches, earns its yes).
        compiled = "yes" if has_compiled_face(policy) else "no"
        lines.append(
            f"  {name:<22}{faces:<14}{kernels:<15}{stacked:<9}{compiled:<10}"
            f"{_scheme_summary(policy)}"
        )
        lines.append(f"  {'':<22}{policy.description}")
    lines.append("")
    lines.append(
        "use 'mc --policy <name>' to simulate one, 'mc --spares K' for a "
        "hot-spare pool with K spares, or 'mc --scheme k:N:R' for a pinned "
        "erasure scheme"
    )
    return "\n".join(lines)


def _run_bench(args: argparse.Namespace) -> str:
    history = load_history(Path(args.file))
    if args.action == "table":
        return render_latest_table(history)
    return render_history(history, op=args.op)


def _run_reproduce(args: argparse.Namespace) -> str:
    report = run_all_experiments(
        mc_iterations=args.mc_iterations,
        include_monte_carlo=not args.no_mc,
        workers=args.workers,
    )
    return report.render()


def _install_sigterm_handler() -> None:
    """Convert SIGTERM into KeyboardInterrupt for graceful shutdown.

    The sharded executor already turns KeyboardInterrupt into a flagged
    partial result (checkpointed when a journal is configured); routing
    SIGTERM through the same path makes ``kill <pid>`` — and batch
    schedulers' polite termination — resumable instead of lossy.
    """

    def _raise_interrupt(signum, frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _raise_interrupt)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _install_sigterm_handler()
    try:
        if args.command == "solve":
            print(_run_solve(args))
        elif args.command == "compare":
            print(_run_compare(args))
        elif args.command == "mc":
            output, code = _run_mc(args)
            print(output)
            if code:
                return code
        elif args.command == "sweep":
            output, code = _run_sweep(args)
            print(output)
            if code:
                return code
        elif args.command == "crossval":
            output, passed = _run_crossval(args)
            print(output)
            if not passed:
                return 1
        elif args.command == "policies":
            print(_run_policies(args))
        elif args.command == "bench":
            print(_run_bench(args))
        elif args.command == "reproduce":
            print(_run_reproduce(args))
        else:  # pragma: no cover - argparse enforces the choices
            parser.error(f"unknown command {args.command!r}")
    except ReproError as exc:
        # Mis-parameterisations (unknown policy, bad rates, ...) are user
        # errors at this boundary, not stack traces.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
