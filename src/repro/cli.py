"""Command-line interface: ``python -m repro <command>``.

Five subcommands cover the common workflows without writing any code:

``solve``
    Solve one analytical model and print availability, nines and downtime.
``compare``
    Equal-usable-capacity comparison of the paper's three RAID layouts.
``mc``
    Run a Monte Carlo availability study for any registered replacement
    policy (vectorised batch executor by default).
``policies``
    List the replacement policies available in the registry.
``reproduce``
    Regenerate the paper's figures (optionally including the Monte Carlo
    validation) and print the tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.availability.metrics import downtime_minutes_per_year
from repro.core.comparison import compare_equal_capacity, ranking
from repro.core.models.generic import ModelKind, solve_model
from repro.core.montecarlo import EXECUTORS, MonteCarloConfig, run_monte_carlo
from repro.core.parameters import paper_parameters
from repro.core.policies import available_policies, get_policy, hot_spare_policy
from repro.exceptions import ConfigurationError, ReproError
from repro.experiments.runner import run_all_experiments
from repro.storage.raid import RaidGeometry


def _seed_argument(text: str) -> Optional[int]:
    """Parse ``--seed``: a non-negative integer, or ``random``/``none``."""
    if text.lower() in ("random", "none"):
        return None
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"seed must be an integer or 'random', got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"seed must be non-negative, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Return the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Availability of data storage systems under human errors (DATE 2017 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="solve one analytical availability model")
    solve.add_argument("--raid", default="RAID5(3+1)", help="RAID label, e.g. RAID5(7+1) or RAID1(1+1)")
    solve.add_argument("--failure-rate", type=float, default=1e-6, help="disk failure rate per hour")
    solve.add_argument("--hep", type=float, default=0.001, help="human error probability")
    solve.add_argument(
        "--model",
        choices=[kind.value for kind in ModelKind],
        default=ModelKind.CONVENTIONAL.value,
        help="which analytical model to solve",
    )

    compare = subparsers.add_parser("compare", help="equal-capacity RAID comparison")
    compare.add_argument("--failure-rate", type=float, default=1e-6)
    compare.add_argument("--hep", type=float, default=0.01)
    compare.add_argument("--usable-disks", type=int, default=21)

    mc = subparsers.add_parser(
        "mc", help="Monte Carlo availability study for any registered policy"
    )
    mc.add_argument(
        "--policy",
        default=None,
        help="registered policy name (see the 'policies' command); default: conventional",
    )
    mc.add_argument(
        "--spares",
        type=int,
        default=None,
        help="hot-spare pool size (builds a hot_spare_pool variant with k spares; "
        "mutually exclusive with --policy)",
    )
    mc.add_argument("--raid", default="RAID5(3+1)", help="RAID label, e.g. RAID5(7+1)")
    mc.add_argument("--failure-rate", type=float, default=1e-6, help="disk failure rate per hour")
    mc.add_argument("--hep", type=float, default=0.001, help="human error probability")
    mc.add_argument(
        "--iterations",
        type=int,
        default=20_000,
        help="simulated lifetimes (with --target-half-width: size of the first round)",
    )
    mc.add_argument("--horizon-years", type=float, default=10.0, help="mission time per lifetime")
    mc.add_argument("--confidence", type=float, default=0.99, help="confidence level of the interval")
    mc.add_argument(
        "--seed",
        type=_seed_argument,
        default=0,
        help="master seed (an integer, or 'random' for fresh entropy; the "
        "resolved entropy is printed so any run can be replayed)",
    )
    mc.add_argument(
        "--executor",
        choices=list(EXECUTORS),
        default="auto",
        help="batch (vectorised), scalar (traced/debug path), or auto",
    )
    mc.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sharded executor (1 = single process)",
    )
    mc.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="lifetimes per shard; pinning it makes results bit-identical "
        "across --workers values (default: one shard per worker, capped "
        "at 50000 lifetimes per shard)",
    )
    mc.add_argument(
        "--target-half-width",
        type=float,
        default=None,
        help="adaptive stopping: keep adding shard rounds until the "
        "confidence interval half-width reaches this value",
    )
    mc.add_argument(
        "--max-iterations",
        type=int,
        default=None,
        help="iteration ceiling of an adaptive run (default: 1e6)",
    )

    subparsers.add_parser("policies", help="list the registered replacement policies")

    reproduce = subparsers.add_parser("reproduce", help="regenerate the paper's figures")
    reproduce.add_argument("--mc-iterations", type=int, default=8000)
    reproduce.add_argument("--no-mc", action="store_true", help="skip the Monte Carlo validation")
    reproduce.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the Monte Carlo validation runs",
    )

    return parser


def _run_solve(args: argparse.Namespace) -> str:
    params = paper_parameters(
        geometry=RaidGeometry.from_label(args.raid),
        disk_failure_rate=args.failure_rate,
        hep=args.hep,
    )
    kind = ModelKind(args.model)
    result = solve_model(params, kind)
    lines = [
        f"model:              {kind.value}",
        f"geometry:           {params.geometry.label}",
        f"disk failure rate:  {params.disk_failure_rate:g} /h",
        f"hep:                {params.hep:g}",
        f"availability:       {result.availability:.12f}",
        f"nines:              {result.nines:.3f}",
        f"downtime per year:  {downtime_minutes_per_year(result.availability):.4f} minutes",
    ]
    return "\n".join(lines)


def _run_compare(args: argparse.Namespace) -> str:
    base = paper_parameters(disk_failure_rate=args.failure_rate, hep=args.hep)
    model = ModelKind.BASELINE if args.hep == 0.0 else ModelKind.CONVENTIONAL
    comparisons = compare_equal_capacity(base, usable_disks=args.usable_disks, model=model)
    lines = [
        f"usable capacity: {args.usable_disks} disks, lambda={args.failure_rate:g}/h, hep={args.hep:g}",
        f"{'configuration':<14}{'disks':>7}{'ERF':>7}{'nines':>9}",
    ]
    for entry in comparisons:
        lines.append(
            f"{entry.geometry_label:<14}{entry.total_disks:>7}{entry.erf:>7.2f}"
            f"{entry.subsystem_nines:>9.3f}"
        )
    lines.append("ranking (best first): " + " > ".join(ranking(comparisons)))
    return "\n".join(lines)


def _run_mc(args: argparse.Namespace) -> str:
    if args.spares is not None and args.policy is not None:
        raise ConfigurationError(
            "--policy and --spares are mutually exclusive: --spares builds a "
            "hot_spare_pool variant and would override the named policy"
        )
    if args.max_iterations is not None and args.target_half_width is None:
        raise ConfigurationError(
            "--max-iterations caps an adaptive run and does nothing without "
            "--target-half-width"
        )
    if args.spares is not None:
        policy = hot_spare_policy(args.spares)
    else:
        policy = get_policy(args.policy or "conventional")
    params = paper_parameters(
        geometry=RaidGeometry.from_label(args.raid),
        disk_failure_rate=args.failure_rate,
        hep=args.hep,
    )
    config = MonteCarloConfig(
        params=params,
        policy=policy,
        horizon_hours=args.horizon_years * 8760.0,
        n_iterations=args.iterations,
        confidence=args.confidence,
        seed=args.seed,
        executor=args.executor,
        workers=args.workers,
        shard_size=args.shard_size,
        target_half_width=args.target_half_width,
        max_iterations=args.max_iterations,
    )
    result = run_monte_carlo(config)
    totals = result.totals
    executor_label = args.executor
    if config.uses_sharded_path:
        executor_label += f" (sharded, {args.workers} worker{'s' if args.workers != 1 else ''})"
    lines = [
        f"policy:             {policy.name}",
        f"geometry:           {params.geometry.label}",
        f"disk failure rate:  {params.disk_failure_rate:g} /h",
        f"hep:                {params.hep:g}",
        f"iterations:         {result.n_iterations} x {args.horizon_years:g} years",
        f"executor:           {executor_label}",
        f"seed entropy:       {result.seed_entropy}",
        f"availability:       {result.availability:.12f}",
        f"nines:              {result.nines:.3f}",
        f"{result.interval.confidence * 100:g}% interval:       "
        f"[{result.interval.lower:.12f}, {result.interval.upper:.12f}]",
        f"downtime per year:  {downtime_minutes_per_year(result.availability):.4f} minutes",
        f"events:             {int(totals.get('disk_failures', 0))} disk failures, "
        f"{int(totals.get('human_errors', 0))} human errors, "
        f"{int(totals.get('du_events', 0))} DU, {int(totals.get('dl_events', 0))} DL",
    ]
    return "\n".join(lines)


def _run_policies(args: argparse.Namespace) -> str:
    lines = ["registered replacement policies:"]
    for name in available_policies():
        policy = get_policy(name)
        kernel = "batch+scalar" if policy.has_batch_kernel else "scalar"
        lines.append(f"  {name:<22} [{kernel}] {policy.description}")
    lines.append(
        "use 'mc --policy <name>' to simulate one, or 'mc --spares K' for a "
        "hot-spare pool with K spares"
    )
    return "\n".join(lines)


def _run_reproduce(args: argparse.Namespace) -> str:
    report = run_all_experiments(
        mc_iterations=args.mc_iterations,
        include_monte_carlo=not args.no_mc,
        workers=args.workers,
    )
    return report.render()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "solve":
            print(_run_solve(args))
        elif args.command == "compare":
            print(_run_compare(args))
        elif args.command == "mc":
            print(_run_mc(args))
        elif args.command == "policies":
            print(_run_policies(args))
        elif args.command == "reproduce":
            print(_run_reproduce(args))
        else:  # pragma: no cover - argparse enforces the choices
            parser.error(f"unknown command {args.command!r}")
    except ReproError as exc:
        # Mis-parameterisations (unknown policy, bad rates, ...) are user
        # errors at this boundary, not stack traces.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
