"""EXP-T1 — regenerate the downtime-underestimation headline (up to ~263X).

Paper claim (abstract / Section I): overlooking incorrect disk replacement
underestimates unavailability by up to three orders of magnitude (263X).
The benchmark sweeps the failure-rate grid, prints the factor table and the
maximum factor achieved.
"""

from __future__ import annotations

from repro.core.underestimation import orders_of_magnitude
from repro.experiments.underestimation import (
    headline_factor,
    run_underestimation_study,
    underestimation_table,
)


def test_underestimation_headline_bench(benchmark):
    """Time the underestimation sweep and print the factor table."""
    study = benchmark(run_underestimation_study)
    print()
    print(underestimation_table(study).render(float_format="{:.4g}"))
    headline = headline_factor()
    print(
        f"maximum underestimation: {headline.factor:.0f}x "
        f"({orders_of_magnitude(headline.factor):.2f} orders of magnitude) "
        f"at lambda={headline.disk_failure_rate:.2g}, hep={headline.hep:g}"
    )
    # Paper: 2-3 orders of magnitude on its evaluated range.
    assert headline.factor > 100.0
    # The factor grows monotonically as the failure rate shrinks, i.e. it is
    # decreasing along the ascending failure-rate grid.
    for hep, points in study.items():
        factors = [p.factor for p in points]
        assert factors == sorted(factors, reverse=True)
