"""Engine benchmark: steady-state solver methods on the paper's chains.

Compares the dense direct solve (default), least-squares, sparse LU and
power-iteration solvers on the Fig. 3 chain — the largest chain in the
package — both for timing and to confirm they agree to solver tolerance.
"""

from __future__ import annotations

import pytest

from repro.core.models import build_failover_chain
from repro.core.parameters import paper_parameters
from repro.markov import solve_steady_state

CHAIN = build_failover_chain(paper_parameters(disk_failure_rate=1e-6, hep=0.01))
REFERENCE = solve_steady_state(CHAIN, method="dense")


@pytest.mark.parametrize("method", ["dense", "lstsq", "sparse"])
def test_steady_state_solver_bench(benchmark, method):
    """Time one steady-state solve of the 12-state fail-over chain."""
    pi = benchmark(solve_steady_state, CHAIN, method=method)
    for name, value in REFERENCE.items():
        assert pi[name] == pytest.approx(value, rel=1e-6, abs=1e-15)
