"""Engine benchmark: steady-state and transient solvers on the paper's chains.

Compares the dense direct solve (default), least-squares, sparse LU and
power-iteration solvers on the Fig. 3 chain — the largest chain in the
package — both for timing and to confirm they agree to solver tolerance,
and measures the transient analysers' grid-reuse optimisations: one
``expm(Q * dt)`` propagated over a uniform grid versus one ``expm`` per
time, and the shared truncated DTMC power sequence in uniformization.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.models import build_failover_chain
from repro.core.parameters import paper_parameters
from repro.markov import solve_steady_state
from repro.markov.transient import (
    transient_distribution_expm,
    transient_distribution_uniformization,
)

CHAIN = build_failover_chain(paper_parameters(disk_failure_rate=1e-6, hep=0.01))
REFERENCE = solve_steady_state(CHAIN, method="dense")

#: Uniform ten-year grid of the transient benchmarks.
TRANSIENT_TIMES = np.linspace(0.0, 10 * 8760.0, 200)

#: Required advantage of the one-expm uniform-grid path over per-time expm.
REQUIRED_EXPM_SPEEDUP = 5.0


@pytest.mark.parametrize("method", ["dense", "lstsq", "sparse"])
def test_steady_state_solver_bench(benchmark, method):
    """Time one steady-state solve of the 12-state fail-over chain."""
    pi = benchmark(solve_steady_state, CHAIN, method=method)
    for name, value in REFERENCE.items():
        assert pi[name] == pytest.approx(value, rel=1e-6, abs=1e-15)


def test_transient_expm_grid_reuse_speedup(bench_record):
    """One expm + propagation must beat per-time expm by >= 5x at 200 times."""
    start = time.perf_counter()
    fast = transient_distribution_expm(CHAIN, TRANSIENT_TIMES)
    fast_seconds = time.perf_counter() - start

    start = time.perf_counter()
    slow = transient_distribution_expm(CHAIN, TRANSIENT_TIMES, uniform_grid=False)
    slow_seconds = time.perf_counter() - start

    speedup = slow_seconds / max(fast_seconds, 1e-9)
    print(
        f"\ntransient expm: {TRANSIENT_TIMES.size} times — grid-reuse "
        f"{fast_seconds:.3f}s, per-time {slow_seconds:.3f}s (speedup {speedup:.1f}x)"
    )
    bench_record(
        "transient_expm_grid_reuse",
        points=int(TRANSIENT_TIMES.size),
        seconds=fast_seconds,
        speedup=speedup,
    )
    assert np.max(np.abs(fast.probabilities - slow.probabilities)) < 1e-9
    assert speedup >= REQUIRED_EXPM_SPEEDUP, (
        f"uniform-grid expm only {speedup:.1f}x faster than per-time expm "
        f"(required {REQUIRED_EXPM_SPEEDUP:g}x)"
    )


def test_transient_expm_bench(benchmark):
    """Timing record: the uniform-grid expm path over a ten-year grid."""
    result = benchmark(transient_distribution_expm, CHAIN, TRANSIENT_TIMES)
    assert result.probabilities.shape == (TRANSIENT_TIMES.size, CHAIN.n_states)


def test_transient_uniformization_bench(benchmark):
    """Timing record: uniformization with the shared DTMC power sequence.

    One year of grid (the truncation point grows with ``Lambda * t``, and a
    full ten-year horizon at the fail-over chain's uniformization rate
    needs more terms than the method's ceiling — a pre-existing envelope,
    not a property of the power-sequence reuse).
    """
    times = np.linspace(0.0, 8760.0, 100)[1:]
    result = benchmark(transient_distribution_uniformization, CHAIN, times)
    assert result.probabilities.shape == (times.size, CHAIN.n_states)
