"""Ablation benchmarks for the design choices called out in DESIGN.md.

Two studies beyond the paper's figures:

* **Sensitivity tornado** — which service rate actually moves availability
  at the paper's operating point (justifies focusing the models on hep and
  the rebuild rate).
* **Error-recovery-rate ablation** — how the conclusions change when the
  wrong-pull recovery rate ``mu_he`` is slowed from the stated 1/h towards
  the tape-restore rate, the discrepancy discussed in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import dominant_parameter, one_at_a_time
from repro.availability import Table
from repro.core.evaluation import analytical_result
from repro.core.parameters import paper_parameters


def test_sensitivity_tornado_bench(benchmark):
    """Time the one-at-a-time sensitivity analysis and print the tornado."""
    entries = benchmark(one_at_a_time, paper_parameters(disk_failure_rate=1e-6, hep=0.01))
    table = Table(
        title="Parameter sensitivity (x2 perturbation), RAID5(3+1), lambda=1e-6, hep=0.01",
        columns=["parameter", "low_unavail", "high_unavail", "swing"],
    )
    for entry in entries:
        table.add_row(
            parameter=entry.parameter,
            low_unavail=entry.low_unavailability,
            high_unavail=entry.high_unavailability,
            swing=entry.swing,
        )
    print()
    print(table.render(float_format="{:.3g}"))
    print(f"dominant parameter: {dominant_parameter(entries)}")
    assert entries[0].swing >= entries[-1].swing


def test_error_recovery_rate_ablation_bench(benchmark):
    """Sweep mu_he from 1/h down to the tape-restore rate and print the effect."""

    def sweep():
        rows = []
        for mu_he in (1.0, 0.3, 0.1, 0.03):
            params = replace(paper_parameters(disk_failure_rate=1e-6, hep=0.01),
                             human_error_rate=mu_he)
            conventional = analytical_result(params, "conventional")
            failover = analytical_result(params, "automatic_failover")
            rows.append((mu_he, conventional.nines, failover.nines,
                         conventional.unavailability / failover.unavailability))
        return rows

    rows = benchmark(sweep)
    table = Table(
        title="Ablation: wrong-pull recovery rate mu_he (lambda=1e-6, hep=0.01)",
        columns=["mu_he_per_hour", "conventional_nines", "failover_nines", "failover_gain"],
    )
    for mu_he, conv, fo, gain in rows:
        table.add_row(
            mu_he_per_hour=mu_he, conventional_nines=conv, failover_nines=fo, failover_gain=gain
        )
    table.add_note(
        "slowing mu_he toward the tape-restore rate reproduces the ~2 orders of "
        "magnitude fail-over gain plotted in the paper's Fig. 7"
    )
    print()
    print(table.render(float_format="{:.3g}"))
    gains = [row[3] for row in rows]
    # The slower the error recovery, the more the fail-over policy is worth.
    assert gains == sorted(gains)


def test_crash_rate_ablation_bench(benchmark):
    """Sweep lambda_crash to show when wrong pulls escalate into data loss."""

    def sweep():
        rows = []
        for crash in (0.0, 0.01, 0.1, 1.0):
            params = replace(paper_parameters(disk_failure_rate=1e-6, hep=0.01),
                             crash_rate=crash)
            result = analytical_result(params, "conventional")
            rows.append((crash, result.nines, result.state_probabilities.get("DL", 0.0)))
        return rows

    rows = benchmark(sweep)
    table = Table(
        title="Ablation: crash rate of the wrongly pulled disk (lambda=1e-6, hep=0.01)",
        columns=["lambda_crash", "nines", "pi_DL"],
    )
    for crash, nines, pi_dl in rows:
        table.add_row(lambda_crash=crash, nines=nines, pi_DL=pi_dl)
    print()
    print(table.render(float_format="{:.3g}"))
    nines_values = [row[1] for row in rows]
    assert nines_values == sorted(nines_values, reverse=True)
