"""EXP-F1 / engine benchmarks — Monte Carlo simulator and Markov solver throughput.

These are not figures from the paper but the performance substrate behind
them: how fast one simulated lifetime runs (which bounds how close to the
paper's 1e6-iteration setting a given time budget allows) and how fast the
Markov chains solve (which bounds the analytical sweeps).
"""

from __future__ import annotations

from repro.core.models import ModelKind, solve_model
from repro.core.montecarlo import MonteCarloConfig, run_monte_carlo
from repro.core.montecarlo.trace import generate_example_trace, summarise_trace
from repro.core.parameters import paper_parameters
from repro.human.policy import PolicyKind


def test_monte_carlo_conventional_throughput(benchmark, bench_seed):
    """Time a 2000-lifetime conventional-policy Monte Carlo study."""
    config = MonteCarloConfig(
        params=paper_parameters(disk_failure_rate=2.5e-6, hep=0.01),
        policy=PolicyKind.CONVENTIONAL,
        n_iterations=2000,
        horizon_hours=87_600.0,
        seed=bench_seed,
    )
    result = benchmark.pedantic(run_monte_carlo, args=(config,), iterations=1, rounds=3)
    print()
    print(f"conventional MC: availability={result.availability:.10f} nines={result.nines:.2f}")
    assert 0.0 < result.availability <= 1.0


def test_monte_carlo_failover_throughput(benchmark, bench_seed):
    """Time a 2000-lifetime automatic-fail-over Monte Carlo study."""
    config = MonteCarloConfig(
        params=paper_parameters(disk_failure_rate=2.5e-6, hep=0.01),
        policy=PolicyKind.AUTOMATIC_FAILOVER,
        n_iterations=2000,
        horizon_hours=87_600.0,
        seed=bench_seed,
    )
    result = benchmark.pedantic(run_monte_carlo, args=(config,), iterations=1, rounds=3)
    print()
    print(f"fail-over MC: availability={result.availability:.10f} nines={result.nines:.2f}")
    assert 0.0 < result.availability <= 1.0


def test_markov_solver_throughput(benchmark):
    """Time solving both analytical models back to back (one sweep point)."""

    def solve_both():
        params = paper_parameters(disk_failure_rate=1e-6, hep=0.01)
        return (
            solve_model(params, ModelKind.CONVENTIONAL).availability,
            solve_model(params, ModelKind.AUTOMATIC_FAILOVER).availability,
        )

    conventional, failover = benchmark(solve_both)
    assert failover >= conventional


def test_fig1_event_trace_generation(benchmark):
    """Time generating the Fig. 1 style single-run event trace."""
    trace = benchmark.pedantic(generate_example_trace, kwargs={"seed": 7}, iterations=1, rounds=3)
    summary = summarise_trace(trace)
    print()
    print(f"example trace events: {summary}")
    assert summary["disk_failures"] >= 1
