"""EXP-F1 / engine benchmarks — Monte Carlo executors and Markov solver throughput.

These are not figures from the paper but the performance substrate behind
them: how fast the Monte Carlo studies run (which bounds how close to the
paper's 1e6-iteration setting a given time budget allows) and how fast the
Markov chains solve (which bounds the analytical sweeps).

Since the policy-registry refactor the Monte Carlo runner has two execution
paths — the scalar per-lifetime event loop (the seed implementation, kept as
the traced/debug path) and the vectorised struct-of-arrays batch executor.
The ``*_scalar`` / ``*_batch`` pairs below time both at identical iteration
counts; the 10k-lifetime comparison is the acceptance benchmark for the
batch kernel.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.evaluation import analytical_result
from repro.core.montecarlo import MonteCarloConfig, run_monte_carlo
from repro.core.montecarlo.trace import generate_example_trace, summarise_trace
from repro.core.parameters import paper_parameters
from repro.human.policy import PolicyKind


def _bench_config(policy, n_iterations: int, seed: int) -> MonteCarloConfig:
    return MonteCarloConfig(
        params=paper_parameters(disk_failure_rate=2.5e-6, hep=0.01),
        policy=policy,
        n_iterations=n_iterations,
        horizon_hours=87_600.0,
        seed=seed,
    )


def test_monte_carlo_conventional_throughput(benchmark, bench_seed):
    """Time a 2000-lifetime conventional-policy study (auto = batch path)."""
    config = _bench_config(PolicyKind.CONVENTIONAL, 2000, bench_seed)
    result = benchmark.pedantic(run_monte_carlo, args=(config,), iterations=1, rounds=3)
    print()
    print(f"conventional MC: availability={result.availability:.10f} nines={result.nines:.2f}")
    assert 0.0 < result.availability <= 1.0


def test_monte_carlo_conventional_scalar_throughput(benchmark, bench_seed):
    """Time the same 2000-lifetime study on the scalar (seed) path."""
    config = _bench_config(PolicyKind.CONVENTIONAL, 2000, bench_seed).with_executor("scalar")
    result = benchmark.pedantic(run_monte_carlo, args=(config,), iterations=1, rounds=3)
    print()
    print(f"conventional MC (scalar): availability={result.availability:.10f}")
    assert 0.0 < result.availability <= 1.0


def test_monte_carlo_failover_throughput(benchmark, bench_seed):
    """Time a 2000-lifetime automatic-fail-over study (auto = batch path)."""
    config = _bench_config(PolicyKind.AUTOMATIC_FAILOVER, 2000, bench_seed)
    result = benchmark.pedantic(run_monte_carlo, args=(config,), iterations=1, rounds=3)
    print()
    print(f"fail-over MC: availability={result.availability:.10f} nines={result.nines:.2f}")
    assert 0.0 < result.availability <= 1.0


def test_monte_carlo_failover_scalar_throughput(benchmark, bench_seed):
    """Time the same 2000-lifetime fail-over study on the scalar path."""
    config = _bench_config(PolicyKind.AUTOMATIC_FAILOVER, 2000, bench_seed).with_executor("scalar")
    result = benchmark.pedantic(run_monte_carlo, args=(config,), iterations=1, rounds=3)
    print()
    print(f"fail-over MC (scalar): availability={result.availability:.10f}")
    assert 0.0 < result.availability <= 1.0


def test_monte_carlo_hot_spare_batch_throughput(benchmark, bench_seed):
    """Time a 2000-lifetime hot-spare-pool study through the registry."""
    config = _bench_config("hot_spare_pool", 2000, bench_seed)
    result = benchmark.pedantic(run_monte_carlo, args=(config,), iterations=1, rounds=3)
    print()
    print(f"hot-spare MC: availability={result.availability:.10f} nines={result.nines:.2f}")
    assert 0.0 < result.availability <= 1.0


def test_batch_beats_scalar_at_10k_iterations(benchmark, bench_seed):
    """Acceptance check: the batch kernel outruns the scalar loop at 10k lifetimes."""
    config = _bench_config(PolicyKind.CONVENTIONAL, 10_000, bench_seed)

    start = time.perf_counter()
    scalar = run_monte_carlo(config.with_executor("scalar"))
    scalar_seconds = time.perf_counter() - start

    batch = benchmark.pedantic(
        run_monte_carlo, args=(config.with_executor("batch"),), iterations=1, rounds=3
    )
    # Best-of-3 from the benchmark's own measurements; no extra run needed.
    batch_seconds = benchmark.stats.stats.min

    print()
    print(
        f"10k lifetimes: scalar {scalar_seconds:.2f}s vs batch {batch_seconds:.2f}s "
        f"(speedup {scalar_seconds / max(batch_seconds, 1e-9):.1f}x)"
    )
    # Same estimator, overlapping 99% confidence intervals.
    assert max(scalar.interval.lower, batch.interval.lower) <= min(
        scalar.interval.upper, batch.interval.upper
    )
    assert batch_seconds < scalar_seconds
    assert batch.n_iterations == 10_000


def test_monte_carlo_sharded_2worker_throughput(benchmark, bench_seed):
    """Time a 20k-lifetime study on the sharded executor with 2 workers.

    Runs on any machine (the two processes share cores when fewer are
    available); the estimate must agree with the single-process batch path
    at the 99 % level.
    """
    config = _bench_config(PolicyKind.CONVENTIONAL, 20_000, bench_seed).with_workers(2)
    result = benchmark.pedantic(run_monte_carlo, args=(config,), iterations=1, rounds=3)
    batch = run_monte_carlo(config.with_workers(1).with_executor("batch"))
    print()
    print(f"sharded 2w MC: availability={result.availability:.10f} n={result.n_iterations}")
    assert batch.interval.contains(result.availability) or result.interval.contains(
        batch.availability
    )
    assert result.n_iterations == 20_000


def test_monte_carlo_adaptive_stopping_throughput(benchmark, bench_seed):
    """Time an adaptive run that tightens the interval beyond its first round."""
    config = _bench_config(PolicyKind.CONVENTIONAL, 2000, bench_seed)
    first = run_monte_carlo(config.with_workers(1, shard_size=2000))
    target = first.interval.half_width / 2.0
    adaptive = config.with_workers(1, shard_size=2000).with_target_half_width(
        target, max_iterations=200_000
    )
    result = benchmark.pedantic(run_monte_carlo, args=(adaptive,), iterations=1, rounds=3)
    print()
    print(
        f"adaptive MC: n={result.n_iterations} half_width={result.interval.half_width:.3g} "
        f"(target {target:.3g})"
    )
    assert result.interval.half_width <= target
    assert result.n_iterations > 2000


def test_parallel_beats_single_process_batch(benchmark, bench_seed):
    """Acceptance check: 4 sharded workers outrun the single-process batch path.

    Process-level parallelism only pays where there are cores to run on, so
    the ≥ 2x assertion is gated on a 4-core machine; smaller machines still
    run the workload (as a timing record) without the speed-up assertion.
    """
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"needs >= 4 cores for the 2x assertion, have {cores}")
    config = MonteCarloConfig(
        params=paper_parameters(disk_failure_rate=1e-4, hep=0.01),
        policy=PolicyKind.CONVENTIONAL,
        n_iterations=400_000,
        horizon_hours=87_600.0,
        seed=bench_seed,
    )

    # Same min-of-3 protocol as the benchmarked parallel side, so a
    # transient stall of one single-process run cannot fake a speed-up.
    single_timings = []
    for _ in range(3):
        start = time.perf_counter()
        single = run_monte_carlo(config.with_executor("batch"))
        single_timings.append(time.perf_counter() - start)
    single_seconds = min(single_timings)

    parallel_config = config.with_workers(4, shard_size=25_000)
    parallel = benchmark.pedantic(
        run_monte_carlo, args=(parallel_config,), iterations=1, rounds=3
    )
    parallel_seconds = benchmark.stats.stats.min

    print()
    print(
        f"400k lifetimes: single-process {single_seconds:.2f}s vs 4 workers "
        f"{parallel_seconds:.2f}s (speedup {single_seconds / max(parallel_seconds, 1e-9):.1f}x)"
    )
    assert single.interval.contains(parallel.availability) or parallel.interval.contains(
        single.availability
    )
    assert parallel_seconds * 2.0 < single_seconds
    assert parallel.n_iterations == 400_000


def test_markov_solver_throughput(benchmark):
    """Time solving both analytical models back to back (one sweep point)."""

    def solve_both():
        params = paper_parameters(disk_failure_rate=1e-6, hep=0.01)
        return (
            analytical_result(params, "conventional").availability,
            analytical_result(params, "automatic_failover").availability,
        )

    conventional, failover = benchmark(solve_both)
    assert failover >= conventional


def test_fig1_event_trace_generation(benchmark):
    """Time generating the Fig. 1 style single-run event trace."""
    trace = benchmark.pedantic(generate_example_trace, kwargs={"seed": 7}, iterations=1, rounds=3)
    summary = summarise_trace(trace)
    print()
    print(f"example trace events: {summary}")
    assert summary["disk_failures"] >= 1
