"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's evaluation artefacts
(Figs. 4-7 plus the underestimation headline) and prints the same
rows/series the paper reports, so ``pytest benchmarks/ --benchmark-only -s``
doubles as the reproduction driver.  Monte Carlo iteration counts are kept
small here so the whole suite finishes in minutes; the experiment modules
accept the paper-scale counts.

Benchmarks that measure a headline speedup additionally push one record
into the session's ``bench_record`` fixture; at session end the records are
**appended** to ``BENCH_sweep.json`` at the repository root as one run
keyed by git commit and UTC timestamp (op name, problem size, wall-clock
seconds, speedup), so the performance trajectory accumulates across PRs
instead of each session overwriting the last.  ``python -m repro bench
history`` prints the per-op trend; ``python -m repro bench table`` renders
the latest run as the README's markdown performance table.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List, Optional

import pytest

# The harness writes through repro.bench; make src/ importable even when
# benchmarks run without an installed package or PYTHONPATH.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench import append_run  # noqa: E402

#: Where the machine-readable benchmark records land (repository root).
BENCH_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

_BENCH_RECORDS: List[Dict[str, object]] = []

#: Monte Carlo iterations used inside benchmarks (paper: 1e6).
BENCH_MC_ITERATIONS = 4000

#: Mission time per simulated lifetime in benchmarks.
BENCH_MC_HORIZON_HOURS = 10 * 8760.0

#: Seed shared by all benchmarks for reproducibility.
BENCH_SEED = 2017


@pytest.fixture(scope="session")
def bench_mc_iterations() -> int:
    """Return the Monte Carlo iteration count used by benchmarks."""
    return BENCH_MC_ITERATIONS


@pytest.fixture(scope="session")
def bench_mc_horizon() -> float:
    """Return the per-lifetime horizon used by benchmarks."""
    return BENCH_MC_HORIZON_HOURS


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """Return the master seed used by benchmarks."""
    return BENCH_SEED


@pytest.fixture(scope="session")
def bench_record():
    """Return a callable recording one machine-readable benchmark result.

    Usage inside a benchmark::

        bench_record("stacked_mc_sweep", points=32, seconds=0.41, speedup=6.2)

    Records are flushed to ``BENCH_sweep.json`` when the session ends.
    """

    def record(
        op: str,
        *,
        points: Optional[int] = None,
        seconds: Optional[float] = None,
        speedup: Optional[float] = None,
        **extra: object,
    ) -> None:
        entry: Dict[str, object] = {"op": str(op)}
        if points is not None:
            entry["points"] = int(points)
        if seconds is not None:
            entry["seconds"] = round(float(seconds), 6)
        if speedup is not None:
            entry["speedup"] = round(float(speedup), 3)
        entry.update(extra)
        _BENCH_RECORDS.append(entry)

    return record


def pytest_sessionfinish(session, exitstatus) -> None:
    """Append the collected benchmark records to ``BENCH_sweep.json``.

    Nothing is written when no benchmark recorded a result (e.g. a plain
    tier-1 run), so the file only changes when the perf harness ran.  A
    legacy overwrite-style file is migrated into the append-only history
    on first touch (its single run is preserved as the oldest entry).
    """
    if not _BENCH_RECORDS:
        return
    append_run(BENCH_RESULTS_PATH, _BENCH_RECORDS)
