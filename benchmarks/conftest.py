"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's evaluation artefacts
(Figs. 4-7 plus the underestimation headline) and prints the same
rows/series the paper reports, so ``pytest benchmarks/ --benchmark-only -s``
doubles as the reproduction driver.  Monte Carlo iteration counts are kept
small here so the whole suite finishes in minutes; the experiment modules
accept the paper-scale counts.
"""

from __future__ import annotations

import pytest

#: Monte Carlo iterations used inside benchmarks (paper: 1e6).
BENCH_MC_ITERATIONS = 4000

#: Mission time per simulated lifetime in benchmarks.
BENCH_MC_HORIZON_HOURS = 10 * 8760.0

#: Seed shared by all benchmarks for reproducibility.
BENCH_SEED = 2017


@pytest.fixture(scope="session")
def bench_mc_iterations() -> int:
    """Return the Monte Carlo iteration count used by benchmarks."""
    return BENCH_MC_ITERATIONS


@pytest.fixture(scope="session")
def bench_mc_horizon() -> float:
    """Return the per-lifetime horizon used by benchmarks."""
    return BENCH_MC_HORIZON_HOURS


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """Return the master seed used by benchmarks."""
    return BENCH_SEED
